//! The experiment parameter grid (Table III) and dataset presets (Table II).

use datawa_sim::TraceSpec;

/// Which real-data stand-in a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The Yueche-like trace (624 workers, 11 052 tasks, 9:00–11:00).
    Yueche,
    /// The DiDi-like trace (760 workers, 8 869 tasks, 21:00–23:00).
    Didi,
}

impl Dataset {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Yueche => "Yueche",
            Dataset::Didi => "DiDi",
        }
    }

    /// The trace preset for this dataset.
    pub fn spec(&self) -> TraceSpec {
        match self {
            Dataset::Yueche => TraceSpec::yueche(),
            Dataset::Didi => TraceSpec::didi(),
        }
    }

    /// The |S| sweep of Fig. 7 (Table III).
    pub fn task_sweep(&self) -> Vec<usize> {
        match self {
            Dataset::Yueche => vec![7_000, 8_000, 9_000, 10_000, 11_000],
            Dataset::Didi => vec![5_000, 6_000, 7_000, 8_000, 9_000],
        }
    }

    /// The |W| sweep of Fig. 8 (Table III).
    pub fn worker_sweep(&self) -> Vec<usize> {
        match self {
            Dataset::Yueche => vec![200, 300, 400, 500, 600],
            Dataset::Didi => vec![300, 400, 500, 600, 700],
        }
    }
}

/// The ΔT sweep of Fig. 5/6, in seconds (Table III; default 5).
pub const DELTA_T_SWEEP: [f64; 5] = [5.0, 6.0, 7.0, 8.0, 9.0];

/// The reachable-distance sweep of Fig. 9, in kilometres (default 1).
pub const REACHABLE_DISTANCE_SWEEP: [f64; 5] = [0.05, 0.1, 0.5, 1.0, 5.0];

/// The availability-window sweep of Fig. 10, in hours (default 1).
pub const AVAILABLE_TIME_SWEEP: [f64; 5] = [0.25, 0.5, 0.75, 1.0, 1.25];

/// The task valid-time sweep of Fig. 11, in seconds (default 40).
pub const VALID_TIME_SWEEP: [f64; 5] = [10.0, 20.0, 30.0, 40.0, 50.0];

/// Global scaling of the experiment workloads, read from `DATAWA_SCALE`.
///
/// The paper's full-size traces with per-event exact replanning take hours of
/// CPU; the default scale keeps every binary in the minutes range while
/// preserving the worker-to-task ratio (and therefore which method wins and
/// by roughly what factor). Set `DATAWA_SCALE=1` to reproduce the full sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Multiplicative factor applied to |W| and |S|.
    pub factor: f64,
}

impl ExperimentScale {
    /// The default scale used when the environment variable is absent.
    pub const DEFAULT_FACTOR: f64 = 0.04;

    /// Reads the scale from the `DATAWA_SCALE` environment variable (via
    /// [`datawa_core::env_config::scale_factor`], which validates the range).
    pub fn from_env() -> ExperimentScale {
        let factor = datawa_core::env_config::scale_factor().unwrap_or(Self::DEFAULT_FACTOR);
        ExperimentScale { factor }
    }

    /// A fixed scale (used by tests and benches).
    pub fn fixed(factor: f64) -> ExperimentScale {
        assert!(factor > 0.0);
        ExperimentScale { factor }
    }

    /// Applies the scale to a raw count from the Table III sweeps.
    pub fn apply(&self, count: usize) -> usize {
        ((count as f64 * self.factor).round() as usize).max(1)
    }
}

/// Builds the pipeline configuration used by the experiment binaries, honouring
/// five optional environment variables so that quick, scaled-down captures
/// are possible without recompiling:
///
/// * `DATAWA_EPOCHS` — predictor training epochs (default 8);
/// * `DATAWA_REPLAN` — re-plan every N arrival events (default 1, the paper's
///   setting);
/// * `DATAWA_REPLAN_DT` — additionally re-plan every Δt simulated seconds via
///   the discrete-event engine's replan ticks (default off);
/// * `DATAWA_GRID` — prediction grid cells per side (default 6);
/// * `DATAWA_THREADS` — planner-pool threads for the partitioned search
///   (default 1). The same knob is available programmatically as
///   `AssignConfig::threads` (`PipelineConfig::assign.threads`); assignment
///   results are identical for every thread count by construction, only the
///   planning wall-clock changes. The CI matrix runs the whole tier-1 suite
///   at `DATAWA_THREADS=4` to keep the parallel path exercised.
pub fn pipeline_config_from_env() -> datawa_sim::PipelineConfig {
    use datawa_core::env_config;
    let mut config = datawa_sim::PipelineConfig::default();
    if let Some(threads) = env_config::threads_override() {
        config.assign.threads = threads;
    }
    if let Some(epochs) = env_config::epochs() {
        config.training.epochs = epochs;
    }
    if let Some(replan) = env_config::replan_every() {
        config.replan_every = replan;
    }
    if let Some(dt) = env_config::replan_interval() {
        config.replan_interval = Some(dt);
    }
    if let Some(grid) = env_config::grid_cells_per_side() {
        config.grid_cells_per_side = grid;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_table_iii() {
        assert_eq!(Dataset::Yueche.task_sweep().len(), 5);
        assert_eq!(Dataset::Didi.task_sweep()[0], 5_000);
        assert_eq!(DELTA_T_SWEEP[0], 5.0);
        assert_eq!(REACHABLE_DISTANCE_SWEEP[4], 5.0);
        assert_eq!(AVAILABLE_TIME_SWEEP[3], 1.0);
        assert_eq!(VALID_TIME_SWEEP[3], 40.0);
    }

    #[test]
    fn dataset_presets_match_table_ii() {
        assert_eq!(Dataset::Yueche.spec().workers, 624);
        assert_eq!(Dataset::Didi.spec().tasks, 8_869);
        assert_eq!(Dataset::Yueche.name(), "Yueche");
    }

    #[test]
    fn scale_application_rounds_and_clamps() {
        let s = ExperimentScale::fixed(0.1);
        assert_eq!(s.apply(11_000), 1_100);
        assert_eq!(ExperimentScale::fixed(0.0001).apply(100), 1);
    }
}
