//! The sharded stream engine: one runner state per spatial shard.
//!
//! [`ShardedStreamEngine`] layers spatial sharding (a
//! [`datawa_geo::ShardMap`] of row bands over the study-area grid) on top of
//! the discrete-event engine: every arrival is routed to the shard owning
//! its location, each shard drives its own independent
//! [`datawa_assign::RunnerState`], and replan ticks step all shards — on a
//! thread pool when `threads > 1`, which is sound because shard states share
//! nothing mutable (the runner they borrow is `Sync`).
//!
//! Each shard's runner state carries its own [`datawa_assign::DirtySet`]
//! and its own planner-local incremental plan cache: events dirty only the
//! shard that owns them, so plan reuse composes with sharding — a busy
//! shard recomputes while its quiet neighbours splice cached plans.
//!
//! ## Boundary workers
//!
//! A worker whose reachable disc straddles a shard edge could compete for
//! tasks in several shards; replicating it would double-plan it, dropping it
//! would waste supply. The engine instead *hands the worker to exactly one
//! owning shard* at its first replan instant (its arrival): among the shards
//! its disc touches, the one currently holding the most open tasks wins
//! (ties to the lowest shard id — deterministic). Every worker therefore
//! lives in exactly one shard for its whole session, which is the invariant
//! the sharding property tests pin: hand-off never drops nor double-plans a
//! worker.
//!
//! Sharding is an approximation knob, not a replay-exact mode: a boundary
//! worker only sees its owning shard's tasks, so assignment totals can
//! differ from the unsharded engine. With a single shard the router is the
//! identity and the engine reproduces [`StreamEngine`](crate::StreamEngine)
//! outcomes exactly (pinned by tests).

use crate::engine::{EngineConfig, EngineStats};
use crate::event::{Event, EventQueue};
use crate::scenario::Workload;
use crate::session::{NullSink, Session};
use datawa_assign::{
    pool, AdaptiveRunner, ForecastProvider, PredictedTaskInput, RunOutcome, StaticForecast,
};
use datawa_core::Duration;
use datawa_geo::ShardMap;

/// Configuration of a sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardedEngineConfig {
    /// The per-shard engine behaviour (replan batching, release-on-offline).
    pub engine: EngineConfig,
    /// Threads used to step shards at replan ticks. `0` defers to
    /// `DATAWA_THREADS` (see [`pool::effective_threads`]).
    pub threads: usize,
}

/// Per-shard routing counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardRouting {
    /// Workers routed to (and planned by) this shard.
    pub workers: usize,
    /// Tasks routed to this shard.
    pub tasks: usize,
}

/// Result of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Aggregate outcome over all shards. `per_worker` is left empty here —
    /// worker ids are shard-local dense ids; consult
    /// [`ShardedOutcome::per_shard`] for per-worker detail.
    pub run: RunOutcome,
    /// Each shard's own outcome, by shard index.
    pub per_shard: Vec<RunOutcome>,
    /// Aggregate engine counters (plus planning peaks over all shards).
    pub stats: EngineStats,
    /// Routing counters, by shard index.
    pub routing: Vec<ShardRouting>,
    /// Workers whose reachable disc straddled a shard edge and went through
    /// the owning-shard hand-off.
    pub boundary_workers: usize,
}

/// The spatially sharded discrete-event engine.
pub struct ShardedStreamEngine {
    map: ShardMap,
    config: ShardedEngineConfig,
    queue: EventQueue,
    stats: EngineStats,
}

impl ShardedStreamEngine {
    /// Creates a sharded engine. Panics on a non-positive `replan_interval`
    /// for the same reason [`crate::StreamEngine::new`] does.
    pub fn new(map: ShardMap, config: ShardedEngineConfig) -> ShardedStreamEngine {
        if let Some(dt) = config.engine.replan_interval {
            assert!(
                dt.is_finite() && dt > 0.0,
                "replan_interval must be a positive finite number of seconds, got {dt}"
            );
        }
        ShardedStreamEngine {
            map,
            config,
            queue: EventQueue::new(),
            stats: EngineStats::default(),
        }
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Schedules a whole workload (workers at online time, tasks at
    /// publication time).
    pub fn load(&mut self, workload: &Workload) {
        for w in &workload.workers {
            self.queue.push(w.on(), Event::WorkerOnline(*w));
        }
        for t in &workload.tasks {
            self.queue.push(t.publication, Event::TaskArrival(*t));
        }
    }

    /// Number of currently pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Drains the queue, driving one open [`Session`] per shard, and returns
    /// the combined outcome.
    ///
    /// The spine queue holds only arrival events and the global replan-tick
    /// chain; lifecycle events (expirations, offlines) are shard-local —
    /// each shard session schedules and fires its own. Before an arrival is
    /// routed (and before every global tick), all sessions are advanced to
    /// the current instant so shard-local lifecycle events due at or before
    /// it have fired; this reproduces the former single-queue global event
    /// order exactly, because same-instant lifecycle classes sort ahead of
    /// arrivals and ticks.
    pub fn run(
        &mut self,
        runner: &AdaptiveRunner,
        predicted: &[PredictedTaskInput],
    ) -> ShardedOutcome {
        let shard_count = self.map.shard_count();
        // Route predicted tasks like real arrivals: each goes only to the
        // shard owning its expected location, so predicted demand near a
        // band edge steers exactly one shard's planning (broadcasting it
        // would double-count future demand across shards).
        let mut predicted_by_shard: Vec<Vec<PredictedTaskInput>> = vec![Vec::new(); shard_count];
        for p in predicted {
            predicted_by_shard[self.map.shard_of(&p.location).index()].push(*p);
        }
        let mut forecasts: Vec<StaticForecast> = predicted_by_shard
            .into_iter()
            .map(StaticForecast::new)
            .collect();
        // Static providers are `Send`, so tick stepping fans out to the
        // planner pool exactly as before the forecast redesign.
        let providers: Vec<&mut StaticForecast> = forecasts.iter_mut().collect();
        self.run_spine(runner, providers, step_shards_parallel)
    }

    /// [`ShardedStreamEngine::run`] with one live [`ForecastProvider`] per
    /// shard (`forecasts.len()` must equal the shard count). Each shard's
    /// session routes its own arrivals into its own provider — shard-local
    /// occurrence histories — and re-queries it at that shard's planning
    /// instants; the providers' counters are merged into the aggregate
    /// outcome (`run.forecast`) in ascending shard (cell-band) index.
    ///
    /// Live model-backed providers are not thread-safe (the tensor substrate
    /// is `Rc`-based), so this path steps shards *sequentially* at global
    /// replan ticks — same deterministic order and results as a one-thread
    /// pool; the static path ([`ShardedStreamEngine::run`]) keeps the
    /// parallel fan-out.
    ///
    /// Panics if `forecasts.len()` differs from the map's shard count.
    pub fn run_with_forecasts(
        &mut self,
        runner: &AdaptiveRunner,
        forecasts: &mut [Box<dyn ForecastProvider>],
    ) -> ShardedOutcome {
        assert_eq!(
            forecasts.len(),
            self.map.shard_count(),
            "one forecast provider per shard is required"
        );
        let providers: Vec<&mut dyn ForecastProvider> =
            forecasts.iter_mut().map(|f| f.as_mut()).collect();
        self.run_spine(runner, providers, step_shards_sequential)
    }

    /// The shared spine loop: one open session per shard, each borrowing its
    /// shard-local forecast provider. `tick` steps every shard session at a
    /// global replan instant (parallel for `Send` providers, sequential
    /// otherwise — identical results either way, pinned by the
    /// thread-determinism tests).
    fn run_spine<'a, F, S>(
        &mut self,
        runner: &'a AdaptiveRunner,
        forecasts: Vec<&'a mut F>,
        tick: S,
    ) -> ShardedOutcome
    where
        F: ForecastProvider + ?Sized,
        S: Fn(usize, &mut [Session<'a, F>], datawa_core::Timestamp),
    {
        self.stats = EngineStats::default();
        self.queue.reset_peak();
        let shard_count = self.map.shard_count();
        // Per-shard sessions plan arrival-driven; the global tick chain is
        // owned by the spine loop, which steps every shard at once.
        let shard_config = EngineConfig {
            replan_interval: None,
            ..self.config.engine
        };
        let mut sessions: Vec<Session<'a, F>> = forecasts
            .into_iter()
            .map(|forecast| Session::open(runner, forecast, shard_config))
            .collect();
        let mut routing = vec![ShardRouting::default(); shard_count];
        let mut boundary_workers = 0usize;
        let threads = pool::effective_threads(self.config.threads);

        if let (Some(dt), Some(first)) =
            (self.config.engine.replan_interval, self.queue.peek_time())
        {
            self.queue.push(first + Duration(dt), Event::ReplanTick);
        }

        while let Some(scheduled) = self.queue.pop() {
            let now = scheduled.time;
            self.stats.events_processed += 1;
            match scheduled.event {
                Event::WorkerOnline(w) => {
                    self.stats.arrivals += 1;
                    for session in sessions.iter_mut() {
                        session.advance_to(now, &mut NullSink);
                    }
                    let candidates = self
                        .map
                        .shards_within_radius(&w.location, w.reachable_distance);
                    let shard = if candidates.len() <= 1 {
                        candidates.first().map(|s| s.index()).unwrap_or(0)
                    } else {
                        // Boundary hand-off: the owning shard is the one with
                        // the most open tasks right now (ties to the lowest
                        // shard id).
                        boundary_workers += 1;
                        let mut best = candidates[0].index();
                        let mut best_open = sessions[best].open_candidates();
                        for c in &candidates[1..] {
                            let open = sessions[c.index()].open_candidates();
                            if open > best_open {
                                best = c.index();
                                best_open = open;
                            }
                        }
                        best
                    };
                    routing[shard].workers += 1;
                    sessions[shard]
                        .ingest(now, Event::WorkerOnline(w))
                        // datawa-lint: allow(unwrap-in-hot-path) -- spine replay is time-ordered by construction; a regression is a harness bug
                        .expect("spine times are finite and never regress");
                    sessions[shard].advance_to(now, &mut NullSink);
                }
                Event::TaskArrival(t) => {
                    self.stats.arrivals += 1;
                    let shard = self.map.shard_of(&t.location).index();
                    routing[shard].tasks += 1;
                    sessions[shard]
                        .ingest(now, Event::TaskArrival(t))
                        // datawa-lint: allow(unwrap-in-hot-path) -- spine replay is time-ordered by construction; a regression is a harness bug
                        .expect("spine times are finite and never regress");
                    sessions[shard].advance_to(now, &mut NullSink);
                }
                Event::ReplanTick => {
                    self.stats.replan_ticks += 1;
                    // All shards re-plan at the same instant; their sessions
                    // are independent, so the stepper may fan them out to
                    // the pool. Each shard first fires its own lifecycle
                    // events due by `now`, then force-replans.
                    tick(threads, &mut sessions, now);
                    if let Some(dt) = self.config.engine.replan_interval {
                        if !self.queue.is_empty() {
                            self.queue.push(now + Duration(dt), Event::ReplanTick);
                        }
                    }
                }
                Event::TaskExpiration(_) | Event::WorkerOffline(_) => {
                    unreachable!("lifecycle events are shard-local in the sessioned engine")
                }
            }
        }

        // Close every shard: remaining shard-local lifecycle events (past the
        // last spine arrival) fire during the drain.
        let mut spine_peak = self.queue.peak_len();
        let mut per_shard: Vec<RunOutcome> = Vec::with_capacity(shard_count);
        for session in sessions {
            let outcome = session.close(&mut NullSink);
            self.stats.expirations += outcome.stats.expirations;
            self.stats.expired_open += outcome.stats.expired_open;
            self.stats.offline += outcome.stats.offline;
            // Shard sessions re-count their arrivals; only their lifecycle
            // pops add to the spine's event total.
            self.stats.events_processed += outcome.stats.events_processed - outcome.stats.arrivals;
            spine_peak += outcome.stats.peak_queue_len;
            per_shard.push(outcome.run);
        }

        // Upper bound on simultaneously pending events across the spine and
        // every shard-local queue.
        self.stats.peak_queue_len = spine_peak;
        let mut total = RunOutcome::default();
        for o in &per_shard {
            total.assigned_tasks += o.assigned_tasks;
            total.events += o.events;
            total.planning_calls += o.planning_calls;
            total.total_planning_seconds += o.total_planning_seconds;
            total.peak_partitions = total.peak_partitions.max(o.peak_partitions);
            total.peak_partition_workers =
                total.peak_partition_workers.max(o.peak_partition_workers);
            total.peak_pool_occupancy = total.peak_pool_occupancy.max(o.peak_pool_occupancy);
            // Shard index order == row-band order: a deterministic merge.
            total.forecast = total.forecast.merged(o.forecast);
        }
        total.mean_planning_seconds = if total.planning_calls == 0 {
            0.0
        } else {
            total.total_planning_seconds / total.planning_calls as f64
        };
        self.stats.peak_partitions = total.peak_partitions;
        self.stats.peak_partition_workers = total.peak_partition_workers;
        self.stats.peak_pool_occupancy = total.peak_pool_occupancy;
        record_shard_metrics(runner.metrics(), &per_shard, &routing, boundary_workers);
        ShardedOutcome {
            run: total,
            per_shard,
            stats: self.stats,
            routing,
            boundary_workers,
        }
    }
}

/// Records the per-shard load picture into the runner's observability
/// registry at the end of a sharded run: one gauge triplet per shard
/// (`shard.<i>.workers` / `.tasks` / `.assigned`, from the routing counters
/// and shard outcomes) plus the aggregate skew gauge
/// `shard.load_skew_pct` — the most-loaded shard's routed-task count as a
/// percentage of the per-shard mean (100 = perfectly balanced bands; higher
/// means the banding is concentrating demand) — and
/// `shard.boundary_workers`, how many workers went through the owning-shard
/// hand-off. A detached registry makes this a no-op.
fn record_shard_metrics(
    obs: &datawa_obs::MetricsRegistry,
    per_shard: &[RunOutcome],
    routing: &[ShardRouting],
    boundary_workers: usize,
) {
    if !obs.is_attached() || routing.is_empty() {
        return;
    }
    for (i, (outcome, route)) in per_shard.iter().zip(routing).enumerate() {
        obs.gauge(&format!("shard.{i}.workers"))
            .set(route.workers as i64);
        obs.gauge(&format!("shard.{i}.tasks"))
            .set(route.tasks as i64);
        obs.gauge(&format!("shard.{i}.assigned"))
            .set(outcome.assigned_tasks as i64);
    }
    let total_tasks: usize = routing.iter().map(|r| r.tasks).sum();
    let max_tasks = routing.iter().map(|r| r.tasks).max().unwrap_or(0);
    let skew_pct = (max_tasks * routing.len() * 100)
        .checked_div(total_tasks)
        .unwrap_or(100);
    obs.gauge("shard.load_skew_pct").set(skew_pct as i64);
    obs.gauge("shard.boundary_workers")
        .set(boundary_workers as i64);
}

/// Steps every shard session at a global replan tick on the planner pool
/// (sound because shard sessions share nothing mutable and their `Send`
/// providers travel with them).
fn step_shards_parallel<F: ForecastProvider + Send>(
    threads: usize,
    sessions: &mut [Session<'_, F>],
    now: datawa_core::Timestamp,
) {
    pool::scatter_mut(threads, sessions, |_, session| {
        let mut sink = NullSink;
        session.advance_to(now, &mut sink);
        session.force_replan(now, &mut sink);
    });
}

/// Sequential tick stepping, in ascending shard index — the fallback for
/// providers that are not `Send` (live model-backed forecasters). Produces
/// the same results as the parallel stepper (shard sessions are
/// independent), just without the fan-out.
fn step_shards_sequential<F: ForecastProvider + ?Sized>(
    _threads: usize,
    sessions: &mut [Session<'_, F>],
    now: datawa_core::Timestamp,
) {
    for session in sessions.iter_mut() {
        let mut sink = NullSink;
        session.advance_to(now, &mut sink);
        session.force_replan(now, &mut sink);
    }
}

/// One-shot convenience: build a sharded engine, load `workload`, run
/// `runner`.
pub fn run_workload_sharded(
    runner: &AdaptiveRunner,
    workload: &Workload,
    predicted: &[PredictedTaskInput],
    map: ShardMap,
    config: ShardedEngineConfig,
) -> ShardedOutcome {
    let mut engine = ShardedStreamEngine::new(map, config);
    engine.load(workload);
    engine.run(runner, predicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_workload;
    use crate::scenario::{builtin_scenarios, ScenarioGenerator, ScenarioSpec, UniformBaseline};
    use datawa_assign::ForecastStats;
    use datawa_assign::{AssignConfig, PolicyKind};
    use datawa_core::location::BoundingBox;
    use datawa_core::Location;
    use datawa_geo::{GridSpec, UniformGrid};

    fn shard_map(area_km: f64, rows: u32, shards: u32) -> ShardMap {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(area_km, area_km));
        ShardMap::new(UniformGrid::new(GridSpec::new(area, rows, rows)), shards)
    }

    fn runner(policy: PolicyKind) -> AdaptiveRunner {
        AdaptiveRunner::new(AssignConfig::default(), policy)
    }

    #[test]
    fn single_shard_reproduces_the_unsharded_engine_exactly() {
        let spec = ScenarioSpec::small().with_tasks(200).with_workers(15);
        let workload = UniformBaseline::new(spec).generate();
        for policy in [PolicyKind::Greedy, PolicyKind::Fta, PolicyKind::Dta] {
            let plain = run_workload(&runner(policy), &workload, &[], EngineConfig::default());
            let sharded = run_workload_sharded(
                &runner(policy),
                &workload,
                &[],
                shard_map(spec.area_km, 8, 1),
                ShardedEngineConfig::default(),
            );
            assert_eq!(sharded.per_shard.len(), 1);
            assert_eq!(
                sharded.run.assigned_tasks,
                plain.run.assigned_tasks,
                "{} diverged with one shard",
                policy.name()
            );
            assert_eq!(sharded.per_shard[0].per_worker, plain.run.per_worker);
            assert_eq!(sharded.run.planning_calls, plain.run.planning_calls);
            assert_eq!(sharded.boundary_workers, 0);
        }
    }

    #[test]
    fn single_shard_reproduces_the_unsharded_engine_with_predicted_tasks() {
        // Predicted demand must be routed, not broadcast: with one shard the
        // routing is the identity, so the prediction-aware policy must match
        // the unsharded engine exactly.
        let spec = ScenarioSpec::small().with_tasks(200).with_workers(15);
        let workload = UniformBaseline::new(spec).generate();
        let predicted: Vec<PredictedTaskInput> = workload
            .tasks
            .iter()
            .step_by(7)
            .map(|t| PredictedTaskInput {
                location: t.location,
                publication: t.publication + Duration(120.0),
                expiration: t.expiration + Duration(120.0),
            })
            .collect();
        assert!(!predicted.is_empty());
        let plain = run_workload(
            &runner(PolicyKind::DtaTp),
            &workload,
            &predicted,
            EngineConfig::default(),
        );
        let sharded = run_workload_sharded(
            &runner(PolicyKind::DtaTp),
            &workload,
            &predicted,
            shard_map(spec.area_km, 8, 1),
            ShardedEngineConfig::default(),
        );
        assert_eq!(sharded.run.assigned_tasks, plain.run.assigned_tasks);
        assert_eq!(sharded.per_shard[0].per_worker, plain.run.per_worker);
    }

    #[test]
    fn routing_covers_every_arrival_exactly_once() {
        let spec = ScenarioSpec::small().with_tasks(300).with_workers(30);
        for scenario in builtin_scenarios(spec) {
            let workload = scenario.generate();
            let outcome = run_workload_sharded(
                &runner(PolicyKind::Greedy),
                &workload,
                &[],
                shard_map(spec.area_km, 8, 4),
                ShardedEngineConfig::default(),
            );
            let workers: usize = outcome.routing.iter().map(|r| r.workers).sum();
            let tasks: usize = outcome.routing.iter().map(|r| r.tasks).sum();
            assert_eq!(workers, workload.workers.len(), "{}", scenario.name());
            assert_eq!(tasks, workload.tasks.len(), "{}", scenario.name());
            assert_eq!(outcome.run.events, workload.arrival_count());
            let per_shard_assigned: usize =
                outcome.per_shard.iter().map(|o| o.assigned_tasks).sum();
            assert_eq!(per_shard_assigned, outcome.run.assigned_tasks);
            assert!(outcome.run.assigned_tasks <= workload.tasks.len());
        }
    }

    #[test]
    fn boundary_workers_are_counted_and_still_serve() {
        // A 1 km reachable radius on a 10 km area with 4 row bands: plenty of
        // workers straddle band edges.
        let spec = ScenarioSpec::small().with_tasks(400).with_workers(40);
        let workload = UniformBaseline::new(spec).generate();
        let outcome = run_workload_sharded(
            &runner(PolicyKind::Dta),
            &workload,
            &[],
            shard_map(spec.area_km, 16, 4),
            ShardedEngineConfig::default(),
        );
        assert!(outcome.boundary_workers > 0, "no boundary worker observed");
        assert!(outcome.run.assigned_tasks > 0);
        // Hand-off picked exactly one shard per boundary worker.
        let routed: usize = outcome.routing.iter().map(|r| r.workers).sum();
        assert_eq!(routed, workload.workers.len());
    }

    #[test]
    fn per_shard_providers_match_the_routed_static_path() {
        // run() routes the predicted slice per shard into StaticForecasts;
        // handing the same routed providers through run_with_forecasts must
        // reproduce it exactly (the sequential tick stepper is outcome-
        // equivalent to the pooled one), with the counters merged in shard
        // index order.
        let spec = ScenarioSpec::small().with_tasks(250).with_workers(20);
        let workload = UniformBaseline::new(spec).generate();
        let predicted: Vec<PredictedTaskInput> = workload
            .tasks
            .iter()
            .step_by(11)
            .map(|t| PredictedTaskInput {
                location: t.location,
                publication: t.publication + Duration(90.0),
                expiration: t.expiration + Duration(90.0),
            })
            .collect();
        let map = || shard_map(spec.area_km, 8, 4);
        let config = ShardedEngineConfig {
            engine: EngineConfig::ticked(60.0),
            ..ShardedEngineConfig::default()
        };

        let routed = run_workload_sharded(
            &runner(PolicyKind::DtaTp),
            &workload,
            &predicted,
            map(),
            config,
        );

        let m = map();
        let mut providers: Vec<Box<dyn ForecastProvider>> = {
            let mut by_shard: Vec<Vec<PredictedTaskInput>> = vec![Vec::new(); m.shard_count()];
            for p in &predicted {
                by_shard[m.shard_of(&p.location).index()].push(*p);
            }
            by_shard
                .into_iter()
                .map(|pred| Box::new(StaticForecast::new(pred)) as Box<dyn ForecastProvider>)
                .collect()
        };
        let mut engine = ShardedStreamEngine::new(m, config);
        engine.load(&workload);
        let with_providers = engine.run_with_forecasts(&runner(PolicyKind::DtaTp), &mut providers);

        assert_eq!(with_providers.run.assigned_tasks, routed.run.assigned_tasks);
        for (a, b) in with_providers.per_shard.iter().zip(&routed.per_shard) {
            assert_eq!(a.assigned_tasks, b.assigned_tasks);
            assert_eq!(a.per_worker, b.per_worker);
        }
        assert_eq!(with_providers.routing, routed.routing);
        // Both paths observed every routed task exactly once and the merge
        // is the shard-index fold of the per-shard counters.
        assert_eq!(with_providers.run.forecast.observed, workload.tasks.len());
        assert_eq!(with_providers.run.forecast, routed.run.forecast);
        let folded = with_providers
            .per_shard
            .iter()
            .fold(ForecastStats::default(), |acc, o| acc.merged(o.forecast));
        assert_eq!(folded, with_providers.run.forecast);
    }

    #[test]
    fn sharded_runs_are_deterministic_for_any_thread_count() {
        let spec = ScenarioSpec::small().with_tasks(250).with_workers(20);
        let workload = UniformBaseline::new(spec).generate();
        let map = || shard_map(spec.area_km, 8, 4);
        let config = |threads| ShardedEngineConfig {
            engine: EngineConfig::ticked(60.0),
            threads,
        };
        let one = run_workload_sharded(&runner(PolicyKind::Dta), &workload, &[], map(), config(1));
        let four = run_workload_sharded(&runner(PolicyKind::Dta), &workload, &[], map(), config(4));
        assert_eq!(one.run.assigned_tasks, four.run.assigned_tasks);
        for (a, b) in one.per_shard.iter().zip(&four.per_shard) {
            assert_eq!(a.per_worker, b.per_worker);
            assert_eq!(a.assigned_tasks, b.assigned_tasks);
        }
        assert_eq!(one.routing, four.routing);
    }
}
