//! Regenerates Table II: the dataset statistics of the two (synthetic
//! stand-in) traces.

use datawa_experiments::{format_table, Dataset, Table};
use datawa_sim::SyntheticTrace;

fn main() {
    let mut table = Table::new(vec!["Dataset", "|W|", "|S|", "Time range", "Region"]);
    for dataset in [Dataset::Yueche, Dataset::Didi] {
        let spec = dataset.spec();
        let trace = SyntheticTrace::generate(spec);
        table.push_row(vec![
            dataset.name().to_string(),
            trace.workers.len().to_string(),
            trace.tasks.len().to_string(),
            format!(
                "{:.0}h horizon (+{:.0}h history)",
                spec.horizon / 3600.0,
                spec.history / 3600.0
            ),
            format!(
                "synthetic {:.0}x{:.0} km hotspot city",
                spec.area_km, spec.area_km
            ),
        ]);
    }
    println!("Table II — datasets (synthetic stand-ins matching the published counts)\n");
    println!("{}", format_table(&table));
}
