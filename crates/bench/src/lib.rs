//! # datawa-bench
//!
//! Criterion benchmarks regenerating the performance panels of the paper's
//! evaluation (the CPU-time halves of Fig. 5–11) plus ablation and substrate
//! micro-benchmarks. See `benches/` for the individual harnesses and
//! `EXPERIMENTS.md` for the mapping from benchmark to paper figure.
//!
//! The benches intentionally use small Criterion sample counts and scaled
//! workloads so that `cargo bench --workspace` completes in minutes; the
//! experiment binaries in `datawa-experiments` are the place to run the full
//! sweeps.

/// Shared helper: a deterministic, laptop-sized trace used by several benches
/// so their numbers are comparable run-to-run.
pub fn small_trace(scale: f64) -> datawa_sim::SyntheticTrace {
    datawa_sim::SyntheticTrace::generate(datawa_sim::TraceSpec::yueche().scaled(scale))
}

/// Shared helper: a planning snapshot (available workers, open tasks) taken
/// near the middle of the trace horizon.
///
/// Task valid times are short (40 s by default), so a single fixed instant can
/// land between publications on small traces; this scans a few instants around
/// the midpoint and returns the first with both open tasks and available
/// workers (falling back to the exact midpoint).
pub fn snapshot_at_mid(
    trace: &datawa_sim::SyntheticTrace,
) -> (
    Vec<datawa_core::WorkerId>,
    Vec<datawa_core::TaskId>,
    datawa_core::Timestamp,
) {
    let mid = trace.spec.horizon * 0.5;
    for step in 0..40 {
        let now = datawa_core::Timestamp(mid + step as f64 * 10.0);
        let workers = trace.workers.available_at(now);
        let tasks = trace.tasks.open_at(now);
        if !workers.is_empty() && !tasks.is_empty() {
            return (workers, tasks, now);
        }
    }
    let now = datawa_core::Timestamp(mid);
    (
        trace.workers.available_at(now),
        trace.tasks.open_at(now),
        now,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_nonempty_snapshots() {
        let trace = small_trace(0.05);
        let (workers, tasks, now) = snapshot_at_mid(&trace);
        assert!(!workers.is_empty());
        assert!(!tasks.is_empty());
        assert!(now.0 > 0.0);
    }
}
