//! Property tests for the deterministic same-instant ordering contract:
//! events scheduled at one timestamp always fire in *expiration → offline →
//! online → arrival → replan-tick* class order with FIFO tie-breaks inside
//! each class — both through the raw [`EventQueue`] and through
//! [`Session::ingest`] (observed via the [`DecisionSink::observe_event`]
//! hook).

use datawa::prelude::*;
use proptest::prelude::*;

/// A compact spec of one same-timestamp event: which class, with a payload
/// tag that survives the trip through the queue so FIFO order is checkable.
#[derive(Debug, Clone, Copy)]
enum EventSpec {
    Expiration,
    Offline,
    Online,
    Arrival,
    Tick,
}

fn event_spec() -> impl Strategy<Value = EventSpec> {
    prop_oneof![
        Just(EventSpec::Expiration),
        Just(EventSpec::Offline),
        Just(EventSpec::Online),
        Just(EventSpec::Arrival),
        Just(EventSpec::Tick),
    ]
}

/// Builds the concrete event for a spec. `tag` becomes the payload id (the
/// queue preserves payloads untouched; stores only reassign ids at
/// insertion, which does not alter the `Event` carried by the queue).
/// Lifecycle ids are wrapped into `0..seeded` so they always refer to
/// entities a session has actually inserted.
fn build(spec: EventSpec, tag: u32, at: f64, seeded: u32) -> Event {
    match spec {
        EventSpec::Expiration => Event::TaskExpiration(TaskId(tag % seeded)),
        EventSpec::Offline => Event::WorkerOffline(WorkerId(tag % seeded)),
        EventSpec::Online => Event::WorkerOnline(Worker::new(
            WorkerId(tag),
            Location::new(1.0, 1.0),
            1.0,
            Timestamp(at),
            Timestamp(at + 100.0),
        )),
        EventSpec::Arrival => Event::TaskArrival(Task::new(
            TaskId(tag),
            Location::new(2.0, 2.0),
            Timestamp(at),
            Timestamp(at + 50.0),
        )),
        EventSpec::Tick => Event::ReplanTick,
    }
}

/// The class the contract expects, and the payload tag for FIFO checking.
fn observed_key(event: &Event) -> (u8, Option<u32>) {
    match event {
        Event::TaskExpiration(id) => (0, Some(id.0)),
        Event::WorkerOffline(id) => (1, Some(id.0)),
        Event::WorkerOnline(w) => (2, Some(w.id.0)),
        Event::TaskArrival(t) => (3, Some(t.id.0)),
        Event::ReplanTick => (4, None),
    }
}

/// Asserts the contract over an observed firing order: classes
/// non-decreasing, FIFO (by submission index) within each class.
fn assert_class_then_fifo(submitted: &[(u8, Option<u32>)], fired: &[(u8, Option<u32>)]) {
    assert_eq!(fired.len(), submitted.len());
    let mut expected = Vec::new();
    for class in 0u8..=4 {
        expected.extend(submitted.iter().filter(|(c, _)| *c == class).copied());
    }
    // Class-stable reordering of the submission sequence is exactly
    // "class order with FIFO tie-breaks".
    assert_eq!(fired, &expected[..]);
}

/// A sink that records every processed event in firing order.
#[derive(Default)]
struct RecordingSink {
    fired: Vec<(u8, Option<u32>)>,
}

impl DecisionSink for RecordingSink {
    fn emit(&mut self, _decision: Decision) {}
    fn observe_event(&mut self, _time: Timestamp, event: &Event) {
        self.fired.push(observed_key(event));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw queue: any same-timestamp batch pops in class order, FIFO within
    /// class, regardless of submission order.
    #[test]
    fn event_queue_fires_same_instant_batches_in_class_then_fifo_order(
        specs in prop::collection::vec(event_spec(), 1..40),
    ) {
        let t = Timestamp(10.0);
        let mut queue = EventQueue::new();
        let mut submitted = Vec::new();
        for (i, &spec) in specs.iter().enumerate() {
            let event = build(spec, i as u32, t.0, u32::MAX);
            submitted.push(observed_key(&event));
            queue.push(t, event);
        }
        let fired: Vec<(u8, Option<u32>)> =
            std::iter::from_fn(|| queue.pop()).map(|s| observed_key(&s.event)).collect();
        assert_class_then_fifo(&submitted, &fired);
    }

    /// Through the session: ingesting the same batch and advancing past it
    /// processes the events in exactly the same contract order (seen by the
    /// sink's observe hook). Lifecycle events reference entities seeded at
    /// an earlier instant so every id is live.
    #[test]
    fn session_ingest_fires_same_instant_batches_in_class_then_fifo_order(
        specs in prop::collection::vec(event_spec(), 1..40),
        seeded_count in 1usize..5,
    ) {
        let seeded = seeded_count as u32;
        let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Greedy);
        let mut sink = RecordingSink::default();
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&runner, &mut forecast, EngineConfig::default());

        // Seed entities far away from each other so nothing is served (no
        // entity leaves the views between the two instants).
        let t0 = Timestamp(0.0);
        for i in 0..seeded {
            session.ingest(t0, build(EventSpec::Online, i, t0.0, seeded)).unwrap();
            session.ingest(t0, build(EventSpec::Arrival, i, t0.0, seeded)).unwrap();
        }
        session.advance_to(t0, &mut sink);
        sink.fired.clear();

        // The random same-instant batch, before any auto-scheduled death
        // (seed windows close at t=50/100) fires.
        let t1 = Timestamp(10.0);
        let mut submitted = Vec::new();
        for (i, &spec) in specs.iter().enumerate() {
            // Offset tags so batch arrivals are distinguishable from seeds.
            let event = build(spec, 1000 + i as u32, t1.0, seeded);
            submitted.push(observed_key(&event));
            session.ingest(t1, event).unwrap();
        }
        session.advance_to(t1, &mut sink);
        assert_class_then_fifo(&submitted, &sink.fired);

        // Drain cleanly: the auto-scheduled lifecycle events of every
        // arrival fire during close.
        let batch_arrivals = submitted.iter().filter(|(c, _)| *c == 2 || *c == 3).count();
        let outcome = session.close(&mut sink);
        prop_assert_eq!(outcome.stats.arrivals, batch_arrivals + 2 * seeded as usize);
    }
}
