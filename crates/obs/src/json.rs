//! A minimal JSON document model with a renderer and a parser.
//!
//! The workspace's vendored `serde` is a marker-trait stub (the build
//! environment is offline, so there is no `serde_json`), which means actual
//! serialization has to be done by hand. This module carries exactly the
//! slice of JSON the observability layer needs: objects with ordered keys
//! (deterministic output), arrays, strings, booleans, null, and numbers
//! rendered losslessly for integers below 2^53. `BENCH_*.json` files are
//! produced by [`JsonValue::render`] and validated by [`JsonValue::parse`].

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved as constructed/parsed.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn object(entries: Vec<(String, JsonValue)>) -> JsonValue {
        JsonValue::Obj(entries)
    }

    /// A number from a `u64` (exact below 2^53 — every metric this layer
    /// emits in practice).
    pub fn from_u64(v: u64) -> JsonValue {
        JsonValue::Num(v as f64)
    }

    /// A number from an `i64`.
    pub fn from_i64(v: i64) -> JsonValue {
        JsonValue::Num(v as f64)
    }

    /// A number from an `f64` (must be finite; NaN/∞ render as `null`).
    pub fn from_f64(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Num(v)
        } else {
            JsonValue::Null
        }
    }

    /// A string value.
    pub fn string(v: impl Into<String>) -> JsonValue {
        JsonValue::Str(v.into())
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The entries of an object (empty for non-objects).
    pub fn entries(&self) -> &[(String, JsonValue)] {
        match self {
            JsonValue::Obj(entries) => entries,
            _ => &[],
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[JsonValue] {
        match self {
            JsonValue::Arr(items) => items,
            _ => &[],
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The number as a signed integer (rejects fractional values).
    pub fn as_i64(&self) -> Option<i64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) {
            Some(v as i64)
        } else {
            None
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace, object key order preserved).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 9e15 {
                    // Integral values render without an exponent or decimal
                    // point so counters stay grep-able.
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// A human-readable message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let c = rest.chars().next().expect("non-empty by guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid utf-8".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_nested_documents() {
        let doc = JsonValue::object(vec![
            ("name".to_string(), JsonValue::string("soak \"run\"\n")),
            ("events".to_string(), JsonValue::from_u64(1_000_000)),
            ("rate".to_string(), JsonValue::from_f64(12345.678)),
            ("neg".to_string(), JsonValue::from_i64(-42)),
            ("ok".to_string(), JsonValue::Bool(true)),
            ("none".to_string(), JsonValue::Null),
            (
                "runs".to_string(),
                JsonValue::Arr(vec![JsonValue::from_u64(1), JsonValue::from_u64(2)]),
            ),
        ]);
        let text = doc.render();
        let back = JsonValue::parse(&text).expect("reparse");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("events").and_then(JsonValue::as_u64),
            Some(1_000_000)
        );
        assert_eq!(back.get("neg").and_then(JsonValue::as_i64), Some(-42));
        assert_eq!(back.get("runs").map(|r| r.items().len()), Some(2));
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(JsonValue::from_u64(2_000_000).render(), "2000000");
        assert_eq!(JsonValue::from_i64(-7).render(), "-7");
        assert_eq!(JsonValue::from_f64(f64::NAN).render(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("nope").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\\u0041\" : [ 1 , -2.5e1 ] } ").expect("parse");
        assert_eq!(v.entries()[0].0, "aA");
        assert_eq!(
            v.get("aA").map(|a| a.items()[1].as_f64()),
            Some(Some(-25.0))
        );
    }
}
