//! Row-major dense `f64` matrices.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense row-major matrix of `f64` values.
///
/// This is the raw numeric workhorse under the autograd layer; it carries no
/// gradient information itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a 1×n row vector.
    pub fn row_vector(values: &[f64]) -> Matrix {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an n×1 column vector.
    pub fn col_vector(values: &[f64]) -> Matrix {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two same-shaped matrices.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds a 1×cols row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += row.data[c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column-wise sum collapsed to a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, &v| acc.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Row-wise softmax: each row is exponentiated (shifted by its maximum for
    /// numerical stability) and normalised to sum to one.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copy of a contiguous block of rows `[start, start+len)`.
    pub fn rows_slice(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "rows_slice out of range");
        Matrix::from_vec(
            len,
            self.cols,
            self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        )
    }

    /// Gathers the given rows (in order, with repetition allowed) into a new
    /// matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather index out of range");
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Whether every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn broadcast_adds_bias_to_every_row() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::row_vector(&[1.0, -1.0]);
        let c = a.add_row_broadcast(&b);
        for r in 0..3 {
            assert_eq!(c.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn softmax_rows_are_stochastic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
        // Uniform row stays uniform (and does not overflow).
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sum_mean_and_norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn concat_and_slice_and_gather() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let b = Matrix::from_rows(&[&[4.0], &[5.0], &[6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(1), &[2.0, 5.0]);
        let s = c.rows_slice(1, 2);
        assert_eq!(s.row(0), &[2.0, 5.0]);
        let g = c.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[3.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 4.0]);
        assert_eq!(g.row(2), &[3.0, 6.0]);
    }

    #[test]
    fn sum_rows_collapses_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
