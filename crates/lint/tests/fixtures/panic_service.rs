// Fixture: panic-in-service-path (observe-only warning). Scanned with
// `--context net`, so this file masquerades as production code of the
// transport front-end. It is never compiled — the engine's workspace walk
// skips `tests/fixtures`.

fn positive_explicit_panic(frame: Frame) {
    panic!("unhandled frame {frame:?}");
}

fn positive_unreachable_arm(code: u8) -> ErrorCode {
    match code {
        0 => ErrorCode::BadHello,
        _ => unreachable!("codec never yields this"),
    }
}

fn positive_unfinished_path() {
    todo!("resume not implemented yet")
}

fn negative_typed_refusal(writer: &SharedWriter) {
    send(writer, &Frame::Error { code: ErrorCode::Protocol, message: "bad".into() });
}

fn negative_expect_is_a_different_rule(lock: &Mutex<u32>) -> u32 {
    *lock.lock().expect("registry poisoned")
}

fn suppressed_chaos_injection() {
    // datawa-lint: allow(panic-in-service-path) -- deterministic fault injection, caught by the pump supervisor
    panic!("chaos: injected pump kill");
}
