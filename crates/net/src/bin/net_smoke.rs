//! CI smoke test for the transport front-end: bind a loopback server, drive
//! two concurrent tenant clients through real TCP connections plus one
//! retrying [`ResilientClient`], and assert nonzero per-tenant decision
//! counts, zero gave-ups, and a clean shutdown. Prints `net_smoke_ok=1` on
//! success; any failure exits nonzero (the CI job also wraps the whole run
//! in `timeout`, so a hang fails too).

use datawa_net::{NetClient, NetConfig, NetServer, ResilientClient, RetryOutcome, RetryPolicy};
use datawa_service::{IngestSource, SourcePoll, WorkloadSource};
use datawa_stream::{ScenarioGenerator, ScenarioSpec, UniformBaseline, Workload};

fn drive(addr: std::net::SocketAddr, tenant: &'static str, seed: u64) -> (u64, u64) {
    let workload: Workload = UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(200)
            .with_workers(12)
            .with_seed(seed),
    )
    .generate();
    let mut client = NetClient::connect(addr, tenant, "").expect("loopback handshake");
    let mut source = WorkloadSource::new(&workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event).expect("send event frame");
    }
    let outcome = client.close();
    assert!(
        outcome.errors.is_empty(),
        "{tenant}: server reported errors: {:?}",
        outcome.errors
    );
    let closed = outcome.closed.expect("orderly Closed frame");
    (closed.assigned, closed.decisions)
}

/// Drives the retrying client over a healthy loopback: it must complete on
/// the first attempt — a give-up (or any retry) here is a server bug.
fn drive_resilient(addr: std::net::SocketAddr) -> (u64, u64) {
    let workload: Workload = UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(200)
            .with_workers(12)
            .with_seed(43),
    )
    .generate();
    let mut client = ResilientClient::new(addr, "smoke-r", "", RetryPolicy::default());
    let mut source = WorkloadSource::new(&workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event);
    }
    match client.deliver() {
        RetryOutcome::Completed { outcome, attempts } => {
            assert_eq!(attempts, 1, "loopback delivery needed retries");
            assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
            let closed = outcome.closed.expect("orderly Closed frame");
            (closed.assigned, closed.decisions)
        }
        RetryOutcome::GaveUp {
            attempts,
            last_error,
            // datawa-lint: allow(panic-in-service-path) -- CI harness assertion, not serving code
        } => panic!("resilient tenant gave up after {attempts} attempts: {last_error}"),
    }
}

fn main() {
    let mut server = NetServer::bind(NetConfig::default()).expect("bind 127.0.0.1:0");
    let addr = server.addr();

    let a = std::thread::spawn(move || drive(addr, "smoke-a", 41));
    let b = std::thread::spawn(move || drive(addr, "smoke-b", 42));
    let r = std::thread::spawn(move || drive_resilient(addr));
    let (assigned_a, decisions_a) = a.join().expect("tenant a thread");
    let (assigned_b, decisions_b) = b.join().expect("tenant b thread");
    let (assigned_r, _decisions_r) = r.join().expect("resilient tenant thread");

    assert!(assigned_a > 0, "tenant smoke-a assigned nothing");
    assert!(assigned_b > 0, "tenant smoke-b assigned nothing");
    assert!(assigned_r > 0, "tenant smoke-r assigned nothing");

    let snapshot = server.metrics().snapshot();
    for tenant in ["smoke-a", "smoke-b", "smoke-r"] {
        let streamed = snapshot
            .counters
            .get(&format!("net.tenant.{tenant}.decisions"))
            .copied()
            .unwrap_or(0);
        assert!(streamed > 0, "{tenant} streamed no decisions");
    }
    let recoveries = snapshot
        .counters
        .get("net.pump_recoveries")
        .copied()
        .unwrap_or(0);
    assert_eq!(recoveries, 0, "healthy loopback triggered pump recoveries");
    // Server-side teardown races with the client's Closed receipt, so the
    // connection accounting is only checked after shutdown joins the workers.
    server.shutdown();
    assert_eq!(server.connections(), 0, "shutdown left live connections");
    let snapshot = server.metrics().snapshot();
    let connections = snapshot
        .gauges
        .get("net.connections")
        .map(|g| g.value)
        .unwrap_or(0);
    assert_eq!(
        connections, 0,
        "connections still registered after shutdown"
    );

    println!(
        "net_smoke tenants=2 assigned_a={assigned_a} assigned_b={assigned_b} \
         decisions_a={decisions_a} decisions_b={decisions_b}"
    );
    println!("net_smoke_ok=1");
}
