//! The determinism contract of the sharded planning refactor, pinned at the
//! integration level: assignment totals must be identical between 1 and 4
//! planner threads for Greedy, FTA, DTA and DATA-WA on all four built-in
//! scenario generators, and the partitioned planner must reproduce the
//! whole-tree serial search exactly.

use datawa::prelude::*;
use std::collections::HashSet;

fn outcome_with_threads(
    workload: &Workload,
    policy: PolicyKind,
    threads: usize,
) -> datawa::stream::EngineOutcome {
    let config = AssignConfig {
        threads,
        ..AssignConfig::default()
    };
    let mut runner = AdaptiveRunner::new(config, policy);
    if policy == PolicyKind::DataWa {
        // Identical (seeded) TVF on both sides keeps the comparison exact.
        runner = runner.with_tvf(TaskValueFunction::new(8, 7));
    }
    run_workload(&runner, workload, &[], EngineConfig::batched(8))
}

/// 1-thread and 4-thread runs must agree task for task, worker for worker,
/// for every policy family on every scenario generator.
#[test]
fn one_thread_equals_four_threads_for_all_policies_and_scenarios() {
    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        for policy in [
            PolicyKind::Greedy,
            PolicyKind::Fta,
            PolicyKind::Dta,
            PolicyKind::DataWa,
        ] {
            let one = outcome_with_threads(&workload, policy, 1);
            let four = outcome_with_threads(&workload, policy, 4);
            assert_eq!(
                one.run.assigned_tasks,
                four.run.assigned_tasks,
                "{} on {} diverged between 1 and 4 threads",
                policy.name(),
                scenario.name()
            );
            assert_eq!(
                one.run.per_worker,
                four.run.per_worker,
                "{} on {}: per-worker counts diverged",
                policy.name(),
                scenario.name()
            );
            assert_eq!(one.run.planning_calls, four.run.planning_calls);
            assert!(four.stats.peak_pool_occupancy <= 4);
            assert!(one.stats.peak_pool_occupancy <= 1);
        }
    }
}

/// The partitioned planner (partition-local available sets, pooled merge)
/// reproduces the pre-refactor whole-tree serial exact search bit for bit on
/// planning snapshots of a real synthetic trace.
#[test]
fn partitioned_exact_search_equals_the_whole_tree_serial_search() {
    use datawa::assign::{
        build_worker_dependency_graph, generate_sequences, reachable_tasks, DfSearch, Planner,
        SequenceSet,
    };
    use datawa::graph::ClusterTree;
    use std::collections::HashMap;

    let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.03));
    let config = AssignConfig::default();
    let mut checked = 0;
    for i in 1..8 {
        let now = Timestamp(trace.spec.horizon * i as f64 / 8.0);
        let worker_ids: Vec<WorkerId> = trace.workers.available_at(now);
        let task_ids: Vec<TaskId> = trace.tasks.open_at(now);
        if worker_ids.is_empty() || task_ids.is_empty() {
            continue;
        }
        // The pre-refactor reference: one shared available set swept root by
        // root over the whole tree.
        let reachable = reachable_tasks(
            &worker_ids,
            &task_ids,
            &trace.workers,
            &trace.tasks,
            &config,
            now,
        );
        let mut sequences: HashMap<WorkerId, SequenceSet> = HashMap::new();
        for &w in &worker_ids {
            sequences.insert(
                w,
                generate_sequences(
                    trace.workers.get(w),
                    reachable.of(w),
                    &trace.tasks,
                    &config,
                    now,
                ),
            );
        }
        let search = DfSearch::new(
            &trace.workers,
            &trace.tasks,
            &config,
            now,
            &sequences,
            &reachable,
        );
        let (graph, mapping) = build_worker_dependency_graph(&worker_ids, &reachable);
        let tree = ClusterTree::build(&graph);
        let mut available: HashSet<TaskId> = task_ids.iter().copied().collect();
        let reference = search.exact(&tree, &mapping, &mut available, None);

        // The partitioned path, at 1 and 4 threads.
        for threads in [1usize, 4] {
            let mut planner = Planner::new(AssignConfig { threads, ..config }, SearchMode::Exact);
            let (assignment, report) =
                planner.plan(&worker_ids, &task_ids, &trace.workers, &trace.tasks, now);
            assert_eq!(
                assignment, reference,
                "partitioned plan (threads={threads}) diverged from the serial search at t={now}"
            );
            assert!(report.partitions >= 1);
        }
        checked += 1;
    }
    assert!(
        checked >= 3,
        "too few non-trivial planning instants checked"
    );
}
