//! # datawa-graph
//!
//! Graph substrate for the Worker Dependency Separation phase of DATA-WA
//! (§IV-A): undirected graphs over dense `usize` node ids, chordal completion
//! via Maximum Cardinality Search, maximal-clique enumeration on chordal
//! graphs, connected components, and the Recursive Tree Construction (RTC)
//! algorithm that arranges worker clusters into a tree whose sibling nodes are
//! independent.
//!
//! The crate is deliberately domain-agnostic: nodes are plain indices. The
//! `datawa-assign` crate maps workers onto node indices and interprets the
//! resulting clusters.
//!
//! ```
//! use datawa_graph::UnGraph;
//!
//! let mut g = UnGraph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(2, 3);
//! assert_eq!(g.connected_components().len(), 2);
//! ```

pub mod chordal;
pub mod rtc;
pub mod undirected;

pub use chordal::{maximal_cliques_chordal, mcs_fill_in, ChordalDecomposition};
pub use rtc::{ClusterTree, TreeNode};
pub use undirected::UnGraph;
