//! A loopback client for the wire protocol: handshake, event sending, and
//! a background collector thread that drains server frames so decision
//! traffic can never back up the socket while the client is still sending.

use crate::wire::{
    read_frame, write_frame, ErrorCode, Frame, RetryReason, WireError, PROTOCOL_VERSION,
};
use datawa_core::Timestamp;
use datawa_stream::{Decision, Event};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

/// Everything the server streamed back over one connection's lifetime.
#[derive(Debug, Default)]
pub struct ClientOutcome {
    /// Decisions, in the order the server emitted them.
    pub decisions: Vec<Decision>,
    /// Admission refusals: `(suggested backoff seconds, reason)` per
    /// refused event.
    pub retry_after: Vec<(f64, RetryReason)>,
    /// Fatal protocol errors the server answered with.
    pub errors: Vec<(ErrorCode, String)>,
    /// The final session totals (present after an orderly `Close`).
    pub closed: Option<ClosedSummary>,
}

/// The totals carried by a [`Frame::Closed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedSummary {
    /// Tasks assigned over the whole session.
    pub assigned: u64,
    /// Decisions streamed back.
    pub decisions: u64,
    /// Events the engine processed.
    pub events: u64,
    /// Planning invocations.
    pub planning_calls: u64,
}

/// Why a connection attempt or send failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's first answer was unreadable.
    Wire(WireError),
    /// The server refused the handshake with a typed error.
    Refused {
        /// The refusal code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The connection cap was hit; retry after the suggested backoff.
    Busy {
        /// Suggested backoff in seconds.
        retry_after_secs: f64,
    },
    /// The server answered the handshake with something unexpected.
    UnexpectedFrame,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Refused { code, message } => {
                write!(f, "refused ({code:?}): {message}")
            }
            ClientError::Busy { retry_after_secs } => {
                write!(
                    f,
                    "server at connection cap; retry after {retry_after_secs}s"
                )
            }
            ClientError::UnexpectedFrame => write!(f, "unexpected handshake answer"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected tenant client. Send events with the typed helpers; server
/// frames are collected on a background thread and returned by
/// [`NetClient::close`].
#[derive(Debug)]
pub struct NetClient {
    writer: TcpStream,
    collector: Option<JoinHandle<ClientOutcome>>,
}

impl NetClient {
    /// Connects, performs the `Hello` handshake as `tenant`, and starts the
    /// frame collector.
    pub fn connect(addr: SocketAddr, tenant: &str, token: &str) -> Result<NetClient, ClientError> {
        let mut writer = TcpStream::connect(addr)?;
        // A server refusing at the connection cap may answer and FIN before
        // this Hello ever lands, failing the write with a broken pipe — the
        // refusal frame is still in the receive buffer, so read it before
        // deciding how the handshake failed.
        let hello_sent = write_frame(
            &mut writer,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                tenant: tenant.to_string(),
                token: token.to_string(),
            },
        );
        let mut reader = BufReader::new(writer.try_clone()?);
        match read_frame(&mut reader) {
            Ok(Frame::HelloAck { .. }) => hello_sent?,
            Ok(Frame::RetryAfter {
                seconds,
                reason: RetryReason::ConnectionCap,
            }) => {
                return Err(ClientError::Busy {
                    retry_after_secs: seconds,
                })
            }
            Ok(Frame::Error { code, message }) => {
                return Err(ClientError::Refused { code, message })
            }
            Ok(_) => return Err(ClientError::UnexpectedFrame),
            // Nothing readable either: report the write failure when there
            // was one (the root cause), else the read error.
            Err(e) => {
                hello_sent?;
                return Err(ClientError::Wire(e));
            }
        }
        let collector = std::thread::spawn(move || collect(reader));
        Ok(NetClient {
            writer,
            collector: Some(collector),
        })
    }

    /// Sends one engine event at `time`.
    pub fn send_event(&mut self, time: Timestamp, event: &Event) -> std::io::Result<()> {
        write_frame(&mut self.writer, &Frame::from_event(time, event))
    }

    /// Asks the server to advance the tenant session to `time`.
    pub fn advance_to(&mut self, time: Timestamp) -> std::io::Result<()> {
        write_frame(&mut self.writer, &Frame::AdvanceTo { time })
    }

    /// Sends a raw frame (tests use this to probe protocol violations).
    pub fn send_frame(&mut self, frame: &Frame) -> std::io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    /// Sends `Close`, waits for the server to drain the session, and
    /// returns everything it streamed back.
    pub fn close(mut self) -> ClientOutcome {
        // The server may already have closed the connection (protocol error
        // paths); the collector still holds whatever arrived before that.
        let _ = write_frame(&mut self.writer, &Frame::Close);
        self.join_collector()
    }

    /// Drops the write half without an orderly `Close` (tests use this for
    /// mid-stream disconnects) and returns what was collected.
    pub fn abandon(mut self) -> ClientOutcome {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
        self.join_collector()
    }

    fn join_collector(&mut self) -> ClientOutcome {
        self.collector
            .take()
            .map(|c| c.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

/// Drains server frames until the stream ends, accumulating the outcome.
fn collect(mut reader: BufReader<TcpStream>) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::RetryAfter { seconds, reason }) => {
                outcome.retry_after.push((seconds, reason));
            }
            Ok(Frame::Error { code, message }) => {
                outcome.errors.push((code, message));
            }
            Ok(Frame::Closed {
                assigned,
                decisions,
                events,
                planning_calls,
            }) => {
                outcome.closed = Some(ClosedSummary {
                    assigned,
                    decisions,
                    events,
                    planning_calls,
                });
                return outcome;
            }
            Ok(frame) => {
                if let Some(decision) = frame.into_decision() {
                    outcome.decisions.push(decision);
                }
            }
            Err(_) => return outcome, // disconnect: report what we have
        }
    }
}
