//! CLI-level checks of the `bench_compare` regression gate: intersection-only
//! comparison, named skips for runs present in just one report, vacuous pass
//! on fully disjoint reports, and the latency gate still firing on matched
//! runs. Reports are synthesized as temp files and fed through `--files`, so
//! the tests never depend on the committed `BENCH_<n>.json` history.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Minimal soak-report JSON carrying exactly the fields `load_runs` demands:
/// `scenario`, numeric `threads`, `replan.p50_ms`, `assigned_tasks`,
/// `planning_calls`.
fn report(runs: &[(&str, u64, f64)]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|(scenario, threads, p50)| {
            format!(
                "{{\"scenario\":\"{scenario}\",\"threads\":{threads},\
                 \"assigned_tasks\":100,\"planning_calls\":10,\
                 \"replan\":{{\"p50_ms\":{p50}}}}}"
            )
        })
        .collect();
    format!("{{\"runs\":[{}]}}", rows.join(","))
}

/// Writes `old`/`new` reports under a per-test temp dir and runs
/// `bench_compare --files OLD NEW` against them.
fn compare(test: &str, old: &str, new: &str) -> Output {
    let dir = std::env::temp_dir().join(format!("bench_compare_cli_{test}"));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let write = |name: &str, body: &str| -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, body).expect("write report");
        path
    };
    let old_path = write("old.json", old);
    let new_path = write("new.json", new);
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg("--files")
        .arg(&old_path)
        .arg(&new_path)
        .output()
        .expect("run bench_compare")
}

#[test]
fn disjoint_reports_pass_vacuously_and_name_every_skip() {
    let old = report(&[("uniform-baseline", 1, 0.02), ("uniform-baseline", 4, 0.05)]);
    let new = report(&[("service-uniform-baseline", 8, 0.10)]);
    let out = compare("disjoint", &old, &new);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(
        stdout.contains("skip old-only uniform-baseline threads=1"),
        "{stdout}"
    );
    assert!(
        stdout.contains("skip old-only uniform-baseline threads=4"),
        "{stdout}"
    );
    assert!(
        stdout.contains("skip new-only service-uniform-baseline threads=8"),
        "{stdout}"
    );
    assert!(stdout.contains("nothing to gate"), "{stdout}");
    assert!(stdout.contains("bench_compare_ok=1"), "{stdout}");
}

#[test]
fn partial_intersection_gates_shared_runs_and_names_the_rest() {
    let old = report(&[("uniform-baseline", 1, 0.02), ("rush-hour-burst", 1, 0.08)]);
    let new = report(&[("uniform-baseline", 1, 0.021), ("hotspot-drift", 1, 0.03)]);
    let out = compare("partial", &old, &new);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(
        stdout.contains("skip old-only rush-hour-burst threads=1"),
        "{stdout}"
    );
    assert!(
        stdout.contains("skip new-only hotspot-drift threads=1"),
        "{stdout}"
    );
    assert!(
        stdout.contains("ok   uniform-baseline threads=1"),
        "the shared run must still be gated: {stdout}"
    );
    assert!(stdout.contains("bench_compare_ok=1"), "{stdout}");
}

#[test]
fn matched_run_regression_still_fails() {
    // 0.5 ms -> 2.0 ms blows through `old * 1.2 + 0.05`; the disjoint-skip
    // path must not have weakened the gate on runs both reports share.
    let old = report(&[("uniform-baseline", 1, 0.5)]);
    let new = report(&[("uniform-baseline", 1, 2.0)]);
    let out = compare("regression", &old, &new);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(
        stdout.contains("FAIL uniform-baseline threads=1"),
        "{stdout}"
    );
    assert!(!stdout.contains("bench_compare_ok=1"), "{stdout}");
}
