//! Maximal valid task sequence generation (§IV-A.1, Eq. 10).
//!
//! For every worker we enumerate valid task sequences over their reachable
//! task set and keep, for each distinct *set* of tasks, the ordering with the
//! earliest completion time (Eq. 10). The result `Q_w` is what both DFSearch
//! variants branch over.

use crate::config::AssignConfig;
use datawa_core::{TaskId, TaskSequence, TaskStore, Timestamp, Worker};
use std::collections::HashMap;

/// The candidate sequences `Q_w` of one worker.
#[derive(Debug, Clone, Default)]
pub struct SequenceSet {
    /// Candidate sequences, sorted by decreasing length then increasing
    /// completion time, so greedy consumers can take the front element.
    pub sequences: Vec<TaskSequence>,
}

impl SequenceSet {
    /// Number of candidate sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the worker has no candidate sequence.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// The longest candidate (first after sorting), if any.
    pub fn best(&self) -> Option<&TaskSequence> {
        self.sequences.first()
    }

    /// Iterates over the candidate sequences.
    pub fn iter(&self) -> impl Iterator<Item = &TaskSequence> {
        self.sequences.iter()
    }
}

/// Reusable allocation scratch for [`generate_sequences_into`].
///
/// Sequence generation runs once per planning worker per planning instant —
/// the deepest allocation hot spot of the replan path. The scratch keeps the
/// per-task-set map, the DFS prefix, the key staging buffer and a free list
/// of retired task-set keys alive across calls, so both the greedy baseline
/// and the partitioned path (which share the planner's scratch) pay the
/// allocations once instead of per worker per instant. Output is byte
/// identical to the plain [`generate_sequences`]: the candidate order is
/// pinned by a total sort, never by map iteration order.
#[derive(Debug, Default)]
pub struct GenScratch {
    /// best completion time per task-set key (sorted ids).
    best: HashMap<Vec<TaskId>, (TaskSequence, Timestamp)>,
    /// DFS prefix.
    current: Vec<TaskId>,
    /// Staging buffer for the sorted task-set key of the current prefix.
    key: Vec<TaskId>,
    /// Retired key vectors, recycled into future map inserts.
    free_keys: Vec<Vec<TaskId>>,
    /// Surviving (sequence, completion) pairs, pre-sort.
    sorted: Vec<(TaskSequence, Timestamp)>,
}

/// Retired-key pool bound — enough to cover `|Q_w|` at the default caps.
const MAX_FREE_KEYS: usize = 256;

/// Enumerates `Q_w` for `worker` over its reachable tasks.
///
/// Depth-first enumeration over orderings with pruning: a prefix that violates
/// any Definition 4 constraint cannot be extended into a valid sequence, so
/// the subtree is skipped. For every distinct task set the minimum-completion
/// ordering is kept (Eq. 10). When `config.include_subsets` is `false`, task
/// sets strictly contained in another surviving task set are dropped
/// ("maximal" sequences only).
pub fn generate_sequences(
    worker: &Worker,
    reachable: &[TaskId],
    tasks: &TaskStore,
    config: &AssignConfig,
    now: Timestamp,
) -> SequenceSet {
    generate_sequences_into(
        &mut GenScratch::default(),
        worker,
        reachable,
        tasks,
        config,
        now,
    )
}

/// [`generate_sequences`] against caller-owned scratch buffers (the hot-path
/// entry point: the planner keeps one [`GenScratch`] alive across instants).
pub fn generate_sequences_into(
    scratch: &mut GenScratch,
    worker: &Worker,
    reachable: &[TaskId],
    tasks: &TaskStore,
    config: &AssignConfig,
    now: Timestamp,
) -> SequenceSet {
    // Recycle the previous call's key vectors instead of dropping them.
    let GenScratch {
        best,
        current,
        key,
        free_keys,
        sorted,
    } = scratch;
    // datawa-lint: allow(unordered-iteration) -- free-key recycling: which Vec allocations are reused never affects their contents
    for (k, _) in best.drain() {
        if free_keys.len() < MAX_FREE_KEYS {
            free_keys.push(k);
        }
    }
    current.clear();
    sorted.clear();
    let max_len = config.max_sequence_len.min(reachable.len());
    dfs(
        worker, reachable, tasks, config, now, current, key, free_keys, max_len, best,
    );
    // datawa-lint: allow(unordered-iteration) -- collection order is washed out by the total-order sort on `sorted` below
    let mut keys: Vec<Vec<TaskId>> = best.keys().cloned().collect();
    if !config.include_subsets {
        keys.retain(|k| {
            !best
                .keys()
                .any(|other| other.len() > k.len() && k.iter().all(|t| other.contains(t)))
        });
    }
    sorted.extend(
        keys.into_iter()
            // datawa-lint: allow(unwrap-in-hot-path) -- every key was just cloned out of `best` and nothing removed since
            .map(|k| best.get(&k).expect("key from map").clone()),
    );
    sorted.sort_by(|a, b| {
        b.0.len()
            .cmp(&a.0.len())
            .then_with(|| datawa_core::time::cmp_timestamps(a.1, b.1))
            // Total order: without the lexicographic tiebreak, sequences tied
            // on (length, completion) would keep the HashMap's per-instance
            // random iteration order, and downstream tie-breaking ("first
            // best wins") would differ between otherwise identical planners —
            // the partitioned pool pins bitwise-equal plans per thread count,
            // which needs deterministic candidate order.
            .then_with(|| a.0.iter().cmp(b.0.iter()))
    });
    SequenceSet {
        sequences: sorted.drain(..).map(|(s, _)| s).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    worker: &Worker,
    reachable: &[TaskId],
    tasks: &TaskStore,
    config: &AssignConfig,
    now: Timestamp,
    current: &mut Vec<TaskId>,
    key: &mut Vec<TaskId>,
    free_keys: &mut Vec<Vec<TaskId>>,
    max_len: usize,
    best: &mut HashMap<Vec<TaskId>, (TaskSequence, Timestamp)>,
) {
    if current.len() >= max_len {
        return;
    }
    for &tid in reachable {
        if current.contains(&tid) {
            continue;
        }
        current.push(tid);
        let sequence = TaskSequence::from_ids(current.iter().copied());
        if sequence.is_valid(worker, tasks, &config.travel, now) {
            let completion = sequence.completion_time(worker, tasks, &config.travel, now);
            // Stage the sorted task-set key in the reusable buffer; a fresh
            // vector (recycled when possible) is materialised only on first
            // insert for this set.
            key.clear();
            key.extend_from_slice(current);
            key.sort_unstable();
            match best.get_mut(key.as_slice()) {
                Some(entry) => {
                    if completion < entry.1 {
                        *entry = (sequence.clone(), completion);
                    }
                }
                None => {
                    let owned = match free_keys.pop() {
                        Some(mut k) => {
                            k.clear();
                            k.extend_from_slice(key);
                            k
                        }
                        None => key.clone(),
                    };
                    best.insert(owned, (sequence.clone(), completion));
                }
            }
            dfs(
                worker, reachable, tasks, config, now, current, key, free_keys, max_len, best,
            );
        }
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, Task, WorkerId};

    fn store(line: &[(f64, f64)]) -> TaskStore {
        let mut s = TaskStore::new();
        for &(x, e) in line {
            s.insert(Task::new(
                TaskId(0),
                Location::new(x, 0.0),
                Timestamp(0.0),
                Timestamp(e),
            ));
        }
        s
    }

    fn worker_at_origin(d: f64, off: f64) -> Worker {
        Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            d,
            Timestamp(0.0),
            Timestamp(off),
        )
    }

    #[test]
    fn keeps_minimum_completion_ordering_per_task_set() {
        // Tasks at x = 1 and x = 2: order (1, 2) completes at t=2, order (2, 1)
        // at t=3. Only the former must survive for the pair set (Eq. 10).
        let tasks = store(&[(1.0, 100.0), (2.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let config = AssignConfig::unit_speed();
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        let pair = qs
            .iter()
            .find(|s| s.len() == 2)
            .expect("the pair sequence must be generated");
        assert_eq!(pair.tasks(), &[TaskId(0), TaskId(1)]);
        // Singletons + the pair (include_subsets default true).
        assert_eq!(qs.len(), 3);
        assert_eq!(qs.best().unwrap().len(), 2);
    }

    #[test]
    fn invalid_prefixes_are_pruned() {
        // Second task expires too early to be reached after the first.
        let tasks = store(&[(1.0, 100.0), (2.0, 1.5)]);
        let worker = worker_at_origin(10.0, 100.0);
        let config = AssignConfig::unit_speed();
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        // (s1) alone is valid (reached at t=2 >= 1.5? no: travel 2.0 > 1.5 so
        // s1 alone is invalid too) — only (s0) and nothing containing s1.
        assert!(qs.iter().all(|s| !s.contains(TaskId(1))));
        assert_eq!(qs.len(), 1);
    }

    #[test]
    fn maximal_only_drops_subsets() {
        let tasks = store(&[(1.0, 100.0), (2.0, 100.0), (3.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let mut config = AssignConfig::unit_speed();
        config.include_subsets = false;
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1), TaskId(2)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        assert_eq!(qs.len(), 1);
        assert_eq!(qs.best().unwrap().len(), 3);
    }

    #[test]
    fn max_sequence_len_caps_candidates() {
        let tasks = store(&[(1.0, 100.0), (2.0, 100.0), (3.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let mut config = AssignConfig::unit_speed();
        config.max_sequence_len = 1;
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1), TaskId(2)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        assert_eq!(qs.len(), 3);
        assert!(qs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn every_generated_sequence_is_valid() {
        let tasks = store(&[(0.5, 5.0), (1.5, 6.0), (2.5, 4.0), (0.8, 9.0)]);
        let worker = worker_at_origin(2.0, 7.0);
        let config = AssignConfig::unit_speed();
        let reachable: Vec<TaskId> = tasks.ids().collect();
        let qs = generate_sequences(&worker, &reachable, &tasks, &config, Timestamp(0.0));
        assert!(!qs.is_empty());
        for seq in qs.iter() {
            assert!(seq.is_valid(&worker, &tasks, &config.travel, Timestamp(0.0)));
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh_generation() {
        let tasks = store(&[(0.5, 5.0), (1.5, 6.0), (2.5, 4.0), (0.8, 9.0)]);
        let worker = worker_at_origin(2.0, 7.0);
        let config = AssignConfig::unit_speed();
        let reachable: Vec<TaskId> = tasks.ids().collect();
        let mut scratch = GenScratch::default();
        for round in 0..3 {
            let pooled = generate_sequences_into(
                &mut scratch,
                &worker,
                &reachable,
                &tasks,
                &config,
                Timestamp(0.0),
            );
            let fresh = generate_sequences(&worker, &reachable, &tasks, &config, Timestamp(0.0));
            assert_eq!(pooled.sequences, fresh.sequences, "round {round}");
        }
    }

    #[test]
    fn worker_with_no_reachable_tasks_has_empty_qw() {
        let tasks = store(&[(1.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let config = AssignConfig::unit_speed();
        let qs = generate_sequences(&worker, &[], &tasks, &config, Timestamp(0.0));
        assert!(qs.is_empty());
        assert!(qs.best().is_none());
    }
}
