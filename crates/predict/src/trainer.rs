//! Shared training and evaluation harness for the demand predictors.

use crate::metrics::average_precision;
use crate::series::{SeriesDataset, SeriesExample};
use datawa_tensor::optim::Adam;
use datawa_tensor::{Matrix, Var};
use std::time::Instant;

/// Hyper-parameters of the shared training loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 20,
            learning_rate: 0.01,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingReport {
    /// Mean binary-cross-entropy of the last epoch.
    pub final_loss: f64,
    /// Wall-clock training time, in seconds.
    pub train_seconds: f64,
    /// Epochs actually run.
    pub epochs: usize,
}

/// Outcome of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationReport {
    /// Average Precision over every (cell, bucket) decision in the test set.
    pub average_precision: f64,
    /// Wall-clock inference time for the whole test set, in seconds.
    pub test_seconds: f64,
    /// Number of test examples evaluated.
    pub examples: usize,
}

/// A task-demand predictor: given the recent history of every grid cell, it
/// outputs the probability that at least one task will be published in each
/// cell during each ΔT bucket of the next window.
pub trait DemandPredictor {
    /// Human-readable name used in experiment output ("LSTM", "Graph-Wavenet",
    /// "DDGNN").
    fn name(&self) -> &'static str;

    /// All trainable parameters.
    fn parameters(&self) -> Vec<Var>;

    /// Forward pass producing an `(M, k)` probability node.
    fn forward(&self, example: &SeriesExample) -> Var;

    /// Forward pass returning raw probabilities.
    fn predict(&self, example: &SeriesExample) -> Matrix {
        self.forward(example).value()
    }

    /// Trains the model on `dataset` with binary cross-entropy and Adam.
    fn train(&mut self, dataset: &SeriesDataset, config: &TrainingConfig) -> TrainingReport {
        // datawa-lint: allow(wall-clock-in-hot-path) -- offline training: timing feeds TrainingReport::train_seconds, never model state
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut optimizer = Adam::new(config.learning_rate, self.parameters());
        let mut final_loss = 0.0;
        for _ in 0..config.epochs {
            let mut epoch_loss = 0.0;
            for example in &dataset.examples {
                optimizer.zero_grad();
                let pred = self.forward(example);
                let loss = pred.bce_loss(&example.target);
                epoch_loss += loss.value().get(0, 0);
                loss.backward();
                optimizer.step();
            }
            final_loss = if dataset.examples.is_empty() {
                0.0
            } else {
                epoch_loss / dataset.examples.len() as f64
            };
        }
        TrainingReport {
            final_loss,
            train_seconds: start.elapsed().as_secs_f64(),
            epochs: config.epochs,
        }
    }

    /// Evaluates Average Precision over a held-out dataset, also timing the
    /// inference passes (the paper's "testing time").
    fn evaluate(&self, dataset: &SeriesDataset) -> EvaluationReport {
        // datawa-lint: allow(wall-clock-in-hot-path) -- offline evaluation: reproduces the paper's "testing time" metric only
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for example in &dataset.examples {
            let pred = self.predict(example);
            scores.extend_from_slice(pred.data());
            labels.extend_from_slice(example.target.data());
        }
        let test_seconds = start.elapsed().as_secs_f64();
        EvaluationReport {
            average_precision: average_precision(&scores, &labels),
            test_seconds,
            examples: dataset.examples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesSpec;
    use datawa_core::Timestamp;

    /// A trivial predictor that always outputs 0.5 — used to exercise the
    /// default `train`/`evaluate` plumbing without a real model.
    struct ConstantPredictor {
        bias: Var,
        cells: usize,
        k: usize,
    }

    impl DemandPredictor for ConstantPredictor {
        fn name(&self) -> &'static str {
            "Constant"
        }
        fn parameters(&self) -> Vec<Var> {
            vec![self.bias.clone()]
        }
        fn forward(&self, _example: &SeriesExample) -> Var {
            // broadcast the scalar bias into an (M, k) matrix through autograd
            let ones = Var::constant(Matrix::filled(self.cells, self.k, 1.0));
            ones.matmul(&self.bias).sigmoid()
        }
    }

    fn tiny_dataset() -> SeriesDataset {
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, 2, 2);
        let mut examples = Vec::new();
        for i in 0..6 {
            let target = if i % 2 == 0 {
                Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]])
            } else {
                Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]])
            };
            examples.push(SeriesExample {
                history: vec![Matrix::zeros(2, 2); 2],
                snapshot: Matrix::zeros(2, 2),
                target,
                target_window: i + 2,
            });
        }
        SeriesDataset {
            spec,
            cells: 2,
            examples,
        }
    }

    #[test]
    fn default_training_loop_reduces_loss() {
        let ds = tiny_dataset();
        // All-ones targets only: a biased constant model can fit them.
        let ds_pos = SeriesDataset {
            spec: ds.spec,
            cells: ds.cells,
            examples: ds
                .examples
                .iter()
                .filter(|e| e.target.sum() > 0.0)
                .cloned()
                .collect(),
        };
        let mut model = ConstantPredictor {
            bias: Var::parameter(Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]])),
            cells: 2,
            k: 2,
        };
        let before = model
            .forward(&ds_pos.examples[0])
            .bce_loss(&ds_pos.examples[0].target)
            .value()
            .get(0, 0);
        let report = model.train(
            &ds_pos,
            &TrainingConfig {
                epochs: 50,
                learning_rate: 0.1,
            },
        );
        assert!(
            report.final_loss < before,
            "training did not reduce the loss"
        );
        assert!(report.train_seconds >= 0.0);
        assert_eq!(report.epochs, 50);
    }

    #[test]
    fn evaluation_reports_ap_and_counts() {
        let ds = tiny_dataset();
        let model = ConstantPredictor {
            bias: Var::parameter(Matrix::zeros(2, 2)),
            cells: 2,
            k: 2,
        };
        let eval = model.evaluate(&ds);
        assert_eq!(eval.examples, 6);
        assert!(eval.average_precision > 0.0 && eval.average_precision <= 1.0);
        assert_eq!(model.name(), "Constant");
    }
}
