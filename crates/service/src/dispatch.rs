//! The dispatch service: a long-running pump from an ingest source through an
//! open session into a decision sink.
//!
//! [`DispatchService`] is the service front-end the ROADMAP's "async service
//! front-end" item asks for, built synchronously and deterministically: a
//! bounded ingest queue between the source and the session provides
//! backpressure (planning can lag bursts only so far before admission
//! pauses to let the session drain), pacing comes from the source, and the
//! caller can pump one step at a time ([`DispatchService::pump`]) with
//! mid-stream [`DispatchService::stats`] / [`DispatchService::snapshot`]
//! inspection, or run to completion ([`DispatchService::run`]).

use crate::source::{IngestSource, SourcePoll};
use datawa_assign::{AdaptiveRunner, ForecastProvider, ForecastStats};
use datawa_core::Timestamp;
use datawa_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use datawa_stream::{
    DecisionSink, EngineConfig, EngineOutcome, EventJournal, JournalError, JournalRecord, Session,
    SessionSnapshot,
};

/// Service knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The session's engine behaviour (replan batching, release-on-offline).
    pub engine: EngineConfig,
    /// Backpressure bound on the admission backlog: once this many arrivals
    /// have been admitted since the session last advanced, admission pauses
    /// and the service advances the session to the newest admitted arrival
    /// before ingesting more. (The session queue itself also holds the
    /// not-yet-due lifecycle events of everything currently alive — those
    /// are future work, not backlog, and do not count against the bound.)
    pub max_pending: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            engine: EngineConfig::default(),
            max_pending: 256,
        }
    }
}

/// Counters describing a service run so far.
///
/// `backpressure_flushes` and `backlog_high_water` are sourced from the
/// service's observability registry (see [`DispatchService::metrics`]) so
/// they report cumulative truth — the stall count and the admission-backlog
/// high-water mark over the whole run — not just the state at the instant
/// [`DispatchService::stats`] was called.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Arrivals admitted into the session.
    pub ingested: usize,
    /// Quiet-period waits observed from the source.
    pub waits: usize,
    /// Times the backpressure bound paused admission and forced a drain
    /// (cumulative, from the `service.backpressure_stalls` counter).
    pub backpressure_flushes: usize,
    /// High-water mark of the admission backlog — arrivals admitted since
    /// the session last advanced — from the `service.backlog` gauge.
    pub backlog_high_water: usize,
    /// High-water mark of the session's pending-event queue at admission
    /// time.
    pub peak_pending: usize,
    /// Whether the source has been fully consumed.
    pub source_exhausted: bool,
    /// Activity counters of the session's forecast provider (observations,
    /// forecast queries, model refreshes) — live, so a dashboard polling
    /// [`DispatchService::stats`] sees re-forecasts as they happen.
    pub forecast: ForecastStats,
    /// Planning partitions whose plan was reused from the incremental plan
    /// cache instead of searched (cumulative, from the
    /// `assign.partitions_reused` counter).
    pub partitions_reused: usize,
    /// Planning partitions actually searched (cumulative, from the
    /// `assign.partitions_recomputed` counter).
    pub partitions_recomputed: usize,
}

/// Outcome of one [`DispatchService::pump`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpStatus {
    /// An arrival was admitted (and, under backpressure, the session may
    /// have been advanced first).
    Admitted,
    /// The source reported a quiet period; the session advanced through it.
    Waited,
    /// The source is exhausted; nothing was admitted. The next step is
    /// [`DispatchService::finish`].
    SourceDrained,
}

/// A live dispatch loop: source → session → sink.
///
/// The service owns the session and the sink; the source paces it, the
/// backpressure bound keeps the unprocessed admission backlog from growing
/// without limit when planning is slower than admission.
pub struct DispatchService<'a, Src, Sink> {
    source: Src,
    sink: Sink,
    session: Session<'a>,
    config: ServiceConfig,
    stats: ServiceStats,
    /// Newest admitted arrival time: the watermark a backpressure flush
    /// advances to.
    admitted_up_to: Timestamp,
    /// Arrivals admitted since the session last advanced (the backlog the
    /// backpressure bound applies to).
    unadvanced: usize,
    obs: MetricsRegistry,
    metrics: ServiceMetrics,
}

/// Service-layer handles into the observability registry.
///
/// Always registered against an *attached* registry: the runner's when
/// `DATAWA_OBS=on` (one combined snapshot across every layer), otherwise a
/// private one owned by this service — so [`DispatchService::stats`] can
/// source its high-water and stall counters from the registry
/// unconditionally.
struct ServiceMetrics {
    ingested: Counter,
    waits: Counter,
    backpressure_stalls: Counter,
    backlog: Gauge,
    pump_seconds: Histogram,
    /// Assign-layer plan-reuse counters (recorded by the session's runner
    /// state into this same registry); surfaced through
    /// [`DispatchService::stats`].
    partitions_reused: Counter,
    partitions_recomputed: Counter,
}

impl ServiceMetrics {
    fn register(registry: &MetricsRegistry) -> ServiceMetrics {
        ServiceMetrics {
            ingested: registry.counter("service.ingested"),
            waits: registry.counter("service.waits"),
            backpressure_stalls: registry.counter("service.backpressure_stalls"),
            backlog: registry.gauge("service.backlog"),
            pump_seconds: registry.histogram("service.pump_seconds"),
            partitions_reused: registry.counter("assign.partitions_reused"),
            partitions_recomputed: registry.counter("assign.partitions_recomputed"),
        }
    }
}

impl<'a, Src: IngestSource, Sink: DecisionSink> DispatchService<'a, Src, Sink> {
    /// Opens a service over `runner`: a fresh session, an unread source.
    ///
    /// `forecast` is the session's demand-prediction source (see
    /// [`Session::open`]): wrap a precomputed slice in
    /// [`StaticForecast`](datawa_assign::StaticForecast) for the fixed
    /// oracle, or pass an `OnlineForecaster` (from `datawa-predict`) to
    /// re-forecast live as arrivals flow.
    #[must_use]
    pub fn open(
        runner: &'a AdaptiveRunner,
        forecast: &'a mut dyn ForecastProvider,
        source: Src,
        sink: Sink,
        config: ServiceConfig,
    ) -> DispatchService<'a, Src, Sink> {
        // Record into the runner's registry when it is attached (one
        // combined snapshot across assign/stream/service); otherwise carry a
        // private attached registry so registry-sourced stats always work.
        let obs = if runner.metrics().is_attached() {
            runner.metrics().clone()
        } else {
            MetricsRegistry::new()
        };
        DispatchService {
            source,
            sink,
            session: Session::open_with_metrics(runner, forecast, config.engine, &obs),
            config,
            stats: ServiceStats::default(),
            admitted_up_to: Timestamp(f64::NEG_INFINITY),
            unadvanced: 0,
            metrics: ServiceMetrics::register(&obs),
            obs,
        }
    }

    /// [`DispatchService::open`], but resuming an interrupted run from its
    /// journal: the fresh session replays every journaled ingest and advance
    /// in order (reproduced decisions flow into `sink` — wrap it in
    /// [`SkipSink`](datawa_stream::SkipSink) to suppress what a consumer
    /// already received), and the service's admission bookkeeping
    /// (`admitted_up_to`, the unadvanced backlog, the ingested count) is
    /// restored from the record stream so post-recovery backpressure flushes
    /// fire at exactly the instants the uninterrupted run would have chosen.
    /// The journal is re-attached afterwards, so the recovered service keeps
    /// recording and can itself be recovered.
    ///
    /// # Errors
    ///
    /// Propagates [`JournalError`] from reading or replaying the journal.
    pub fn open_recovered(
        runner: &'a AdaptiveRunner,
        forecast: &'a mut dyn ForecastProvider,
        source: Src,
        sink: Sink,
        config: ServiceConfig,
        journal: EventJournal,
    ) -> Result<DispatchService<'a, Src, Sink>, JournalError> {
        let records = journal.recovered_records()?;
        let mut service = DispatchService::open(runner, forecast, source, sink, config);
        for record in records {
            match record {
                JournalRecord::Event(time, event) => {
                    service
                        .session
                        .ingest(time, event)
                        .map_err(JournalError::Replay)?;
                    service.stats.ingested += 1;
                    service.metrics.ingested.inc();
                    service.unadvanced += 1;
                    service.metrics.backlog.set(service.unadvanced as i64);
                    service.stats.peak_pending =
                        service.stats.peak_pending.max(service.session.pending());
                    if time.0 > service.admitted_up_to.0 {
                        service.admitted_up_to = time;
                    }
                }
                JournalRecord::Advance(time) => {
                    service.session.advance_to(time, &mut service.sink);
                    service.unadvanced = 0;
                    service.metrics.backlog.set(0);
                }
            }
        }
        service.session.attach_journal(journal);
        Ok(service)
    }

    /// Attaches `journal` to the service's session: every subsequently
    /// admitted event and advance target is recorded for crash recovery
    /// (see [`DispatchService::open_recovered`]).
    pub fn attach_journal(&mut self, journal: EventJournal) {
        self.session.attach_journal(journal);
    }

    /// Service counters so far, including the live forecast-provider
    /// counters. The stall count and the backlog high-water come from the
    /// observability registry, so they are cumulative over the whole run.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            forecast: self.session.forecast_stats(),
            backpressure_flushes: self.metrics.backpressure_stalls.value() as usize,
            backlog_high_water: self.metrics.backlog.high_water().max(0) as usize,
            partitions_reused: self.metrics.partitions_reused.value() as usize,
            partitions_recomputed: self.metrics.partitions_recomputed.value() as usize,
            ..self.stats
        }
    }

    /// The observability registry the service (and its session) records
    /// into: the runner's when that is attached, otherwise a private
    /// always-attached one.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// A point-in-time snapshot of every metric in the service's registry.
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Mid-stream view of the session's live state.
    pub fn snapshot(&self) -> SessionSnapshot {
        self.session.snapshot()
    }

    /// The decision sink (for example to read a collecting sink's tally
    /// mid-stream).
    pub fn sink(&self) -> &Sink {
        &self.sink
    }

    /// One pump step: poll the source once and react.
    pub fn pump(&mut self) -> PumpStatus {
        let _pump_span = self.metrics.pump_seconds.span();
        match self.source.poll() {
            SourcePoll::Ready(time, event) => {
                // Backpressure: drain decisions for the admitted backlog
                // before taking more traffic. Never advance when the backlog
                // head shares the incoming arrival's timestamp — advancing
                // *to* an instant before all of its arrivals are ingested
                // would fire a replan tick due there ahead of them.
                if self.unadvanced >= self.config.max_pending && self.admitted_up_to.0 < time.0 {
                    self.stats.backpressure_flushes += 1;
                    self.metrics.backpressure_stalls.inc();
                    self.session.advance_to(self.admitted_up_to, &mut self.sink);
                    self.unadvanced = 0;
                    self.metrics.backlog.set(0);
                }
                self.session
                    .ingest(time, event)
                    .expect("sources produce finite, non-decreasing times");
                self.stats.ingested += 1;
                self.metrics.ingested.inc();
                self.unadvanced += 1;
                self.metrics.backlog.set(self.unadvanced as i64);
                self.stats.peak_pending = self.stats.peak_pending.max(self.session.pending());
                if time.0 > self.admitted_up_to.0 {
                    self.admitted_up_to = time;
                }
                PumpStatus::Admitted
            }
            SourcePoll::Wait(until) => {
                self.stats.waits += 1;
                self.metrics.waits.inc();
                self.session.advance_to(until, &mut self.sink);
                self.unadvanced = 0;
                self.metrics.backlog.set(0);
                PumpStatus::Waited
            }
            SourcePoll::Exhausted => {
                self.stats.source_exhausted = true;
                PumpStatus::SourceDrained
            }
        }
    }

    /// Pumps until the source is exhausted, then closes the session. Returns
    /// the engine outcome, the service counters and the sink.
    pub fn run(mut self) -> (EngineOutcome, ServiceStats, Sink) {
        while self.pump() != PumpStatus::SourceDrained {}
        self.finish()
    }

    /// Closes the session (draining every remaining event into the sink) and
    /// returns the outcome, the counters and the sink.
    pub fn finish(mut self) -> (EngineOutcome, ServiceStats, Sink) {
        self.stats.source_exhausted = self.source.remaining() == 0;
        let outcome = self.session.close(&mut self.sink);
        // close() drains remaining events, which may observe more arrivals;
        // the outcome carries the provider's final counters.
        self.stats.forecast = outcome.run.forecast;
        self.stats.backpressure_flushes = self.metrics.backpressure_stalls.value() as usize;
        self.stats.backlog_high_water = self.metrics.backlog.high_water().max(0) as usize;
        (outcome, self.stats, self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{LiveSource, WorkloadSource};
    use datawa_assign::{AssignConfig, PolicyKind, StaticForecast};
    use datawa_stream::{
        run_workload, CollectingSink, ScenarioGenerator, ScenarioSpec, UniformBaseline,
    };

    fn runner(policy: PolicyKind) -> AdaptiveRunner {
        AdaptiveRunner::new(AssignConfig::default(), policy)
    }

    #[test]
    fn replay_service_matches_the_batch_driver_exactly() {
        let workload =
            UniformBaseline::new(ScenarioSpec::small().with_tasks(200).with_workers(15)).generate();
        for policy in [PolicyKind::Greedy, PolicyKind::Fta, PolicyKind::Dta] {
            let r = runner(policy);
            let batch = run_workload(&r, &workload, &[], EngineConfig::default());
            let mut forecast = StaticForecast::default();
            let service = DispatchService::open(
                &r,
                &mut forecast,
                WorkloadSource::new(&workload),
                CollectingSink::new(),
                ServiceConfig::default(),
            );
            let (outcome, stats, sink) = service.run();
            assert_eq!(outcome.run.assigned_tasks, batch.run.assigned_tasks);
            assert_eq!(outcome.run.per_worker, batch.run.per_worker);
            assert_eq!(outcome.run.planning_calls, batch.run.planning_calls);
            assert_eq!(stats.ingested, workload.arrival_count());
            assert_eq!(sink.dispatches(), batch.run.assigned_tasks);
        }
    }

    #[test]
    fn recovered_service_matches_the_uninterrupted_run_bitwise() {
        use datawa_stream::{EventJournal, SkipSink};
        let workload =
            UniformBaseline::new(ScenarioSpec::small().with_tasks(250).with_workers(18)).generate();
        let r = runner(PolicyKind::Dta);
        // Tight backpressure so the replay must also restore the admission
        // bookkeeping: a drifted `unadvanced` count would flush at different
        // instants and change decision order.
        let tight = ServiceConfig {
            max_pending: 8,
            ..ServiceConfig::default()
        };

        // Uninterrupted reference run.
        let mut ref_forecast = StaticForecast::default();
        let reference = DispatchService::open(
            &r,
            &mut ref_forecast,
            WorkloadSource::new(&workload),
            CollectingSink::new(),
            tight,
        );
        let (ref_outcome, ref_stats, ref_sink) = reference.run();

        // Journaled run, "crashed" mid-stream.
        let journal = EventJournal::in_memory();
        let mut live_forecast = StaticForecast::default();
        let mut live = DispatchService::open(
            &r,
            &mut live_forecast,
            WorkloadSource::new(&workload),
            CollectingSink::new(),
            tight,
        );
        live.attach_journal(journal.clone());
        for _ in 0..137 {
            assert_ne!(live.pump(), PumpStatus::SourceDrained);
        }
        let seen = live.sink().decisions().len() as u64;
        drop(live); // the crash

        // Recover: replay the journal, resume the source past what was
        // already admitted, and suppress the decisions the consumer saw.
        let mut rest = WorkloadSource::new(&workload);
        for _ in 0..journal.event_count() {
            let _ = rest.poll();
        }
        let mut rec_forecast = StaticForecast::default();
        let recovered = DispatchService::open_recovered(
            &r,
            &mut rec_forecast,
            rest,
            SkipSink::new(CollectingSink::new(), seen),
            tight,
            journal,
        )
        .expect("journal replays cleanly");
        let (outcome, stats, sink) = recovered.run();
        assert_eq!(sink.skipped(), seen, "replay reproduced the seen prefix");
        let post = sink.into_inner().into_decisions();
        assert_eq!(
            &ref_sink.decisions()[seen as usize..],
            &post[..],
            "post-crash decisions continue the reference stream bitwise"
        );
        assert_eq!(outcome.run.assigned_tasks, ref_outcome.run.assigned_tasks);
        assert_eq!(outcome.run.planning_calls, ref_outcome.run.planning_calls);
        assert_eq!(outcome.run.per_worker, ref_outcome.run.per_worker);
        assert_eq!(stats.ingested, ref_stats.ingested);
    }

    #[test]
    fn backpressure_bounds_the_session_queue() {
        let workload =
            UniformBaseline::new(ScenarioSpec::small().with_tasks(300).with_workers(20)).generate();
        let r = runner(PolicyKind::Greedy);
        let tight = ServiceConfig {
            max_pending: 8,
            ..ServiceConfig::default()
        };
        let mut forecast = StaticForecast::default();
        let service = DispatchService::open(
            &r,
            &mut forecast,
            WorkloadSource::new(&workload),
            CollectingSink::new(),
            tight,
        );
        let (outcome, stats, _) = service.run();
        assert!(stats.backpressure_flushes > 0, "bound never engaged");
        // Pending can exceed the bound only by the lifecycle events of the
        // burst admitted since the last flush, never unboundedly.
        assert!(stats.peak_pending < workload.arrival_count());
        assert!(outcome.run.assigned_tasks > 0);
        // Backpressure changes *when* decisions surface, not what is
        // decided: totals still match the unbounded batch run.
        let batch = run_workload(&r, &workload, &[], EngineConfig::default());
        assert_eq!(outcome.run.assigned_tasks, batch.run.assigned_tasks);
    }

    #[test]
    fn paced_service_matches_batch_when_an_arrival_lands_on_a_tick_instant() {
        // Regression: under time-driven planning, a task published at
        // exactly a tick instant (t=20 with ticks every 10 s) must still be
        // seen by that tick. The paced source must therefore never make the
        // service advance *to* t=20 before the arrival is ingested — the
        // batch driver fires same-instant ticks last and assigns the task;
        // a Wait clamped to the arrival's timestamp used to lose it.
        use datawa_core::{Location, Task, TaskId, Timestamp, Worker, WorkerId};
        let workload = datawa_stream::Workload {
            workers: vec![Worker::new(
                WorkerId(0),
                Location::new(0.0, 0.0),
                5.0,
                Timestamp(0.0),
                Timestamp(100.0),
            )],
            tasks: vec![Task::new(
                TaskId(0),
                Location::new(1.0, 0.0),
                Timestamp(20.0),
                Timestamp(25.0),
            )],
        };
        let r = AdaptiveRunner::new(AssignConfig::unit_speed(), PolicyKind::Dta);
        let config = EngineConfig::ticked(10.0);
        let batch = run_workload(&r, &workload, &[], config);
        assert_eq!(batch.run.assigned_tasks, 1, "the t=20 tick plans the task");
        // A 4 s pacing step lands the clock exactly on t=20.
        let mut forecast = StaticForecast::default();
        let service = DispatchService::open(
            &r,
            &mut forecast,
            LiveSource::new(&workload, 4.0),
            CollectingSink::new(),
            ServiceConfig {
                engine: config,
                ..ServiceConfig::default()
            },
        );
        let (outcome, _, sink) = service.run();
        assert_eq!(outcome.run.assigned_tasks, batch.run.assigned_tasks);
        assert_eq!(sink.dispatches(), 1);
    }

    #[test]
    fn paced_live_source_serves_and_reports_waits() {
        let workload =
            UniformBaseline::new(ScenarioSpec::small().with_tasks(150).with_workers(12)).generate();
        let r = runner(PolicyKind::Dta);
        let mut forecast = StaticForecast::default();
        let service = DispatchService::open(
            &r,
            &mut forecast,
            LiveSource::new(&workload, 30.0),
            CollectingSink::new(),
            ServiceConfig::default(),
        );
        let (outcome, stats, sink) = service.run();
        assert!(stats.waits > 0, "pacing produced no quiet periods");
        assert!(stats.source_exhausted);
        assert!(outcome.run.assigned_tasks > 0);
        assert_eq!(sink.dispatches(), outcome.run.assigned_tasks);
        // Decisions arrive in non-decreasing time order.
        for pair in sink.decisions().windows(2) {
            assert!(pair[0].at().0 <= pair[1].at().0);
        }
    }

    #[test]
    fn stats_source_stalls_and_backlog_high_water_from_the_registry() {
        let workload =
            UniformBaseline::new(ScenarioSpec::small().with_tasks(300).with_workers(20)).generate();
        let r = runner(PolicyKind::Greedy);
        let tight = ServiceConfig {
            max_pending: 8,
            ..ServiceConfig::default()
        };
        let mut forecast = StaticForecast::default();
        let mut service = DispatchService::open(
            &r,
            &mut forecast,
            WorkloadSource::new(&workload),
            CollectingSink::new(),
            tight,
        );
        // Even with DATAWA_OBS unset the service carries its own attached
        // registry, so the registry-sourced stats always work.
        assert!(service.metrics().is_attached());
        let mut pumps = 0;
        while service.pump() != PumpStatus::SourceDrained {
            pumps += 1;
        }
        let mid = service.stats();
        let (_, stats, _) = service.finish();
        assert_eq!(stats.backpressure_flushes, mid.backpressure_flushes);
        assert!(stats.backpressure_flushes > 0, "bound never engaged");
        // The backlog gauge's high-water is the largest burst admitted
        // between drains: it must at least reach the bound that forced the
        // flushes, and can never exceed what was admitted overall.
        assert!(stats.backlog_high_water >= tight.max_pending);
        assert!(stats.backlog_high_water <= stats.ingested);
        let snap = mid;
        assert_eq!(snap.ingested, workload.arrival_count());
        // The shared registry carries service- and stream-layer metrics in
        // one snapshot.
        let obs = service_snapshot_of(&r, &workload, tight);
        assert_eq!(
            obs.counters.get("service.ingested").copied(),
            Some(workload.arrival_count() as u64)
        );
        assert_eq!(
            obs.counters.get("stream.ingested_events").copied(),
            Some(workload.arrival_count() as u64)
        );
        let pump_hist = obs
            .histograms
            .get("service.pump_seconds")
            .expect("pump latency histogram registered");
        assert_eq!(pump_hist.count, pumps + 1, "one span per pump call");
    }

    fn service_snapshot_of(
        r: &AdaptiveRunner,
        workload: &datawa_stream::Workload,
        config: ServiceConfig,
    ) -> MetricsSnapshot {
        let mut forecast = StaticForecast::default();
        let mut service = DispatchService::open(
            r,
            &mut forecast,
            WorkloadSource::new(workload),
            CollectingSink::new(),
            config,
        );
        while service.pump() != PumpStatus::SourceDrained {}
        service.obs_snapshot()
    }

    #[test]
    fn mid_stream_inspection_sees_progress() {
        let workload =
            UniformBaseline::new(ScenarioSpec::small().with_tasks(120).with_workers(10)).generate();
        let r = runner(PolicyKind::Greedy);
        let mut forecast = StaticForecast::default();
        let mut service = DispatchService::open(
            &r,
            &mut forecast,
            LiveSource::new(&workload, 60.0),
            CollectingSink::new(),
            ServiceConfig::default(),
        );
        let mut inspected = 0;
        while service.pump() != PumpStatus::SourceDrained {
            let snap = service.snapshot();
            assert!(snap.assigned_tasks <= service.stats().ingested);
            inspected += 1;
        }
        assert!(inspected > 0);
        let before_close = service.sink().dispatches();
        let (outcome, _, sink) = service.finish();
        assert!(before_close > 0, "decisions surfaced before close");
        assert!(sink.dispatches() >= before_close);
        assert_eq!(sink.dispatches(), outcome.run.assigned_tasks);
    }
}
