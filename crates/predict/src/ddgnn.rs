//! Dynamic Dependency-based Graph Neural Network (DDGNN, §III-C).
//!
//! The proposed predictor combines three pieces:
//!
//! 1. **Gated dilated causal temporal convolution** (Eq. 7) extracting each
//!    cell's temporal trend from its occurrence history;
//! 2. the **Demand Dependency Learning Module** (Eq. 4–6, [`DependencyLearner`])
//!    producing a *dynamic* adjacency matrix `A^t` from the current snapshot
//!    `C^t`;
//! 3. **APPNP propagation** (Eq. 8–9) mixing each node's features with its
//!    neighbours' through the normalised adjacency
//!    `Â^t = D̂^{-1/2}(A^t + I)D̂^{-1/2}`, followed by a ReLU and a dense
//!    sigmoid head predicting the next occurrence vector of every cell.
//!
//! Because `A^t` is row-stochastic (softmax-normalised), the degree matrix is
//! exactly `D̂ = 2·I`, so the normalised adjacency reduces to `(A^t + I)/2`;
//! this keeps the propagation fully differentiable with the available ops
//! while matching Eq. 8 exactly.

use crate::dependency::DependencyLearner;
use crate::series::SeriesExample;
use crate::stack_rows;
use crate::trainer::DemandPredictor;
use datawa_tensor::layers::{Dense, GatedTemporalConv};
use datawa_tensor::{Matrix, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of the DDGNN model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdgnnConfig {
    /// Hidden width of the temporal convolution.
    pub hidden: usize,
    /// Node-embedding width of the dependency learner.
    pub embedding: usize,
    /// Restart probability α of APPNP (Eq. 8).
    pub alpha: f64,
    /// Number of APPNP power-iteration steps `H`.
    pub propagation_steps: usize,
    /// Dilation factor of the causal convolution.
    pub dilation: usize,
    /// Kernel size of the causal convolution (the paper fixes K = 3).
    pub kernel: usize,
}

impl Default for DdgnnConfig {
    fn default() -> Self {
        DdgnnConfig {
            hidden: 12,
            embedding: 8,
            alpha: 0.1,
            propagation_steps: 2,
            dilation: 1,
            kernel: 3,
        }
    }
}

/// The DDGNN demand predictor.
pub struct DdgnnPredictor {
    temporal: GatedTemporalConv,
    dependency: DependencyLearner,
    head: Dense,
    config: DdgnnConfig,
    cells: usize,
    /// When `false`, the dynamic adjacency is replaced by the identity matrix
    /// (no inter-region propagation) — used by the ablation benchmark.
    use_dynamic_adjacency: bool,
}

impl DdgnnPredictor {
    /// Creates the model for `cells` grid cells and occurrence vectors of
    /// width `k`.
    pub fn new(cells: usize, k: usize, config: DdgnnConfig, seed: u64) -> DdgnnPredictor {
        let mut rng = StdRng::seed_from_u64(seed);
        DdgnnPredictor {
            temporal: GatedTemporalConv::new(
                k,
                config.hidden,
                config.kernel,
                config.dilation,
                &mut rng,
            ),
            dependency: DependencyLearner::new(k, config.embedding, &mut rng),
            head: Dense::new(config.hidden, k, &mut rng),
            config,
            cells,
            use_dynamic_adjacency: true,
        }
    }

    /// Convenience constructor with default hyper-parameters.
    pub fn with_defaults(cells: usize, k: usize, seed: u64) -> DdgnnPredictor {
        DdgnnPredictor::new(cells, k, DdgnnConfig::default(), seed)
    }

    /// Disables the learned dynamic adjacency (ablation: propagation becomes a
    /// no-op mix with the identity).
    pub fn without_dynamic_adjacency(mut self) -> DdgnnPredictor {
        self.use_dynamic_adjacency = false;
        self
    }

    /// The model configuration.
    pub fn config(&self) -> &DdgnnConfig {
        &self.config
    }

    /// The dynamic adjacency computed from a snapshot (exposed for analysis
    /// and tests).
    pub fn dynamic_adjacency(&self, snapshot: &Matrix) -> Matrix {
        self.dependency.adjacency_from_matrix(snapshot).value()
    }

    /// Per-cell temporal encoding (latest timestep of the gated causal conv).
    fn temporal_features(&self, example: &SeriesExample) -> Var {
        let mut rows = Vec::with_capacity(example.history.len());
        for history in &example.history {
            let timesteps = history.rows();
            let x = Var::constant(history.clone());
            let conv = self.temporal.forward(&x);
            rows.push(conv.rows_slice(timesteps - 1, 1));
        }
        stack_rows(&rows)
    }

    /// APPNP propagation (Eq. 8–9) of node features `z0` through the
    /// normalised adjacency derived from `adjacency`.
    fn propagate(&self, z0: &Var, adjacency: &Var) -> Var {
        let m = self.cells;
        // Â = (A + I) / 2 (see module docs — exact because A is row-stochastic).
        let identity = Matrix::identity(m);
        let a_hat = adjacency.add_const(&identity).scale(0.5);
        let alpha = self.config.alpha;
        let mut z = z0.clone();
        for _ in 0..self.config.propagation_steps.max(1) {
            z = z0.scale(alpha).add(&a_hat.matmul(&z).scale(1.0 - alpha));
        }
        z.relu()
    }
}

impl DemandPredictor for DdgnnPredictor {
    fn name(&self) -> &'static str {
        "DDGNN"
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.temporal.parameters();
        p.extend(self.dependency.parameters());
        p.extend(self.head.parameters());
        p
    }

    fn forward(&self, example: &SeriesExample) -> Var {
        assert_eq!(
            example.history.len(),
            self.cells,
            "example cell count does not match the model"
        );
        let z0 = self.temporal_features(example); // (M, hidden)
        let adjacency = if self.use_dynamic_adjacency {
            self.dependency
                .adjacency(&Var::constant(example.snapshot.clone()))
        } else {
            Var::constant(Matrix::identity(self.cells))
        };
        let z = self.propagate(&z0, &adjacency);
        self.head.forward(&z).sigmoid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{SeriesDataset, SeriesSpec};
    use crate::trainer::TrainingConfig;
    use datawa_core::Timestamp;

    /// Dataset with a cross-region dependency: activity in the "university"
    /// cell at window t causes activity in the "restaurant" cell at t+1 (the
    /// paper's §III-B motivating example).
    fn dependency_dataset(cells: usize, k: usize, n: usize) -> SeriesDataset {
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, k, 2);
        let mut examples = Vec::new();
        for e in 0..n {
            let lead_active = (e / 2) % 2 == 0;
            let mut history = Vec::new();
            for c in 0..cells {
                let mut h = Matrix::zeros(2, k);
                if c == 0 && lead_active {
                    for j in 0..k {
                        h.set(1, j, 1.0);
                    }
                }
                history.push(h);
            }
            let mut snapshot = Matrix::zeros(cells, k);
            if lead_active {
                for j in 0..k {
                    snapshot.set(0, j, 1.0);
                }
            }
            let mut target = Matrix::zeros(cells, k);
            if lead_active {
                // Demand in the lead region propagates to every other region
                // in the next window (all follower cells share the pattern so
                // the label is identifiable from the features alone).
                for c in 1..cells {
                    for j in 0..k {
                        target.set(c, j, 1.0);
                    }
                }
            }
            examples.push(crate::series::SeriesExample {
                history,
                snapshot,
                target,
                target_window: e + 2,
            });
        }
        SeriesDataset {
            spec,
            cells,
            examples,
        }
    }

    #[test]
    fn forward_shape_and_probability_range() {
        let ds = dependency_dataset(4, 3, 2);
        let model = DdgnnPredictor::with_defaults(4, 3, 0);
        let out = model.predict(&ds.examples[0]);
        assert_eq!(out.shape(), (4, 3));
        assert!(out.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(model.name(), "DDGNN");
    }

    #[test]
    fn dynamic_adjacency_is_row_stochastic_and_snapshot_dependent() {
        let model = DdgnnPredictor::with_defaults(3, 2, 1);
        let a =
            model.dynamic_adjacency(&Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0], &[0.0, 1.0]]));
        let b =
            model.dynamic_adjacency(&Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[0.0, 0.0]]));
        for r in 0..3 {
            assert!((a.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert_ne!(a, b, "adjacency must depend on the demand snapshot");
    }

    #[test]
    fn learns_the_cross_region_dependency() {
        let ds = dependency_dataset(3, 2, 16);
        let (train, test) = ds.split(0.75);
        let mut model = DdgnnPredictor::with_defaults(3, 2, 3);
        model.train(
            &train,
            &TrainingConfig {
                epochs: 120,
                learning_rate: 0.03,
            },
        );
        let ap = model.evaluate(&test).average_precision;
        assert!(
            ap > 0.7,
            "DDGNN failed to learn the cross-region dependency: AP={ap}"
        );
    }

    #[test]
    fn ablated_model_has_no_dynamic_adjacency_parameters_in_use() {
        let ds = dependency_dataset(3, 2, 4);
        let full = DdgnnPredictor::with_defaults(3, 2, 4);
        let ablated = DdgnnPredictor::with_defaults(3, 2, 4).without_dynamic_adjacency();
        // Outputs differ because the ablated model skips propagation through A^t.
        let a = full.predict(&ds.examples[0]);
        let b = ablated.predict(&ds.examples[0]);
        assert_ne!(a, b);
    }

    #[test]
    fn config_accessor_reports_hyperparameters() {
        let model = DdgnnPredictor::new(
            2,
            2,
            DdgnnConfig {
                hidden: 6,
                embedding: 4,
                alpha: 0.2,
                propagation_steps: 3,
                dilation: 2,
                kernel: 3,
            },
            0,
        );
        assert_eq!(model.config().hidden, 6);
        assert_eq!(model.config().propagation_steps, 3);
    }
}
