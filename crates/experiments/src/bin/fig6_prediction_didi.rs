//! Regenerates Fig. 6: task-demand prediction vs the time interval ΔT on the
//! Didi trace — Average Precision, assigned tasks under DTA+TP, training time
//! and testing time for LSTM, Graph-WaveNet and DDGNN.

use datawa_experiments::{
    format_table, prediction_effect_of_delta_t, Dataset, ExperimentScale, Table,
};

fn main() {
    let scale = ExperimentScale::from_env();
    let config = datawa_experiments::params::pipeline_config_from_env();
    let rows = prediction_effect_of_delta_t(Dataset::Didi, scale, &config, true);
    let mut table = Table::new(vec![
        "ΔT (s)",
        "Model",
        "Average Precision",
        "Assigned tasks (DTA+TP)",
        "Train time (s)",
        "Test time (s)",
    ]);
    for r in &rows {
        table.push_row(vec![
            format!("{}", r.delta_t),
            r.model.clone(),
            format!("{:.3}", r.average_precision),
            r.assigned_tasks.to_string(),
            format!("{:.2}", r.train_seconds),
            format!("{:.4}", r.test_seconds),
        ]);
    }
    println!(
        "Fig. 6 — prediction vs ΔT on {} (scale {:.3})\n",
        Dataset::Didi.name(),
        scale.factor
    );
    println!("{}", format_table(&table));
}
