//! Incremental replanning: dirty tracking and the partition plan cache.
//!
//! Most planning instants touch only a handful of spatial clusters — a task
//! arrival dirties the partitions of the workers that can reach it, one
//! worker going offline dirties only its own partition. This module gives
//! the planner the machinery to *reuse* everything the instant did not
//! touch, while staying bitwise identical to a full replan:
//!
//! * [`DirtySet`] — the event-side tracker kept by `RunnerState`: which
//!   tasks arrived/expired/were served and which workers came online, went
//!   offline or moved since the last planning instant, plus the forecast
//!   epoch (the provider's refresh count). Drivers read it for diagnostics;
//!   the dirty-fraction histogram in `datawa-obs` is fed from the planner's
//!   own accounting, which is derived independently (see below) so a missed
//!   hook can never corrupt plans.
//! * [`IncrementalContext`] — what a driver hands the planner alongside a
//!   planning call so caching is sound: the *real* task id behind every
//!   planning-store id (valid only when the store holds no predicted
//!   phantoms — phantom instants always take the full path), and the
//!   forecast epoch that folds into every fingerprint.
//! * [`PlanCache`] — owned by the `Planner`. Two layers:
//!
//!   1. **Per-worker reachable sets.** A worker's capped nearest-first
//!      reachable list is re-derived from scratch only when it may have
//!      changed. A cached list is still exact when (a) the worker's
//!      location, reach and availability window are bit-identical, (b)
//!      every cached member is still an open candidate and still passes
//!      `Worker::can_reach` *re-evaluated at the current instant*, and (c)
//!      no task that joined the candidate pool since the last pass lies
//!      within the worker's reachable distance. Soundness of (b)+(c) rests
//!      on monotonicity: every `can_reach` constraint only decays as `now`
//!      advances and distances are static while the worker stands still, so
//!      a task outside the list cannot climb into the capped nearest-first
//!      ranking unless it is new — and (c) catches those conservatively by
//!      distance alone.
//!   2. **Per-partition plans.** Each searched partition is stored under a
//!      fingerprint of its content — ordered member workers, their
//!      location/reach/window bits, their reachable sets (as real task
//!      ids) and the forecast epoch — and verified on probe by full content
//!      comparison *including the regenerated candidate sequences* (their
//!      validity and Eq. 10 orderings depend on `now`, so sequence equality
//!      is part of the hit criterion, never assumed). On a hit the stored
//!      plan, kept in real-id space, is translated back into the instant's
//!      planning ids and spliced in partition-index order; only misses are
//!      searched. The exact search's result is a pure function of exactly
//!      the compared content (member order, reachable lists, ordered
//!      sequence id-lists, the partition task universe and the per-node
//!      budget), so a verified hit is bitwise identical to a recompute.
//!
//! Workers whose reachable set is empty are excluded from the dependency
//! graph before tree construction: each would form an isolated singleton
//! partition whose search assigns nothing (the cluster-tree build is
//! per-component, and dropping isolated vertices leaves every other
//! component's member order, edges and subtree shape unchanged), so their
//! "plans" are reused trivially. On quiet, worker-heavy instants this
//! eliminates the bulk of tree construction and allocation outright.

use crate::config::AssignConfig;
use crate::partition::Partition;
use crate::reachable::ReachableSets;
use crate::sequences::SequenceSet;
use datawa_core::{TaskId, TaskSequence, TaskStore, Timestamp, Worker, WorkerId, WorkerStore};
use std::collections::HashMap;

/// Everything that changed since the previous planning instant, tracked by
/// event kind. `RunnerState` fills it from its event hooks (arrival,
/// expiration, dispatch, online/offline, replan tick, forecast refresh) and
/// drains it after every planning call; the sharded engine keeps one per
/// shard automatically (each shard owns its own `RunnerState`).
///
/// The tracker is *diagnostic*: the planner derives its own dirty set from
/// its actual inputs (candidate-list diff + per-worker re-verification), so
/// plan correctness never depends on a driver calling every hook.
#[derive(Debug, Clone, Default)]
pub struct DirtySet {
    /// Tasks that arrived since the last planning instant.
    pub arrived_tasks: Vec<TaskId>,
    /// Tasks that expired since the last planning instant.
    pub expired_tasks: Vec<TaskId>,
    /// Tasks dispatched (served) since the last planning instant.
    pub served_tasks: Vec<TaskId>,
    /// Workers that came online since the last planning instant.
    pub online_workers: Vec<WorkerId>,
    /// Workers that went offline since the last planning instant.
    pub offline_workers: Vec<WorkerId>,
    /// Workers that moved (dispatch relocates the worker to the task).
    pub moved_workers: Vec<WorkerId>,
    /// Replan ticks since the last planning instant.
    pub replan_ticks: usize,
    /// The forecast provider's refresh count — a bumped epoch invalidates
    /// every cached fingerprint (it is hashed into all of them).
    pub forecast_epoch: u64,
}

impl DirtySet {
    /// Whether nothing has been recorded since the last drain (the forecast
    /// epoch is a watermark, not an event, and does not count).
    pub fn is_clean(&self) -> bool {
        self.events() == 0
    }

    /// Total recorded events since the last drain.
    pub fn events(&self) -> usize {
        self.arrived_tasks.len()
            + self.expired_tasks.len()
            + self.served_tasks.len()
            + self.online_workers.len()
            + self.offline_workers.len()
            + self.moved_workers.len()
            + self.replan_ticks
    }

    /// Records a task arrival.
    pub fn note_task_arrival(&mut self, id: TaskId) {
        self.arrived_tasks.push(id);
    }

    /// Records a task expiration.
    pub fn note_task_expiration(&mut self, id: TaskId) {
        self.expired_tasks.push(id);
    }

    /// Records a task dispatch.
    pub fn note_task_served(&mut self, id: TaskId) {
        self.served_tasks.push(id);
    }

    /// Records a worker coming online.
    pub fn note_worker_online(&mut self, id: WorkerId) {
        self.online_workers.push(id);
    }

    /// Records a worker going offline.
    pub fn note_worker_offline(&mut self, id: WorkerId) {
        self.offline_workers.push(id);
    }

    /// Records a worker relocation (dispatch moves the worker to the task).
    pub fn note_worker_moved(&mut self, id: WorkerId) {
        self.moved_workers.push(id);
    }

    /// Records a replan tick.
    pub fn note_replan_tick(&mut self) {
        self.replan_ticks += 1;
    }

    /// Updates the forecast-epoch watermark.
    pub fn note_forecast_epoch(&mut self, epoch: u64) {
        self.forecast_epoch = epoch;
    }

    /// Drains the per-instant event lists (the forecast epoch persists — it
    /// is a watermark).
    pub fn clear(&mut self) {
        self.arrived_tasks.clear();
        self.expired_tasks.clear();
        self.served_tasks.clear();
        self.online_workers.clear();
        self.offline_workers.clear();
        self.moved_workers.clear();
        self.replan_ticks = 0;
    }
}

/// The driver-side facts that make plan caching sound for one planning call.
///
/// Drivers may only construct this when every planning-store task stands for
/// a real open task (`real_ids[i]` is the real id behind planning id `i`,
/// ascending); instants whose store contains predicted phantoms must pass
/// `None` instead, forcing the full path (phantom scoring depends on `now`
/// in ways content fingerprints cannot capture).
#[derive(Debug, Clone, Copy)]
pub struct IncrementalContext<'a> {
    /// Real task id behind each planning-store id, in planning-id order
    /// (ascending, since open views iterate in ascending real-id order).
    pub real_ids: &'a [TaskId],
    /// The forecast provider's refresh count at this instant; folded into
    /// every partition fingerprint so a model refresh invalidates all
    /// cached plans at once.
    pub forecast_epoch: u64,
}

/// Exact bit patterns of every worker attribute the reachable computation
/// and the search read: location, reachable distance, availability window.
/// Bit equality (not float equality) keeps the comparison total and exact.
fn worker_bits(w: &Worker) -> [u64; 5] {
    [
        w.location.x.to_bits(),
        w.location.y.to_bits(),
        w.reachable_distance.to_bits(),
        w.on().0.to_bits(),
        w.off().0.to_bits(),
    ]
}

/// Planning id of a real task in this instant's candidate list, if open.
fn planning_id(real_ids: &[TaskId], real: TaskId) -> Option<TaskId> {
    real_ids.binary_search(&real).ok().map(|i| TaskId(i as u32))
}

/// FNV-1a over a stream of 64-bit words — deterministic across runs and
/// platforms, no dependencies.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Debug, Default)]
struct WorkerEntry {
    /// Pass at which this entry was last verified or rebuilt; only entries
    /// verified at the immediately preceding incremental pass are eligible
    /// for the clean check (anything older missed candidate-pool diffs).
    verified_pass: u64,
    /// Worker attribute bits the entry was computed under.
    bits: [u64; 5],
    /// The capped nearest-first reachable list, in *real* task ids (stable
    /// across instants, unlike the per-instant dense planning ids).
    reachable_real: Vec<TaskId>,
}

/// One cached partition: the full content it was computed from plus the plan
/// it produced, everything in real-id space.
#[derive(Debug)]
struct PartitionEntry {
    epoch: u64,
    members: Vec<MemberKey>,
    /// The searched plan, per worker, in real task ids.
    plan: Vec<(WorkerId, Vec<TaskId>)>,
    last_used: u64,
}

#[derive(Debug)]
struct MemberKey {
    wid: WorkerId,
    bits: [u64; 5],
    /// Reachable list in real ids (defines the partition's task universe
    /// and, together with the other members', its tree shape).
    reachable: Vec<TaskId>,
    /// Candidate sequences in `SequenceSet` order, each as real ids.
    sequences: Vec<Vec<TaskId>>,
}

/// Entry cap: above this the cache sweeps out entries not used recently.
/// Eviction is deterministic and output-invisible (a miss recomputes the
/// identical plan); the cap only bounds memory on long drifting sessions.
const MAX_PARTITION_ENTRIES: usize = 8192;
/// Sweep age (in incremental passes) once the cap is exceeded.
const EVICT_AGE: u64 = 16;

/// The planner's incremental state across planning instants: verified
/// per-worker reachable sets, the previous candidate pool, and fingerprinted
/// per-partition plans. See the module docs for the invariants.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Incremental passes completed (full-path calls do not advance this —
    /// they also do not touch the world model the cache verifies against).
    pass: u64,
    /// Config the cached state was computed under; a live change clears all.
    config: Option<AssignConfig>,
    /// Candidate pool (real ids, ascending) of the previous incremental pass.
    prev_open: Vec<TaskId>,
    has_prev: bool,
    workers: HashMap<WorkerId, WorkerEntry>,
    partitions: HashMap<u64, PartitionEntry>,
    /// Scratch: candidate pool additions since the previous pass.
    added: Vec<TaskId>,
    /// Scratch: (task, distance) pairs of a per-worker rescan.
    scratch_pairs: Vec<(TaskId, f64)>,
}

impl PlanCache {
    /// Refreshes every listed worker's reachable set for this instant —
    /// verifying cached lists where sound, rescanning where not — and
    /// returns the per-worker sets (in planning ids, exactly what
    /// `reachable_tasks` would have produced) plus the number of workers
    /// that needed a rescan.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn refresh_reachable(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        real_ids: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        config: &AssignConfig,
        now: Timestamp,
    ) -> (ReachableSets, usize) {
        self.pass += 1;
        if self.config != Some(*config) {
            self.workers.clear();
            self.partitions.clear();
            self.has_prev = false;
            self.config = Some(*config);
        }
        // Tasks that joined the candidate pool since the previous pass
        // (both lists ascending — one merge sweep).
        self.added.clear();
        if self.has_prev {
            let mut i = 0;
            for &t in real_ids {
                while i < self.prev_open.len() && self.prev_open[i] < t {
                    i += 1;
                }
                if i >= self.prev_open.len() || self.prev_open[i] != t {
                    self.added.push(t);
                }
            }
        }
        let mut per_worker = HashMap::with_capacity(worker_ids.len());
        let mut rescanned = 0usize;
        for &wid in worker_ids {
            let worker = workers.get(wid);
            let bits = worker_bits(worker);
            let entry = self.workers.entry(wid).or_default();
            let mut pids: Vec<TaskId> = Vec::with_capacity(entry.reachable_real.len());
            let mut clean =
                self.has_prev && entry.verified_pass + 1 == self.pass && entry.bits == bits;
            if clean {
                // (b) every cached member still open, unexpired, reachable —
                // the exact predicates, re-evaluated at this instant.
                for &rt in &entry.reachable_real {
                    match planning_id(real_ids, rt) {
                        Some(pid) => {
                            let task = tasks.get(pid);
                            if task.is_expired_at(now)
                                || !worker.can_reach(task, &config.travel, now)
                            {
                                clean = false;
                                break;
                            }
                            pids.push(pid);
                        }
                        None => {
                            clean = false;
                            break;
                        }
                    }
                }
            }
            if clean {
                // (c) no new candidate within reach distance (conservative:
                // time feasibility is not consulted, so this can only
                // over-report dirtiness, never miss a ranking change).
                for &rt in &self.added {
                    // datawa-lint: allow(unwrap-in-hot-path) -- DirtySet::added is built from the same candidate list real_ids indexes
                    let pid = planning_id(real_ids, rt).expect("added tasks are candidates");
                    let task = tasks.get(pid);
                    let d = config
                        .travel
                        .travel_distance(&worker.location, &task.location);
                    if d <= worker.reachable_distance {
                        clean = false;
                        break;
                    }
                }
            }
            if clean {
                entry.verified_pass = self.pass;
            } else {
                rescanned += 1;
                // Full rescan — the same loop (and the same stable sort with
                // the same tie order) as `reachable_tasks`.
                let pairs = &mut self.scratch_pairs;
                pairs.clear();
                for &tid in candidate_tasks {
                    let task = tasks.get(tid);
                    if task.is_expired_at(now) {
                        continue;
                    }
                    if worker.can_reach(task, &config.travel, now) {
                        let d = config
                            .travel
                            .travel_distance(&worker.location, &task.location);
                        pairs.push((tid, d));
                    }
                }
                // Must match `reachable::compute_reachable_sets` bitwise —
                // same `total_cmp` comparator, same truncation.
                pairs.sort_by(|a, b| a.1.total_cmp(&b.1));
                pairs.truncate(config.max_reachable_per_worker);
                pids.clear();
                pids.extend(pairs.iter().map(|&(t, _)| t));
                entry.bits = bits;
                entry.verified_pass = self.pass;
                entry.reachable_real.clear();
                entry
                    .reachable_real
                    .extend(pids.iter().map(|&p| real_ids[p.index()]));
            }
            per_worker.insert(wid, pids);
        }
        self.prev_open.clear();
        self.prev_open.extend_from_slice(real_ids);
        self.has_prev = true;
        (ReachableSets { per_worker }, rescanned)
    }

    /// Fingerprint of a partition's content at this instant: forecast epoch,
    /// ordered members, their attribute bits and reachable real-id lists.
    /// Sequences are deliberately left out of the hash — they are compared
    /// in full on probe, where a mismatch is a miss, not a correctness
    /// hazard.
    fn fingerprint(&self, partition: &Partition, workers: &WorkerStore, epoch: u64) -> u64 {
        let mut h = Fnv::new();
        h.word(epoch);
        h.word(partition.worker_ids.len() as u64);
        for &wid in &partition.worker_ids {
            h.word(wid.index() as u64 + 1);
            for b in worker_bits(workers.get(wid)) {
                h.word(b);
            }
            let entry = &self.workers[&wid];
            h.word(entry.reachable_real.len() as u64);
            for &t in &entry.reachable_real {
                h.word(t.index() as u64 + 1);
            }
        }
        h.finish()
    }

    /// Probes the cache for `partition`. Returns the fingerprint plus, on a
    /// verified hit, the stored plan translated into this instant's planning
    /// ids. A hash match with *any* content difference (members, bits,
    /// reachable lists, regenerated sequences, epoch) is a miss.
    pub(crate) fn probe(
        &mut self,
        partition: &Partition,
        sequences: &HashMap<WorkerId, SequenceSet>,
        real_ids: &[TaskId],
        workers: &WorkerStore,
        epoch: u64,
    ) -> (u64, Option<Vec<(WorkerId, TaskSequence)>>) {
        let key = self.fingerprint(partition, workers, epoch);
        let pass = self.pass;
        let worker_entries = &self.workers;
        let Some(entry) = self.partitions.get_mut(&key) else {
            return (key, None);
        };
        if !entry_matches(
            entry,
            partition,
            sequences,
            real_ids,
            workers,
            worker_entries,
            epoch,
        ) {
            return (key, None);
        }
        let mut plan = Vec::with_capacity(entry.plan.len());
        for (wid, seq_real) in &entry.plan {
            let mut seq = TaskSequence::empty();
            for &rt in seq_real {
                match planning_id(real_ids, rt) {
                    Some(pid) => seq.push(pid),
                    // Unreachable given content equality (plan tasks come
                    // from the matched reachable lists); treated as a miss
                    // defensively rather than trusted.
                    None => return (key, None),
                }
            }
            plan.push((*wid, seq));
        }
        entry.last_used = pass;
        (key, Some(plan))
    }

    /// Stores a freshly searched partition plan under `key` (the fingerprint
    /// returned by [`PlanCache::probe`] this same call).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store(
        &mut self,
        key: u64,
        partition: &Partition,
        sequences: &HashMap<WorkerId, SequenceSet>,
        real_ids: &[TaskId],
        workers: &WorkerStore,
        epoch: u64,
        plan: &[(WorkerId, TaskSequence)],
    ) {
        let members = partition
            .worker_ids
            .iter()
            .map(|&wid| MemberKey {
                wid,
                bits: worker_bits(workers.get(wid)),
                reachable: self.workers[&wid].reachable_real.clone(),
                sequences: sequences
                    .get(&wid)
                    .map(|s| {
                        s.sequences
                            .iter()
                            .map(|seq| seq.iter().map(|p| real_ids[p.index()]).collect())
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect();
        let plan_real = plan
            .iter()
            .map(|(w, seq)| (*w, seq.iter().map(|p| real_ids[p.index()]).collect()))
            .collect();
        let pass = self.pass;
        self.partitions.insert(
            key,
            PartitionEntry {
                epoch,
                members,
                plan: plan_real,
                last_used: pass,
            },
        );
        if self.partitions.len() > MAX_PARTITION_ENTRIES {
            self.partitions
                // datawa-lint: allow(unordered-iteration) -- the age predicate is per-entry, so the surviving set is identical under any iteration order
                .retain(|_, e| pass.saturating_sub(e.last_used) <= EVICT_AGE);
        }
    }

    /// Cached partition plans currently held.
    pub fn cached_partitions(&self) -> usize {
        self.partitions.len()
    }
}

/// Full content comparison backing a fingerprint hit (collision-proof: the
/// fingerprint only routes to the entry, equality decides).
fn entry_matches(
    entry: &PartitionEntry,
    partition: &Partition,
    sequences: &HashMap<WorkerId, SequenceSet>,
    real_ids: &[TaskId],
    workers: &WorkerStore,
    worker_entries: &HashMap<WorkerId, WorkerEntry>,
    epoch: u64,
) -> bool {
    if entry.epoch != epoch || entry.members.len() != partition.worker_ids.len() {
        return false;
    }
    for (member, &wid) in entry.members.iter().zip(&partition.worker_ids) {
        if member.wid != wid
            || member.bits != worker_bits(workers.get(wid))
            || member.reachable != worker_entries[&wid].reachable_real
        {
            return false;
        }
        let live = sequences
            .get(&wid)
            .map(|s| s.sequences.as_slice())
            .unwrap_or(&[]);
        if member.sequences.len() != live.len() {
            return false;
        }
        for (stored, seq) in member.sequences.iter().zip(live) {
            if stored.len() != seq.len() {
                return false;
            }
            for (&stored_real, planning) in stored.iter().zip(seq.iter()) {
                if real_ids[planning.index()] != stored_real {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_set_counts_and_clears() {
        let mut d = DirtySet::default();
        assert!(d.is_clean());
        d.note_task_arrival(TaskId(3));
        d.note_worker_moved(WorkerId(1));
        d.note_replan_tick();
        d.note_forecast_epoch(2);
        assert_eq!(d.events(), 3);
        d.clear();
        assert!(d.is_clean());
        assert_eq!(d.forecast_epoch, 2, "the epoch watermark persists");
    }

    #[test]
    fn fnv_is_order_sensitive_and_deterministic() {
        let mut a = Fnv::new();
        a.word(1);
        a.word(2);
        let mut b = Fnv::new();
        b.word(2);
        b.word(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.word(1);
        c.word(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn planning_id_translates_through_the_ascending_pool() {
        let pool = [TaskId(2), TaskId(5), TaskId(9)];
        assert_eq!(planning_id(&pool, TaskId(5)), Some(TaskId(1)));
        assert_eq!(planning_id(&pool, TaskId(9)), Some(TaskId(2)));
        assert_eq!(planning_id(&pool, TaskId(4)), None);
    }
}
