// Fixture: blocking-sleep (observe-only warning). Scanned with
// `--context assign`, so this file masquerades as production code of a
// deterministic crate. It is never compiled — the engine's workspace walk
// skips `tests/fixtures`.

fn positive_blocking_wait() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

fn negative_event_modelled_wait(queue: &mut EventQueue) {
    queue.push(Event::ReplanTick, Timestamp(5.0));
}
