//! Recursive Tree Construction (RTC, §IV-A.4).
//!
//! Given a worker dependency graph, RTC picks the maximal clique whose removal
//! disconnects the graph into the largest number of components, makes that
//! clique the root of a (sub)tree, and recurses into each component. The
//! resulting tree has two properties the paper relies on (and which the tests
//! and property tests verify):
//!
//! 1. every graph node appears in exactly one tree node, and
//! 2. the node sets of sibling tree nodes (in fact, of different subtrees
//!    hanging off the same parent) are independent — no graph edge crosses
//!    between them — so the assignment sub-problems they induce can be solved
//!    independently.

use crate::chordal::mcs_fill_in;
use crate::undirected::UnGraph;
use std::collections::BTreeSet;

/// One node of the cluster tree: a set of graph nodes (a separator clique of
/// the subgraph it was extracted from) plus child tree nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Graph nodes (e.g. worker indices) grouped in this tree node.
    pub members: Vec<usize>,
    /// Indices (into [`ClusterTree::nodes`]) of the child tree nodes.
    pub children: Vec<usize>,
}

/// The tree produced by recursive tree construction. A disconnected input
/// graph yields one root per connected component.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterTree {
    /// All tree nodes, in creation order.
    pub nodes: Vec<TreeNode>,
    /// Indices of the root nodes (one per connected component of the input).
    pub roots: Vec<usize>,
}

impl ClusterTree {
    /// Builds the cluster tree of `graph` by applying RTC to every connected
    /// component.
    pub fn build(graph: &UnGraph) -> ClusterTree {
        let mut tree = ClusterTree::default();
        for component in graph.connected_components() {
            let allowed: BTreeSet<usize> = component.iter().copied().collect();
            if let Some(root) = build_recursive(graph, &allowed, &mut tree.nodes) {
                tree.roots.push(root);
            }
        }
        tree
    }

    /// Total number of tree nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (empty input graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All graph nodes covered by the tree, sorted.
    pub fn covered_nodes(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .nodes
            .iter()
            .flat_map(|n| n.members.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Returns the members of every node in the subtree rooted at `node`.
    pub fn subtree_members(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.extend(self.nodes[n].members.iter().copied());
            stack.extend(self.nodes[n].children.iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Depth of the tree (longest root-to-leaf path, in nodes). Zero for an
    /// empty tree.
    pub fn depth(&self) -> usize {
        fn depth_of(tree: &ClusterTree, node: usize) -> usize {
            1 + tree.nodes[node]
                .children
                .iter()
                .map(|&c| depth_of(tree, c))
                .max()
                .unwrap_or(0)
        }
        self.roots
            .iter()
            .map(|&r| depth_of(self, r))
            .max()
            .unwrap_or(0)
    }

    /// Verifies the sibling-independence property against the original graph:
    /// for every tree node, the subtrees rooted at its children must be
    /// pairwise non-adjacent in `graph`. Returns `true` when the property
    /// holds. Exposed for tests and debugging.
    pub fn verify_sibling_independence(&self, graph: &UnGraph) -> bool {
        for node in &self.nodes {
            let child_sets: Vec<Vec<usize>> = node
                .children
                .iter()
                .map(|&c| self.subtree_members(c))
                .collect();
            for i in 0..child_sets.len() {
                for j in (i + 1)..child_sets.len() {
                    for &u in &child_sets[i] {
                        for &v in &child_sets[j] {
                            if graph.has_edge(u, v) {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        // Roots correspond to different connected components: independent by
        // construction, but verify anyway.
        for i in 0..self.roots.len() {
            for j in (i + 1)..self.roots.len() {
                let a = self.subtree_members(self.roots[i]);
                let b = self.subtree_members(self.roots[j]);
                for &u in &a {
                    for &v in &b {
                        if graph.has_edge(u, v) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

/// Recursive step of RTC on the subgraph of `graph` induced by `allowed`.
/// Returns the index of the created root node, or `None` when `allowed` is
/// empty.
fn build_recursive(
    graph: &UnGraph,
    allowed: &BTreeSet<usize>,
    nodes: &mut Vec<TreeNode>,
) -> Option<usize> {
    if allowed.is_empty() {
        return None;
    }
    // Work on the induced subgraph so clique enumeration only sees `allowed`.
    let member_list: Vec<usize> = allowed.iter().copied().collect();
    let (sub, mapping) = graph.induced_subgraph(&member_list);
    let decomposition = mcs_fill_in(&sub);
    // Pick the clique whose removal yields the most components (paper step i),
    // breaking ties towards smaller cliques then lexicographic order, so the
    // construction is deterministic.
    let mut best_clique: Option<&Vec<usize>> = None;
    let mut best_components = usize::MAX;
    let mut best_score: Option<(std::cmp::Reverse<usize>, usize)> = None;
    for clique in &decomposition.cliques {
        let clique_set: BTreeSet<usize> = clique.iter().copied().collect();
        let rest: BTreeSet<usize> = (0..sub.node_count())
            .filter(|v| !clique_set.contains(v))
            .collect();
        let comps = sub.components_within(&rest);
        let score = (std::cmp::Reverse(comps.len()), clique.len());
        if best_score.is_none_or(|bs| score < bs) {
            best_score = Some(score);
            best_clique = Some(clique);
            best_components = comps.len();
        }
    }
    let separator = best_clique
        .expect("non-empty graph yields at least one clique")
        .clone();
    let _ = best_components;
    // Map separator back to original node ids.
    let members: Vec<usize> = separator.iter().map(|&v| mapping[v]).collect();
    let node_index = nodes.len();
    nodes.push(TreeNode {
        members: members.clone(),
        children: Vec::new(),
    });
    // Recurse into each component of (allowed \ separator).
    let member_set: BTreeSet<usize> = members.iter().copied().collect();
    let remaining: BTreeSet<usize> = allowed.difference(&member_set).copied().collect();
    let components = graph.components_within(&remaining);
    let mut children = Vec::new();
    for component in components {
        let comp_set: BTreeSet<usize> = component.into_iter().collect();
        if let Some(child) = build_recursive(graph, &comp_set, nodes) {
            children.push(child);
        }
    }
    nodes[node_index].children = children;
    Some(node_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> UnGraph {
        let mut g = UnGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn single_node_graph_yields_single_leaf() {
        let g = UnGraph::new(1);
        let t = ClusterTree::build(&g);
        assert_eq!(t.len(), 1);
        assert_eq!(t.roots, vec![0]);
        assert_eq!(t.nodes[0].members, vec![0]);
        assert!(t.nodes[0].children.is_empty());
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn every_node_is_covered_exactly_once() {
        let g = path(9);
        let t = ClusterTree::build(&g);
        assert_eq!(t.covered_nodes(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn path_separator_splits_into_two_children() {
        let g = path(7);
        let t = ClusterTree::build(&g);
        assert_eq!(t.roots.len(), 1);
        // The root separator of a path should produce two independent halves.
        let root = &t.nodes[t.roots[0]];
        assert!(
            root.children.len() >= 2,
            "root of a path should have ≥2 children"
        );
        assert!(t.verify_sibling_independence(&g));
    }

    #[test]
    fn disconnected_graph_has_one_root_per_component() {
        let mut g = UnGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(4, 5);
        let t = ClusterTree::build(&g);
        assert_eq!(t.roots.len(), 3);
        assert!(t.verify_sibling_independence(&g));
        assert_eq!(t.covered_nodes(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn complete_graph_collapses_to_one_node() {
        let mut g = UnGraph::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j);
            }
        }
        let t = ClusterTree::build(&g);
        assert_eq!(t.len(), 1);
        assert_eq!(t.nodes[0].members, vec![0, 1, 2, 3]);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn sibling_independence_on_a_grid_like_graph() {
        // 3x3 grid graph.
        let mut g = UnGraph::new(9);
        for r in 0..3 {
            for c in 0..3 {
                let v = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < 3 {
                    g.add_edge(v, v + 3);
                }
            }
        }
        let t = ClusterTree::build(&g);
        assert!(t.verify_sibling_independence(&g));
        assert_eq!(t.covered_nodes(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn subtree_members_include_descendants() {
        let g = path(5);
        let t = ClusterTree::build(&g);
        let all = t.subtree_members(t.roots[0]);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_graph_builds_empty_tree() {
        let g = UnGraph::new(0);
        let t = ClusterTree::build(&g);
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
    }
}
