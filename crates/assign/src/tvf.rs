//! Task Value Function (§IV-B, Eq. 11–12).
//!
//! The TVF estimates the expected cumulative reward (number of tasks that will
//! end up assigned) of performing an action — giving worker `w` the sequence
//! `q` — in a given search state. It is trained by Q-learning-style regression
//! on `(state, action, opt)` samples collected during exact DFSearch runs
//! (Algorithm 1), and is then used by the TVF-guided search (Algorithm 2) to
//! pick each worker's sequence without backtracking.

use datawa_core::{TaskSequence, TaskStore, Timestamp, Worker};
use datawa_tensor::layers::Dense;
use datawa_tensor::optim::Adam;
use datawa_tensor::{Matrix, Var};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Features of a search state (the remaining workers and tasks).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StateFeatures {
    /// Number of workers still unassigned in the current sub-problem (the
    /// node's remaining workers plus all workers below it, `W_N + W_C`).
    pub remaining_workers: usize,
    /// Number of tasks still unassigned.
    pub remaining_tasks: usize,
    /// Mean number of reachable tasks per remaining worker.
    pub mean_reachable: f64,
}

/// Features of an action: assigning one candidate sequence to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActionFeatures {
    /// Sequence length (the immediate reward of the action).
    pub sequence_len: usize,
    /// Total travel time of the sequence, in seconds.
    pub travel_time: f64,
    /// Total travel distance of the sequence.
    pub travel_distance: f64,
    /// Worker's remaining availability window, in seconds.
    pub remaining_window: f64,
}

impl ActionFeatures {
    /// Computes action features for assigning `sequence` to `worker` at `now`.
    pub fn compute(
        worker: &Worker,
        sequence: &TaskSequence,
        tasks: &TaskStore,
        travel: &datawa_core::TravelModel,
        now: Timestamp,
    ) -> ActionFeatures {
        let arrivals = sequence.arrival_times(worker, tasks, travel, now);
        ActionFeatures {
            sequence_len: sequence.len(),
            travel_time: (arrivals.completion - now).seconds().max(0.0),
            travel_distance: arrivals.total_distance,
            remaining_window: worker.remaining_window(now).seconds(),
        }
    }
}

/// Normalisation constants keeping the MLP inputs in a friendly range.
const WORKER_SCALE: f64 = 0.02; // ≈ 1/50 workers
const TASK_SCALE: f64 = 0.01; // ≈ 1/100 tasks
const TIME_SCALE: f64 = 1.0 / 600.0; // ≈ 1/10 minutes
const DIST_SCALE: f64 = 0.2; // ≈ 1/5 km

fn feature_vector(state: &StateFeatures, action: &ActionFeatures) -> Matrix {
    Matrix::row_vector(&[
        state.remaining_workers as f64 * WORKER_SCALE,
        state.remaining_tasks as f64 * TASK_SCALE,
        state.mean_reachable * 0.1,
        action.sequence_len as f64 * 0.25,
        action.travel_time * TIME_SCALE,
        action.travel_distance * DIST_SCALE,
        action.remaining_window * TIME_SCALE,
    ])
}

/// Width of the feature vector fed to the network.
pub const FEATURE_DIM: usize = 7;

/// The learned task value function: a two-layer MLP regressor.
pub struct TaskValueFunction {
    hidden: Dense,
    output: Dense,
}

impl TaskValueFunction {
    /// Creates an untrained TVF with the given hidden width.
    pub fn new(hidden_width: usize, seed: u64) -> TaskValueFunction {
        let mut rng = StdRng::seed_from_u64(seed);
        TaskValueFunction {
            hidden: Dense::new(FEATURE_DIM, hidden_width, &mut rng),
            output: Dense::new(hidden_width, 1, &mut rng),
        }
    }

    fn forward(&self, features: &Matrix) -> Var {
        let x = Var::constant(features.clone());
        let h = self.hidden.forward(&x).relu();
        self.output.forward(&h)
    }

    /// Predicted value `TVF(s_t, a_t)` of one state-action pair.
    pub fn value(&self, state: &StateFeatures, action: &ActionFeatures) -> f64 {
        self.forward(&feature_vector(state, action))
            .value()
            .get(0, 0)
    }

    /// Takes a thread-safe snapshot of the trained weights for use by the
    /// guided search (see [`TvfInference`]).
    pub fn inference(&self) -> TvfInference {
        TvfInference {
            hidden_w: self.hidden.w.value(),
            hidden_b: self.hidden.b.value(),
            output_w: self.output.w.value(),
            output_b: self.output.b.value(),
        }
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.hidden.parameters();
        p.extend(self.output.parameters());
        p
    }

    /// Trains the TVF on `(state, action, opt)` samples with the squared loss
    /// of Eq. 12, drawing mini-batches uniformly at random from the sample
    /// store (experience replay). Returns the mean loss of the final epoch.
    pub fn train(
        &mut self,
        samples: &[(StateFeatures, ActionFeatures, f64)],
        epochs: usize,
        batch_size: usize,
        learning_rate: f64,
        seed: u64,
    ) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut optimizer = Adam::new(learning_rate, self.parameters());
        let batch = batch_size.max(1).min(samples.len());
        let mut final_loss = 0.0;
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            let steps = (samples.len() / batch).max(1);
            for _ in 0..steps {
                // Assemble a random mini-batch.
                let mut x = Matrix::zeros(batch, FEATURE_DIM);
                let mut y = Matrix::zeros(batch, 1);
                for row in 0..batch {
                    let (s, a, opt) = samples[rng.gen_range(0..samples.len())];
                    let f = feature_vector(&s, &a);
                    x.row_mut(row).copy_from_slice(f.row(0));
                    y.set(row, 0, opt);
                }
                optimizer.zero_grad();
                let input = Var::constant(x);
                let pred = self.output.forward(&self.hidden.forward(&input).relu());
                let loss = pred.mse_loss(&y);
                epoch_loss += loss.value().get(0, 0);
                loss.backward();
                optimizer.step();
            }
            final_loss = epoch_loss / steps as f64;
        }
        final_loss
    }
}

/// An immutable, autograd-free snapshot of a trained [`TaskValueFunction`].
///
/// The autograd [`Var`] handles inside the TVF are `Rc`-based and therefore
/// neither `Send` nor `Sync`; the partitioned planner fans the guided search
/// out across a thread pool, so inference runs on this plain-`Matrix` copy of
/// the weights instead. The forward pass applies exactly the same `Matrix`
/// operations in exactly the same order as [`TaskValueFunction::value`], so
/// the two produce bit-identical values (pinned by a test below) and swapping
/// one for the other can never change a planning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TvfInference {
    hidden_w: Matrix,
    hidden_b: Matrix,
    output_w: Matrix,
    output_b: Matrix,
}

impl TvfInference {
    /// Predicted value `TVF(s_t, a_t)` of one state-action pair.
    pub fn value(&self, state: &StateFeatures, action: &ActionFeatures) -> f64 {
        let x = feature_vector(state, action);
        let h = x
            .matmul(&self.hidden_w)
            .add_row_broadcast(&self.hidden_b)
            .map(|v| v.max(0.0));
        h.matmul(&self.output_w)
            .add_row_broadcast(&self.output_b)
            .get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, Task, TaskId, TravelModel, WorkerId};

    fn sample_state(w: usize, t: usize) -> StateFeatures {
        StateFeatures {
            remaining_workers: w,
            remaining_tasks: t,
            mean_reachable: 2.0,
        }
    }

    fn sample_action(len: usize) -> ActionFeatures {
        ActionFeatures {
            sequence_len: len,
            travel_time: 30.0 * len as f64,
            travel_distance: 0.3 * len as f64,
            remaining_window: 1800.0,
        }
    }

    #[test]
    fn action_features_are_computed_from_the_sequence() {
        let travel = TravelModel::euclidean(1.0);
        let mut tasks = TaskStore::new();
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(2.0, 0.0),
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(4.0, 0.0),
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        let worker = Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            10.0,
            Timestamp(0.0),
            Timestamp(50.0),
        );
        let seq = TaskSequence::from_ids([TaskId(0), TaskId(1)]);
        let f = ActionFeatures::compute(&worker, &seq, &tasks, &travel, Timestamp(0.0));
        assert_eq!(f.sequence_len, 2);
        assert!((f.travel_time - 4.0).abs() < 1e-9);
        assert!((f.travel_distance - 4.0).abs() < 1e-9);
        assert!((f.remaining_window - 50.0).abs() < 1e-9);
    }

    #[test]
    fn untrained_tvf_produces_finite_values() {
        let tvf = TaskValueFunction::new(8, 0);
        let v = tvf.value(&sample_state(5, 20), &sample_action(2));
        assert!(v.is_finite());
    }

    #[test]
    fn inference_snapshot_matches_the_autograd_forward_pass_exactly() {
        let mut tvf = TaskValueFunction::new(12, 3);
        // Train a little so the weights are not at their initial values.
        let samples: Vec<_> = (1..5usize)
            .map(|len| (sample_state(len, 3 * len), sample_action(len), len as f64))
            .collect();
        tvf.train(&samples, 20, 4, 0.01, 3);
        let frozen = tvf.inference();
        for w in 0..6usize {
            for len in 0..4usize {
                let s = sample_state(w, 2 * w + 1);
                let a = sample_action(len);
                // Bit-identical, not just close: the guided search must make
                // the same decisions whichever representation it consults.
                assert_eq!(tvf.value(&s, &a), frozen.value(&s, &a));
            }
        }
    }

    #[test]
    fn training_regresses_towards_the_targets() {
        // Synthetic rule: opt = 2 * sequence_len. The TVF must learn to rank
        // longer sequences higher.
        let mut samples = Vec::new();
        for len in 0..4usize {
            for w in 1..6usize {
                samples.push((
                    sample_state(w, 10 * w),
                    sample_action(len),
                    2.0 * len as f64,
                ));
            }
        }
        let mut tvf = TaskValueFunction::new(16, 1);
        let loss = tvf.train(&samples, 200, 8, 0.01, 7);
        assert!(loss < 0.5, "TVF regression did not converge: loss={loss}");
        let short = tvf.value(&sample_state(3, 30), &sample_action(1));
        let long = tvf.value(&sample_state(3, 30), &sample_action(3));
        assert!(
            long > short,
            "trained TVF must rank longer sequences higher: short={short}, long={long}"
        );
    }

    #[test]
    fn training_on_empty_samples_is_a_noop() {
        let mut tvf = TaskValueFunction::new(4, 0);
        assert_eq!(tvf.train(&[], 10, 4, 0.01, 0), 0.0);
    }

    #[test]
    fn time_scale_normalises_ten_minutes_to_one() {
        // Guard against accidental unit changes in the feature scales.
        let d = datawa_core::Duration::from_mins(10.0);
        assert!((d.seconds() * TIME_SCALE - 1.0).abs() < 1e-12);
    }
}
