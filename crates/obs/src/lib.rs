//! # datawa-obs — zero-overhead observability for the DATA-WA engine
//!
//! A lock-light metrics layer the rest of the workspace threads through its
//! hot paths: atomic [`Counter`]s and [`Gauge`]s (with high-water marks),
//! log-bucketed latency [`Histogram`]s (p50/p95/p99/max with ≤ 12.5 %
//! relative error, mergeable across threads and shards), a scoped
//! [`SpanTimer`], and a [`MetricsSnapshot`] that renders to JSON through the
//! crate's own [`JsonValue`] model (the vendored serde is a marker stub, so
//! serialization is hand-rolled here).
//!
//! ## Zero overhead when nobody is watching
//!
//! Everything hangs off a [`MetricsRegistry`] that is either *attached* or
//! *detached*. A detached registry hands out inert handles: `inc`, `set` and
//! `record` reduce to a branch on a `None`, and [`Histogram::span`] never
//! reads the clock. Instrumented code therefore keeps its handles
//! unconditionally, and the workspace equivalence tests pin that attaching a
//! registry does not change assignment output bitwise.
//!
//! The default wiring follows the `DATAWA_THREADS` precedent:
//! [`MetricsRegistry::from_env`] attaches when `DATAWA_OBS=on|1|true` and
//! detaches otherwise, and `AdaptiveRunner::new` calls it, so exporting
//! `DATAWA_OBS=on` lights up the whole stack with no code changes.
//!
//! ## Pattern
//!
//! ```
//! use datawa_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new(); // or ::from_env() / ::detached()
//! let replans = registry.counter("assign.planning_calls");
//! let latency = registry.histogram("assign.replan_seconds");
//! {
//!     let _span = latency.span(); // records elapsed ns on drop
//!     replans.inc();
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["assign.planning_calls"], 1);
//! let text = snapshot.to_json(); // deterministic key order
//! assert!(datawa_obs::MetricsSnapshot::from_json(&text).is_ok());
//! ```
//!
//! Registration (`counter`/`gauge`/`histogram`) locks a name table and is a
//! cold-path operation: resolve handles once at construction and keep them.
//! Handles are `Arc`s over atomics — clones for the same name share storage,
//! which is how per-shard sessions and worker threads aggregate without
//! locks.
//!
//! Names are dot-namespaced by owning layer: `assign.*` (planner),
//! `stream.*` (engine), `service.*` (dispatch service), `net.*`
//! (transport — including the fault-tolerance family `net.pump_recoveries`,
//! `net.tenant.<name>.recoveries` and the `net.recovery_seconds` journal
//! replay histogram, exercised by the chaos suite). The registry itself
//! imposes no schema; the convention keeps snapshots diffable across
//! layers.
//!
//! The [`CountingAlloc`] global-allocator shim (installed only by binaries
//! that opt in, e.g. the `soak` harness in `datawa-bench`) adds live-heap
//! high-water tracking for `BENCH_*.json` memory columns.

mod alloc;
mod hist;
mod json;
mod registry;

pub use alloc::CountingAlloc;
pub use hist::{Histogram, HistogramSummary, SpanTimer, BUCKETS, SUB};
pub use json::JsonValue;
pub use registry::{
    parse_obs_toggle, Counter, Gauge, GaugeSnapshot, MetricsRegistry, MetricsSnapshot, OBS_ENV,
};
