//! Property tests over the wire codec: every frame the protocol can express
//! survives an encode → decode round trip unchanged, and the decoder is
//! *total* — arbitrary bytes either decode to some frame or return a typed
//! [`WireError`], never a panic or an allocation stampede.

use datawa_core::{
    AvailabilityWindow, Location, Task, TaskId, Timestamp, Worker, WorkerId, WorkerMode,
};
use datawa_net::{ErrorCode, Frame, RetryReason, MAX_FRAME_LEN};
use proptest::prelude::*;

/// A finite, codec-exact timestamp. The wire carries raw `f64` bits, so any
/// finite value round-trips bit-for-bit; NaN is rejected by the decoder and
/// excluded here.
fn timestamp() -> impl Strategy<Value = Timestamp> {
    (-1.0e6f64..1.0e6).prop_map(Timestamp)
}

/// Short printable-ASCII strings for tenant names, tokens and messages.
fn short_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..62, 0..12).prop_map(|picks| {
        picks
            .into_iter()
            .map(|p| {
                let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789-ABCDEFGHIJKLMNOPQRSTUVWX";
                alphabet[p % alphabet.len()] as char
            })
            .collect()
    })
}

fn task() -> impl Strategy<Value = Task> {
    (
        0usize..10_000,
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.0f64..1.0e5,
        0.0f64..1.0e5,
        any::<bool>(),
    )
        .prop_map(|(id, x, y, publication, extra, unbounded)| Task {
            id: TaskId(id as u32),
            location: Location::new(x, y),
            publication: Timestamp(publication),
            // Exercise the +inf deadline encoding alongside finite ones.
            expiration: if unbounded {
                Timestamp(f64::INFINITY)
            } else {
                Timestamp(publication + extra)
            },
        })
}

fn worker() -> impl Strategy<Value = Worker> {
    (
        0usize..10_000,
        (-100.0f64..100.0, -100.0f64..100.0),
        0.1f64..50.0,
        0.0f64..1.0e5,
        0.0f64..1.0e5,
        any::<bool>(),
    )
        .prop_map(|(id, (x, y), reach, on, span, online)| Worker {
            id: WorkerId(id as u32),
            location: Location::new(x, y),
            reachable_distance: reach,
            window: AvailabilityWindow {
                on: Timestamp(on),
                off: Timestamp(on + span),
            },
            mode: if online {
                WorkerMode::Online
            } else {
                WorkerMode::Offline
            },
        })
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof!(
        (short_string(), short_string()).prop_map(|(tenant, token)| Frame::Hello {
            version: datawa_net::PROTOCOL_VERSION,
            tenant,
            token,
        }),
        (timestamp(), task()).prop_map(|(time, task)| Frame::TaskArrival { time, task }),
        (timestamp(), worker()).prop_map(|(time, worker)| Frame::WorkerOnline { time, worker }),
        (timestamp(), 0usize..10_000).prop_map(|(time, id)| Frame::TaskExpiration {
            time,
            task: TaskId(id as u32),
        }),
        (timestamp(), 0usize..10_000).prop_map(|(time, id)| Frame::WorkerOffline {
            time,
            worker: WorkerId(id as u32),
        }),
        timestamp().prop_map(|time| Frame::ReplanTick { time }),
        timestamp().prop_map(|time| Frame::AdvanceTo { time }),
        Just(Frame::Close),
        Just(Frame::HelloAck {
            version: datawa_net::PROTOCOL_VERSION,
        }),
        (timestamp(), 0usize..10_000, 0usize..10_000, timestamp()).prop_map(
            |(at, worker, task, eta)| Frame::Dispatch {
                at,
                worker: WorkerId(worker as u32),
                task: TaskId(task as u32),
                eta,
            }
        ),
        (timestamp(), 0usize..10_000).prop_map(|(at, id)| Frame::TaskExpired {
            at,
            task: TaskId(id as u32),
        }),
        (timestamp(), 0usize..10_000).prop_map(|(at, id)| Frame::OfflineNotice {
            at,
            worker: WorkerId(id as u32),
        }),
        (0.001f64..60.0, 0usize..3).prop_map(|(seconds, pick)| Frame::RetryAfter {
            seconds,
            reason: [
                RetryReason::TenantQuota,
                RetryReason::GlobalOverload,
                RetryReason::ConnectionCap,
            ][pick],
        }),
        (0usize..6, short_string()).prop_map(|(pick, message)| Frame::Error {
            code: [
                ErrorCode::BadHello,
                ErrorCode::VersionMismatch,
                ErrorCode::AuthFailed,
                ErrorCode::TenantBusy,
                ErrorCode::Protocol,
                ErrorCode::BadEvent,
            ][pick],
            message,
        }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(assigned, decisions, events, planning_calls)| Frame::Closed {
                assigned,
                decisions,
                events,
                planning_calls,
            }
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_frame_round_trips(frame in frame()) {
        let bytes = frame.encode();
        prop_assert!(
            !bytes.is_empty() && bytes.len() <= MAX_FRAME_LEN,
            "encoded frame must fit the length limit: {} bytes",
            bytes.len()
        );
        let decoded = Frame::decode(&bytes).expect("codec-produced bytes decode");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        payload in prop::collection::vec(0usize..256, 0..64)
    ) {
        let bytes: Vec<u8> = payload.into_iter().map(|b| b as u8).collect();
        // Total decoding: a typed result either way, no panics.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn truncations_of_valid_frames_are_errors_not_panics(
        frame in frame(),
        cut in 0.0f64..1.0,
    ) {
        let bytes = frame.encode();
        let keep = ((bytes.len() as f64) * cut) as usize;
        if keep < bytes.len() {
            prop_assert!(
                Frame::decode(&bytes[..keep]).is_err(),
                "a strict prefix of a frame must not decode"
            );
        }
    }

    #[test]
    fn corrupted_type_bytes_are_errors_not_panics(
        frame in frame(),
        rogue in 0usize..256,
    ) {
        let mut bytes = frame.encode();
        bytes[0] = rogue as u8;
        // Either the rogue byte names another type whose layout happens to
        // match, or decode fails — both are fine, panicking is not.
        let _ = Frame::decode(&bytes);
    }
}
