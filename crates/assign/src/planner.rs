//! Task Planning Assignment (TPA, Algorithm 4).
//!
//! The planner wires the whole §IV pipeline together for one planning
//! instant: reachable tasks → candidate sequences → worker dependency graph →
//! graph partition and recursive tree construction → exact or TVF-guided
//! depth-first search, per connected component.

use crate::config::AssignConfig;
use crate::reachable::{build_worker_dependency_graph, reachable_tasks};
use crate::search::{DfSearch, SearchSample};
use crate::sequences::{generate_sequences, SequenceSet};
use crate::tvf::TaskValueFunction;
use datawa_core::{Assignment, TaskId, TaskStore, Timestamp, WorkerId, WorkerStore};
use datawa_graph::{ClusterTree, TreeNode, UnGraph};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Diagnostics of one planning call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanningReport {
    /// Wall-clock planning time, in seconds.
    pub elapsed_seconds: f64,
    /// Number of workers that took part in planning.
    pub workers_considered: usize,
    /// Number of candidate tasks (current + predicted) that took part.
    pub tasks_considered: usize,
    /// Number of cluster-tree nodes built across all components.
    pub tree_nodes: usize,
    /// Average reachable tasks per worker.
    pub mean_reachable: f64,
}

/// How the planner searches each cluster tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Greedy baseline (no dependency separation, no search).
    Greedy,
    /// Exact DFSearch (Algorithm 1).
    Exact,
    /// TVF-guided search (Algorithm 2); requires a trained TVF.
    Guided,
}

/// The TPA planner.
pub struct Planner {
    /// Shared configuration.
    pub config: AssignConfig,
    /// Search mode.
    pub mode: SearchMode,
    /// Trained task value function (required for [`SearchMode::Guided`]).
    pub tvf: Option<TaskValueFunction>,
}

impl Planner {
    /// Creates a planner with the given mode.
    pub fn new(config: AssignConfig, mode: SearchMode) -> Planner {
        Planner {
            config,
            mode,
            tvf: None,
        }
    }

    /// Attaches a trained TVF (used by [`SearchMode::Guided`]).
    pub fn with_tvf(mut self, tvf: TaskValueFunction) -> Planner {
        self.tvf = Some(tvf);
        self
    }

    /// Plans task sequences for `worker_ids` over `candidate_tasks` at `now`
    /// (Algorithm 4), returning the assignment and planning diagnostics.
    pub fn plan(
        &self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
    ) -> (Assignment, PlanningReport) {
        let start = Instant::now();
        let mut report = PlanningReport {
            workers_considered: worker_ids.len(),
            tasks_considered: candidate_tasks.len(),
            ..PlanningReport::default()
        };
        if worker_ids.is_empty() || candidate_tasks.is_empty() {
            report.elapsed_seconds = start.elapsed().as_secs_f64();
            return (Assignment::new(), report);
        }
        // Lines 2–5: reachable tasks and candidate sequences per worker.
        let reachable = reachable_tasks(
            worker_ids,
            candidate_tasks,
            workers,
            tasks,
            &self.config,
            now,
        );
        report.mean_reachable = reachable.mean_reachable();
        let mut sequences: HashMap<WorkerId, SequenceSet> =
            HashMap::with_capacity(worker_ids.len());
        for &w in worker_ids {
            sequences.insert(
                w,
                generate_sequences(workers.get(w), reachable.of(w), tasks, &self.config, now),
            );
        }
        let search = DfSearch::new(workers, tasks, &self.config, now, &sequences, &reachable);
        let mut available: HashSet<TaskId> = candidate_tasks.iter().copied().collect();
        let assignment = match self.mode {
            SearchMode::Greedy => search.greedy(worker_ids, &mut available),
            SearchMode::Exact | SearchMode::Guided => {
                // Line 6: worker dependency graph; lines 7–10: per component,
                // partition, build the tree, and search it.
                let (graph, mapping) = build_worker_dependency_graph(worker_ids, &reachable);
                let tree = self.build_tree(&graph);
                report.tree_nodes = tree.len();
                match self.mode {
                    SearchMode::Exact => search.exact(&tree, &mapping, &mut available, None),
                    SearchMode::Guided => {
                        let tvf = self
                            .tvf
                            .as_ref()
                            .expect("SearchMode::Guided requires a trained TVF");
                        search.guided(&tree, &mapping, &mut available, tvf)
                    }
                    SearchMode::Greedy => unreachable!(),
                }
            }
        };
        report.elapsed_seconds = start.elapsed().as_secs_f64();
        (assignment, report)
    }

    /// Runs the exact search while collecting `(state, action, opt)` samples
    /// for TVF training (the data-gathering phase of §IV-B).
    pub fn collect_training_samples(
        &self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
    ) -> Vec<SearchSample> {
        if worker_ids.is_empty() || candidate_tasks.is_empty() {
            return Vec::new();
        }
        let reachable = reachable_tasks(
            worker_ids,
            candidate_tasks,
            workers,
            tasks,
            &self.config,
            now,
        );
        let mut sequences: HashMap<WorkerId, SequenceSet> =
            HashMap::with_capacity(worker_ids.len());
        for &w in worker_ids {
            sequences.insert(
                w,
                generate_sequences(workers.get(w), reachable.of(w), tasks, &self.config, now),
            );
        }
        let search = DfSearch::new(workers, tasks, &self.config, now, &sequences, &reachable);
        let (graph, mapping) = build_worker_dependency_graph(worker_ids, &reachable);
        let tree = self.build_tree(&graph);
        let mut available: HashSet<TaskId> = candidate_tasks.iter().copied().collect();
        let mut samples = Vec::new();
        let _ = search.exact(&tree, &mapping, &mut available, Some(&mut samples));
        samples
    }

    /// Builds the cluster tree, honouring the ablation switch: with dependency
    /// separation disabled, every connected component becomes a single flat
    /// tree node (no search-space reduction).
    fn build_tree(&self, graph: &UnGraph) -> ClusterTree {
        if self.config.use_dependency_separation {
            ClusterTree::build(graph)
        } else {
            let mut tree = ClusterTree::default();
            for component in graph.connected_components() {
                let index = tree.nodes.len();
                tree.nodes.push(TreeNode {
                    members: component,
                    children: Vec::new(),
                });
                tree.roots.push(index);
            }
            tree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, Task, Worker};

    fn scenario(n_workers: usize, n_tasks: usize) -> (WorkerStore, TaskStore) {
        let mut workers = WorkerStore::new();
        for i in 0..n_workers {
            workers.insert(Worker::new(
                WorkerId(0),
                Location::new(i as f64 * 2.0, 0.0),
                5.0,
                Timestamp(0.0),
                Timestamp(200.0),
            ));
        }
        let mut tasks = TaskStore::new();
        for j in 0..n_tasks {
            tasks.insert(Task::new(
                TaskId(0),
                Location::new(j as f64 * 1.0, 1.0),
                Timestamp(0.0),
                Timestamp(150.0),
            ));
        }
        (workers, tasks)
    }

    #[test]
    fn exact_planner_produces_a_feasible_assignment() {
        let (workers, tasks) = scenario(4, 8);
        let planner = Planner::new(AssignConfig::unit_speed(), SearchMode::Exact);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let (assignment, report) = planner.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(assignment.assigned_count() > 0);
        assert!(assignment
            .validate(&workers, &tasks, &planner.config.travel, Timestamp(0.0))
            .is_empty());
        assert!(report.elapsed_seconds >= 0.0);
        assert!(report.tree_nodes >= 1);
        assert_eq!(report.workers_considered, 4);
    }

    #[test]
    fn exact_assigns_at_least_as_many_as_greedy() {
        let (workers, tasks) = scenario(5, 10);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let exact = Planner::new(AssignConfig::unit_speed(), SearchMode::Exact);
        let greedy = Planner::new(AssignConfig::unit_speed(), SearchMode::Greedy);
        let (a_exact, _) = exact.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        let (a_greedy, _) = greedy.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(a_exact.assigned_count() >= a_greedy.assigned_count());
    }

    #[test]
    fn guided_planner_matches_feasibility_with_a_trained_tvf() {
        let (workers, tasks) = scenario(4, 8);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let collector = Planner::new(AssignConfig::unit_speed(), SearchMode::Exact);
        let samples =
            collector.collect_training_samples(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(!samples.is_empty());
        let mut tvf = TaskValueFunction::new(16, 0);
        let tuples: Vec<_> = samples.iter().map(|s| (s.state, s.action, s.opt)).collect();
        tvf.train(&tuples, 60, 16, 0.01, 0);
        let guided = Planner::new(AssignConfig::unit_speed(), SearchMode::Guided).with_tvf(tvf);
        let (assignment, _) = guided.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(assignment
            .validate(&workers, &tasks, &guided.config.travel, Timestamp(0.0))
            .is_empty());
        assert!(assignment.assigned_count() > 0);
    }

    #[test]
    fn disabling_dependency_separation_still_plans_feasibly() {
        let (workers, tasks) = scenario(4, 6);
        let mut config = AssignConfig::unit_speed();
        config.use_dependency_separation = false;
        let planner = Planner::new(config, SearchMode::Exact);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let (assignment, report) = planner.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(assignment
            .validate(&workers, &tasks, &config.travel, Timestamp(0.0))
            .is_empty());
        // One flat node per connected component.
        assert!(report.tree_nodes >= 1);
    }

    #[test]
    fn empty_inputs_plan_nothing() {
        let (workers, tasks) = scenario(2, 2);
        let planner = Planner::new(AssignConfig::unit_speed(), SearchMode::Exact);
        let (a, r) = planner.plan(&[], &[], &workers, &tasks, Timestamp(0.0));
        assert!(a.is_empty());
        assert_eq!(r.tasks_considered, 0);
        assert!(planner
            .collect_training_samples(&[], &[], &workers, &tasks, Timestamp(0.0))
            .is_empty());
    }
}
