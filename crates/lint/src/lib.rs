//! # datawa-lint — determinism & concurrency static analysis for DATA-WA
//!
//! Every layer of this workspace stakes its correctness on one invariant:
//! planning output is bitwise identical across thread counts, shard layouts,
//! cache on/off and metrics on/off. The runtime equivalence suites defend
//! that invariant only for the seeds they run; this crate defends it at the
//! source level by scanning the workspace's Rust files for the hazard
//! classes that historically break it:
//!
//! | rule | catches |
//! |------|---------|
//! | `unordered-iteration` | iterating `HashMap`/`HashSet` in deterministic crates without an immediate sort or order-insensitive sink |
//! | `wall-clock-in-hot-path` | `Instant::now`/`SystemTime` outside `obs`, `bench` and `service` |
//! | `stray-env-read` | `std::env::var` outside `datawa_core::env_config` |
//! | `relaxed-atomic-audit` | `Ordering::Relaxed` outside the audited allowlist |
//! | `unchecked-float-ordering` | `partial_cmp` call sites (NaN-unsafe sort keys) in planning code |
//! | `unwrap-in-hot-path` | `unwrap`/`expect` in non-test `assign`/`stream` code |
//! | `blocking-sleep` | `thread::sleep` in deterministic crates (observe-only warning) |
//!
//! The full catalogue — what each rule threatens, why, and how to suppress
//! it with a rationale — lives in the top-level `LINTS.md`.
//!
//! ## Scanner, not a compiler plugin
//!
//! The scanner is a purpose-built line/token pass (comment- and
//! string-literal-stripping, `#[cfg(test)]`/test-file exclusion, per-file
//! identifier tracking for hash-typed bindings). It is deliberately
//! heuristic: cheap enough to run on every CI job with zero dependencies,
//! precise enough that every current finding is a real site to either fix
//! or document. False positives are handled by inline suppression:
//!
//! ```text
//! // datawa-lint: allow(unordered-iteration) -- accumulation is commutative
//! ```
//!
//! A suppression without a `-- reason` is itself a finding
//! (`missing-suppression-reason`), so the audit trail stays honest.
//!
//! ## Running
//!
//! ```text
//! cargo run -p datawa-lint --release -- --workspace
//! cargo run -p datawa-lint --release -- --workspace --format json
//! ```
//!
//! Exits `0` on a clean tree, `1` on any unsuppressed *error* finding, `2`
//! on usage or I/O errors. Rules can land observe-only as
//! [`Severity::Warning`]: their findings are reported (and carried in the
//! JSON `severity` field) but never affect the exit code, so a new rule can
//! bake against the tree before being promoted to `Error` in
//! [`rules::severity_of`]. CI runs the linter in the `check` job next to
//! fmt and clippy, and a dedicated `lint` job uploads the JSON report as an
//! artifact.

pub mod diag;
pub mod engine;
pub mod rules;
pub mod source;

pub use diag::{Finding, Severity};
pub use engine::{run, Options, Report};
pub use source::{FileKind, SourceFile};
