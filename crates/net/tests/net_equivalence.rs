//! The multi-tenant equivalence pin: a workload streamed over a TCP
//! loopback connection produces decisions *bitwise-identical* to the same
//! workload driven through `Session::ingest` directly — for Greedy and
//! DATA-WA, on two scenario generators, and with several tenants connected
//! concurrently. The transport is a front-end, not a fork of the engine.

use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast, TaskValueFunction};
use datawa_net::{NetClient, NetConfig, NetServer};
use datawa_service::{IngestSource, SourcePoll, WorkloadSource};
use datawa_stream::{
    CollectingSink, Decision, EngineConfig, HotspotDrift, ScenarioGenerator, ScenarioSpec, Session,
    UniformBaseline, Workload,
};

fn spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::small()
        .with_tasks(120)
        .with_workers(10)
        .with_seed(seed)
}

fn workloads() -> Vec<(&'static str, Workload)> {
    vec![
        ("uniform-baseline", UniformBaseline::new(spec(7)).generate()),
        ("hotspot-drift", HotspotDrift::new(spec(11)).generate()),
    ]
}

/// The reference decision stream: the workload ingested into a session
/// directly (engine arrival order), then closed.
fn direct_decisions(policy: PolicyKind, workload: &Workload) -> Vec<Decision> {
    let mut runner = AdaptiveRunner::new(AssignConfig::default(), policy);
    if policy == PolicyKind::DataWa {
        // The same (hidden, seed) pair as NetConfig's default, so the direct
        // run and the server's per-tenant pump share identical TVF weights.
        runner = runner.with_tvf(TaskValueFunction::new(8, 0));
    }
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&runner, &mut forecast, EngineConfig::default());
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        session.ingest(time, event).expect("replay order is valid");
    }
    let mut sink = CollectingSink::new();
    let _ = session.close(&mut sink);
    sink.into_decisions()
}

/// The same workload pushed through the wire by a loopback client.
fn loopback_decisions(client: &mut NetClient, workload: &Workload) {
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event).expect("send event frame");
    }
}

#[test]
fn tcp_loopback_matches_direct_session_per_policy_and_generator() {
    for policy in [PolicyKind::Greedy, PolicyKind::DataWa] {
        let mut server = NetServer::bind(NetConfig {
            policy,
            ..NetConfig::default()
        })
        .expect("bind loopback");
        for (name, workload) in workloads() {
            let expected = direct_decisions(policy, &workload);
            let mut client = NetClient::connect(server.addr(), name, "").expect("handshake");
            loopback_decisions(&mut client, &workload);
            let outcome = client.close();
            assert!(
                outcome.errors.is_empty(),
                "{policy:?}/{name}: {:?}",
                outcome.errors
            );
            assert!(
                outcome.retry_after.is_empty(),
                "{policy:?}/{name} was throttled"
            );
            assert_eq!(
                outcome.decisions, expected,
                "{policy:?}/{name}: wire decisions diverged from direct ingest"
            );
            let closed = outcome.closed.expect("orderly close");
            assert_eq!(closed.decisions as usize, expected.len());
            assert!(closed.assigned > 0, "{policy:?}/{name} assigned nothing");
        }
        server.shutdown();
    }
}

#[test]
fn concurrent_tenants_each_match_their_own_direct_run() {
    let server = NetServer::bind(NetConfig {
        policy: PolicyKind::DataWa,
        ..NetConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    let tenants: Vec<(String, Workload)> = (0..4)
        .map(|i| {
            (
                format!("tenant-{i}"),
                UniformBaseline::new(spec(100 + i)).generate(),
            )
        })
        .collect();

    let handles: Vec<_> = tenants
        .iter()
        .cloned()
        .map(|(name, workload)| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr, &name, "").expect("handshake");
                loopback_decisions(&mut client, &workload);
                (name, workload, client.close())
            })
        })
        .collect();

    for handle in handles {
        let (name, workload, outcome) = handle.join().expect("tenant thread");
        let expected = direct_decisions(PolicyKind::DataWa, &workload);
        assert_eq!(
            outcome.decisions, expected,
            "{name}: concurrent tenants must not perturb each other's sessions"
        );
    }

    let snapshot = server.metrics().snapshot();
    for i in 0..4 {
        let decisions = snapshot
            .counters
            .get(&format!("net.tenant.tenant-{i}.decisions"))
            .copied()
            .unwrap_or(0);
        assert!(decisions > 0, "tenant-{i} streamed no decisions");
    }
}

#[test]
fn duplicate_tenant_names_are_refused_without_disturbing_the_owner() {
    let server = NetServer::bind(NetConfig::default()).expect("bind loopback");
    let workload = UniformBaseline::new(spec(3)).generate();
    let expected = direct_decisions(PolicyKind::Greedy, &workload);

    let mut owner = NetClient::connect(server.addr(), "acme", "").expect("handshake");
    match NetClient::connect(server.addr(), "acme", "") {
        Err(datawa_net::ClientError::Refused { code, .. }) => {
            assert_eq!(code, datawa_net::ErrorCode::TenantBusy);
        }
        other => panic!("duplicate tenant accepted: {other:?}"),
    }
    loopback_decisions(&mut owner, &workload);
    let outcome = owner.close();
    assert_eq!(outcome.decisions, expected, "owner session was disturbed");
}
