//! Property tests for the histogram (ISSUE 6 satellite): percentile
//! correctness against a sorted-vector oracle, cross-thread merge
//! associativity, and snapshot JSON round-trips.

use std::sync::Arc;
use std::thread;

use datawa_obs::{Histogram, MetricsRegistry, MetricsSnapshot, SUB};
use proptest::prelude::*;

/// The exact quantile an ideal implementation would report: the rank-⌈pN⌉
/// order statistic of the recorded values.
fn oracle_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Strategy for a recorded value: mixes small exact-bucket values, mid-range
/// latencies and large outliers so every bucket regime is exercised. Values
/// stay below 2^44 so even a whole vector's sum is far inside the 2^53
/// integer-exact range the JSON number model guarantees.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        (0usize..8).prop_map(|v| v as u64),
        (8usize..100_000).prop_map(|v| v as u64),
        (0usize..1 << 30).prop_map(|v| (v as u64) << 14),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn percentiles_match_sorted_vector_oracle_within_bucket_error(
        values in prop::collection::vec(value_strategy(), 1..400),
        p in 0.01f64..1.0,
    ) {
        let h = Histogram::standalone();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [p, 0.5, 0.95, 0.99, 1.0] {
            let truth = oracle_percentile(&sorted, q);
            let est = h.percentile(q);
            // Estimates report the bucket's upper bound clamped to the real
            // max: never below the truth, and within 1/SUB relative error
            // above it (exact for small values).
            prop_assert!(est >= truth, "p{q}: est {est} < oracle {truth}");
            let slack = truth / SUB;
            prop_assert!(
                est <= truth.saturating_add(slack).max(truth),
                "p{q}: est {est} > oracle {truth} + {slack}"
            );
        }
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.count(), sorted.len() as u64);
    }

    #[test]
    fn merge_is_associative_and_order_independent(
        a in prop::collection::vec(value_strategy(), 0..80),
        b in prop::collection::vec(value_strategy(), 0..80),
        c in prop::collection::vec(value_strategy(), 0..80),
    ) {
        let fill = |vals: &[u64]| {
            let h = Histogram::standalone();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = fill(&a);
        left.merge_from(&fill(&b));
        left.merge_from(&fill(&c));
        // a ⊕ (b ⊕ c), merged in the opposite order
        let bc = fill(&c);
        bc.merge_from(&fill(&b));
        let right = fill(&a);
        right.merge_from(&bc);
        // ...and recording everything into one histogram directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = fill(&all);

        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(left.summary(), right.summary());
        prop_assert_eq!(left.summary(), direct.summary());
    }

    #[test]
    fn snapshot_round_trips_through_json(
        counter_vals in prop::collection::vec(0usize..1 << 30, 1..6),
        gauge_vals in prop::collection::vec(0usize..1 << 20, 1..6),
        hist_vals in prop::collection::vec(value_strategy(), 1..60),
        negate in any::<bool>(),
    ) {
        let reg = MetricsRegistry::new();
        for (i, &v) in counter_vals.iter().enumerate() {
            reg.counter(&format!("c.{i}")).add(v as u64);
        }
        for (i, &v) in gauge_vals.iter().enumerate() {
            let signed = if negate { -(v as i64) } else { v as i64 };
            reg.gauge(&format!("g.{i}")).set(signed);
            reg.gauge(&format!("g.{i}")).set(signed / 2);
        }
        let h = reg.histogram("h.lat");
        for &v in &hist_vals {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("parse rendered snapshot");
        prop_assert_eq!(&back, &snap);
        // Rendering is deterministic: a second round trip is byte-identical.
        prop_assert_eq!(back.to_json(), text);
    }
}

#[test]
fn cross_thread_recording_equals_single_thread_total() {
    // Four threads hammer clones of one registered histogram; the shared
    // buckets must account for every record, matching a serial reference.
    let reg = MetricsRegistry::new();
    let shared = reg.histogram("lat");
    let per_thread: u64 = 20_000;
    let threads = 4u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let h = shared.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    h.record(t * per_thread + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    let reference = Histogram::standalone();
    for v in 0..threads * per_thread {
        reference.record(v);
    }
    assert_eq!(shared.count(), threads * per_thread);
    assert_eq!(shared.bucket_counts(), reference.bucket_counts());
    assert_eq!(shared.summary(), reference.summary());
}

#[test]
fn per_thread_histograms_merge_into_the_registered_one() {
    // The shard pattern: each worker records into a standalone histogram and
    // merges it into the registry at the end.
    let reg = MetricsRegistry::new();
    let target = reg.histogram("merged");
    let locals: Vec<Arc<Histogram>> = (0..3).map(|_| Arc::new(Histogram::standalone())).collect();
    let handles: Vec<_> = locals
        .iter()
        .enumerate()
        .map(|(t, h)| {
            let h = Arc::clone(h);
            thread::spawn(move || {
                for i in 0..5_000u64 {
                    h.record((t as u64 + 1) * 1_000 + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    for local in &locals {
        target.merge_from(local);
    }
    assert_eq!(target.count(), 15_000);
    let summary = reg.snapshot().histograms["merged"];
    assert_eq!(summary.min, 1_000);
    assert!(summary.p99 >= summary.p50);
}
