//! Task multivariate time series (§III-A, Eq. 2).
//!
//! For every grid cell the history of task publications is discretised into
//! binary occurrence vectors: one vector covers `k` consecutive intervals of
//! length ΔT, and bit `j` is set when at least one task was published in the
//! cell during interval `j`. A prediction example consists of the `P` most
//! recent vectors of every cell (the history), the latest vector (the snapshot
//! `C^t` fed to the dependency learner) and the next vector (the target).

use datawa_core::{TaskStore, Timestamp};
use datawa_geo::UniformGrid;
use datawa_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Parameters of the series construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesSpec {
    /// Start of the observation horizon.
    pub t0: Timestamp,
    /// Interval length ΔT, in seconds (Table III sweeps 5–9 s).
    pub delta_t: f64,
    /// Number of ΔT intervals per vector (`k > 1`).
    pub k: usize,
    /// Number of history vectors per example (`P`).
    pub history_len: usize,
}

impl SeriesSpec {
    /// Creates a specification; `k` must be at least 2 (the paper requires a
    /// multivariate vector) and `history_len` at least 1.
    pub fn new(t0: Timestamp, delta_t: f64, k: usize, history_len: usize) -> SeriesSpec {
        assert!(delta_t > 0.0, "ΔT must be positive");
        assert!(k > 1, "k must be greater than 1 (multivariate vectors)");
        assert!(history_len >= 1, "history length must be at least 1");
        SeriesSpec {
            t0,
            delta_t,
            k,
            history_len,
        }
    }

    /// Span of one vector, `k · ΔT` seconds.
    #[inline]
    pub fn window_span(&self) -> f64 {
        self.k as f64 * self.delta_t
    }
}

/// One training/evaluation example.
#[derive(Debug, Clone)]
pub struct SeriesExample {
    /// Per-cell history matrices of shape `(P, k)`, indexed by cell.
    pub history: Vec<Matrix>,
    /// Snapshot `C^t`: the latest history vector of every cell, `(M, k)`.
    pub snapshot: Matrix,
    /// Target: the next occurrence vector of every cell, `(M, k)`.
    pub target: Matrix,
    /// Index of the first predicted window (for converting predictions back
    /// into absolute times).
    pub target_window: usize,
}

/// A full dataset of examples carved out of one task trace.
#[derive(Debug, Clone)]
pub struct SeriesDataset {
    /// Construction parameters.
    pub spec: SeriesSpec,
    /// Number of grid cells `M`.
    pub cells: usize,
    /// The examples, in chronological order of their target window.
    pub examples: Vec<SeriesExample>,
}

impl SeriesDataset {
    /// Builds the dataset from a task trace.
    ///
    /// Occurrence bits are derived from task *publication* times, as in Eq. 2.
    /// Examples are produced for every window index `p` such that both the `P`
    /// history windows and the target window fit in `[t0, horizon_end)`.
    pub fn build(
        tasks: &TaskStore,
        grid: &UniformGrid,
        spec: SeriesSpec,
        horizon_end: Timestamp,
    ) -> SeriesDataset {
        let cells = grid.cell_count();
        let span = spec.window_span();
        let total_seconds = (horizon_end - spec.t0).seconds();
        let total_windows = if total_seconds <= 0.0 {
            0
        } else {
            (total_seconds / span).floor() as usize
        };
        // occurrence[cell][window][bucket]
        let mut occurrence = vec![vec![vec![0.0_f64; spec.k]; total_windows]; cells];
        for task in tasks.iter() {
            let offset = (task.publication - spec.t0).seconds();
            if offset < 0.0 {
                continue;
            }
            let window = (offset / span).floor() as usize;
            if window >= total_windows {
                continue;
            }
            let within = offset - window as f64 * span;
            let bucket = ((within / spec.delta_t).floor() as usize).min(spec.k - 1);
            let cell = grid.cell_of(&task.location).index();
            occurrence[cell][window][bucket] = 1.0;
        }
        let mut examples = Vec::new();
        if total_windows > spec.history_len {
            for target_window in spec.history_len..total_windows {
                let start = target_window - spec.history_len;
                let mut history = Vec::with_capacity(cells);
                let mut snapshot = Matrix::zeros(cells, spec.k);
                let mut target = Matrix::zeros(cells, spec.k);
                for (cell, cell_occurrence) in occurrence.iter().enumerate().take(cells) {
                    let mut h = Matrix::zeros(spec.history_len, spec.k);
                    for (row, window) in (start..target_window).enumerate() {
                        for (j, &v) in cell_occurrence[window].iter().enumerate() {
                            h.set(row, j, v);
                        }
                    }
                    for (j, (&snap, &tgt)) in cell_occurrence[target_window - 1]
                        .iter()
                        .zip(&cell_occurrence[target_window])
                        .enumerate()
                        .take(spec.k)
                    {
                        snapshot.set(cell, j, snap);
                        target.set(cell, j, tgt);
                    }
                    history.push(h);
                }
                examples.push(SeriesExample {
                    history,
                    snapshot,
                    target,
                    target_window,
                });
            }
        }
        SeriesDataset {
            spec,
            cells,
            examples,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Chronological train/test split: the first `train_fraction` of examples
    /// train the model, the rest evaluate it (the paper uses 80 % / 20 %).
    pub fn split(&self, train_fraction: f64) -> (SeriesDataset, SeriesDataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let cut = ((self.examples.len() as f64) * train_fraction).round() as usize;
        let cut = cut.min(self.examples.len());
        (
            SeriesDataset {
                spec: self.spec,
                cells: self.cells,
                examples: self.examples[..cut].to_vec(),
            },
            SeriesDataset {
                spec: self.spec,
                cells: self.cells,
                examples: self.examples[cut..].to_vec(),
            },
        )
    }

    /// Absolute time interval covered by the target window of `example`.
    pub fn target_interval(&self, example: &SeriesExample) -> (Timestamp, Timestamp) {
        let span = self.spec.window_span();
        let start = self.spec.t0 + datawa_core::Duration(example.target_window as f64 * span);
        (start, start + datawa_core::Duration(span))
    }

    /// Fraction of positive bits in all targets (class balance diagnostic).
    pub fn positive_rate(&self) -> f64 {
        let mut pos = 0.0;
        let mut total = 0.0;
        for e in &self.examples {
            pos += e.target.sum();
            total += (e.target.rows() * e.target.cols()) as f64;
        }
        if total == 0.0 {
            0.0
        } else {
            pos / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{BoundingBox, Location};
    use datawa_geo::GridSpec;

    fn grid2x2() -> UniformGrid {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(2.0, 2.0));
        UniformGrid::new(GridSpec::new(area, 2, 2))
    }

    fn store_with(tasks: &[(f64, f64, f64)]) -> TaskStore {
        let mut s = TaskStore::new();
        for &(x, y, p) in tasks {
            s.insert_with_location(Location::new(x, y), Timestamp(p), Timestamp(p + 100.0));
        }
        s
    }

    #[test]
    fn occurrence_bits_match_eq2() {
        // ΔT = 1, k = 3, so each window spans 3 s. One task at t=0.5 in cell
        // (0,0), one at t=1.5 same cell, none in the 3rd bucket → <1,1,0>.
        let tasks = store_with(&[(0.5, 0.5, 0.5), (0.5, 0.5, 1.5), (0.5, 0.5, 4.0)]);
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, 3, 1);
        let ds = SeriesDataset::build(&tasks, &grid2x2(), spec, Timestamp(6.0));
        // Two windows total, history 1 → exactly one example predicting window 1.
        assert_eq!(ds.len(), 1);
        let e = &ds.examples[0];
        let cell = grid2x2().cell_of(&Location::new(0.5, 0.5)).index();
        assert_eq!(e.history[cell].row(0), &[1.0, 1.0, 0.0]);
        // Window 1 covers [3,6): the task at t=4.0 falls in bucket 1.
        assert_eq!(e.target.row(cell), &[0.0, 1.0, 0.0]);
        // Other cells stay zero.
        let other = grid2x2().cell_of(&Location::new(1.5, 1.5)).index();
        assert_eq!(e.target.row(other), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn tasks_outside_the_horizon_are_ignored() {
        let tasks = store_with(&[(0.5, 0.5, -1.0), (0.5, 0.5, 100.0)]);
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, 2, 1);
        let ds = SeriesDataset::build(&tasks, &grid2x2(), spec, Timestamp(8.0));
        assert!(ds.examples.iter().all(|e| e.target.sum() == 0.0));
        assert_eq!(ds.positive_rate(), 0.0);
    }

    #[test]
    fn split_is_chronological() {
        let tasks = store_with(&[(0.5, 0.5, 1.0)]);
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, 2, 2);
        let ds = SeriesDataset::build(&tasks, &grid2x2(), spec, Timestamp(20.0));
        let (train, test) = ds.split(0.8);
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(train.len() >= test.len());
        if let (Some(last_train), Some(first_test)) = (train.examples.last(), test.examples.first())
        {
            assert!(last_train.target_window < first_test.target_window);
        }
    }

    #[test]
    fn target_interval_maps_back_to_absolute_time() {
        let tasks = store_with(&[(0.5, 0.5, 1.0)]);
        let spec = SeriesSpec::new(Timestamp(10.0), 2.0, 2, 1);
        let ds = SeriesDataset::build(&tasks, &grid2x2(), spec, Timestamp(30.0));
        let e = &ds.examples[0];
        let (start, end) = ds.target_interval(e);
        assert_eq!(start, Timestamp(10.0 + e.target_window as f64 * 4.0));
        assert_eq!((end - start).seconds(), 4.0);
    }

    #[test]
    fn history_window_count_matches_spec() {
        let tasks = store_with(&[(0.5, 0.5, 1.0), (1.5, 1.5, 7.0)]);
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, 2, 3);
        let ds = SeriesDataset::build(&tasks, &grid2x2(), spec, Timestamp(20.0));
        for e in &ds.examples {
            assert_eq!(e.history.len(), 4); // M = 4 cells
            for h in &e.history {
                assert_eq!(h.shape(), (3, 2)); // P × k
            }
            assert_eq!(e.snapshot.shape(), (4, 2));
            assert_eq!(e.target.shape(), (4, 2));
        }
    }

    #[test]
    #[should_panic(expected = "greater than 1")]
    fn univariate_vectors_are_rejected() {
        let _ = SeriesSpec::new(Timestamp(0.0), 1.0, 1, 1);
    }
}
