// Fixture: relaxed-atomic-audit. Scanned with `--context assign` (not on
// the audited path allowlist); never compiled.

fn positive(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}

fn negative_seqcst(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::SeqCst)
}

fn suppressed(cursor: &AtomicUsize) -> usize {
    // datawa-lint: allow(relaxed-atomic-audit) -- fixture: pure monotonic claim cursor
    cursor.fetch_add(1, Ordering::Relaxed)
}
