//! Live-ingest demo: a paced rush-hour workload pumped through the dispatch
//! service, with every assignment decision streamed over a channel to a
//! consumer thread while the service keeps running.
//!
//! ```text
//! cargo run --release -p datawa-service --bin service_live
//! DATAWA_SERVICE_TASKS=2000 cargo run --release -p datawa-service --bin service_live
//! ```
//!
//! Exits nonzero if the run produces no dispatch decision (the CI
//! `service-smoke` step runs this under `timeout` and checks the
//! `decisions=` line).

use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast};
use datawa_service::{DispatchService, LiveSource, PumpStatus, ServiceConfig};
use datawa_stream::{ChannelSink, Decision, RushHourBurst, ScenarioGenerator, ScenarioSpec};
use std::sync::mpsc;

fn main() {
    let tasks = datawa_core::env_config::service_tasks().unwrap_or(600);
    let workers = datawa_core::env_config::service_workers().unwrap_or(40);
    let spec = ScenarioSpec::small()
        .with_tasks(tasks)
        .with_workers(workers);
    let workload = RushHourBurst::new(spec).generate();
    let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Dta);

    // The decision consumer: a separate thread draining the channel while
    // the service pumps — the shape of a real serving front-end.
    let (tx, rx) = mpsc::channel::<Decision>();
    let consumer = std::thread::spawn(move || {
        let (mut dispatches, mut expired, mut offline) = (0usize, 0usize, 0usize);
        let mut first_dispatch: Option<f64> = None;
        for decision in rx {
            match decision {
                Decision::Dispatch { at, .. } => {
                    dispatches += 1;
                    first_dispatch.get_or_insert(at.0);
                }
                Decision::TaskExpired { .. } => expired += 1,
                Decision::WorkerOffline { .. } => offline += 1,
            }
        }
        (dispatches, expired, offline, first_dispatch)
    });

    let mut forecast = StaticForecast::default();
    let mut service = DispatchService::open(
        &runner,
        &mut forecast,
        LiveSource::new(&workload, 15.0),
        ChannelSink::new(tx),
        ServiceConfig::default(),
    );

    // Pump with periodic mid-stream inspection.
    let mut pumps = 0usize;
    while service.pump() != PumpStatus::SourceDrained {
        pumps += 1;
        if pumps.is_multiple_of(500) {
            let snap = service.snapshot();
            println!(
                "t={:8.1}s  ingested={:5}  pending={:4}  open={:4}  available={:3}  assigned={:5}",
                snap.now.0,
                service.stats().ingested,
                snap.pending_events,
                snap.open_tasks,
                snap.available_workers,
                snap.assigned_tasks,
            );
        }
    }
    let (outcome, stats, sink) = service.finish();
    drop(sink); // hang up the channel so the consumer finishes
    let (dispatches, expired, offline, first_dispatch) =
        consumer.join().expect("decision consumer panicked");

    println!();
    println!(
        "workload: {} workers, {} tasks (rush-hour burst)",
        workload.workers.len(),
        workload.tasks.len()
    );
    println!(
        "service:  {} arrivals ingested, {} quiet-period waits, {} backpressure flushes",
        stats.ingested, stats.waits, stats.backpressure_flushes
    );
    println!(
        "outcome:  {} assigned, {} planning calls, {} events processed",
        outcome.run.assigned_tasks, outcome.run.planning_calls, outcome.stats.events_processed
    );
    if let Some(t) = first_dispatch {
        println!("first dispatch decision streamed at t={t:.1}s (long before close)");
    }
    println!("lifecycle: {expired} tasks expired unserved, {offline} workers went offline");
    println!("decisions={dispatches}");

    assert_eq!(
        dispatches, outcome.run.assigned_tasks,
        "every assignment surfaced as a streamed decision"
    );
    if dispatches == 0 {
        eprintln!("error: live service produced no dispatch decisions");
        std::process::exit(1);
    }
}
