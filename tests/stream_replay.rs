//! Integration tests for the `datawa-stream` discrete-event engine: replay
//! equivalence with the legacy synchronous driver on a real synthetic trace,
//! determinism across runs, and scenario coverage through the facade.

use datawa::prelude::*;

fn config() -> PipelineConfig {
    PipelineConfig {
        grid_cells_per_side: 3,
        k: 2,
        history_len: 3,
        training: TrainingConfig {
            epochs: 1,
            learning_rate: 0.02,
        },
        replan_every: 1,
        tvf_training_instants: 2,
        tvf_epochs: 5,
        ..PipelineConfig::default()
    }
}

/// The acceptance criterion of the engine migration: with the replay adapter
/// and `replan_every = 1`, the engine and the legacy loop report the same
/// number of completed assignments for every non-predictive policy on both
/// dataset presets.
#[test]
#[allow(deprecated)] // the deprecated legacy loop is the equivalence oracle
fn engine_replay_equals_legacy_loop_on_both_presets() {
    let cfg = config();
    for spec in [
        TraceSpec::yueche().scaled(0.02),
        TraceSpec::didi().scaled(0.02),
    ] {
        let trace = SyntheticTrace::generate(spec);
        for policy in [PolicyKind::Greedy, PolicyKind::Fta, PolicyKind::Dta] {
            let engine = run_policy(&trace, policy, &[], None, &cfg);
            let legacy = run_policy_legacy(&trace, policy, &[], None, &cfg);
            assert_eq!(
                engine.assigned_tasks,
                legacy.assigned_tasks,
                "{} diverged on {} workers / {} tasks",
                policy.name(),
                spec.workers,
                spec.tasks
            );
            assert_eq!(engine.events, legacy.events);
        }
    }
}

/// The engine must also replay DATA-WA (TVF-guided search) identically: TVF
/// training is fully seeded, so training one per driver yields the same
/// network and the comparison stays exact.
#[test]
#[allow(deprecated)] // the deprecated legacy loop is the equivalence oracle
fn engine_replay_equals_legacy_loop_for_data_wa() {
    let cfg = config();
    let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.015));
    let engine = run_policy(
        &trace,
        PolicyKind::DataWa,
        &[],
        Some(train_tvf_on_prefix(&trace, &cfg)),
        &cfg,
    );
    let legacy = run_policy_legacy(
        &trace,
        PolicyKind::DataWa,
        &[],
        Some(train_tvf_on_prefix(&trace, &cfg)),
        &cfg,
    );
    assert_eq!(engine.assigned_tasks, legacy.assigned_tasks);
}

/// Direct engine use through the facade: load the replay workload, run, and
/// check the lifecycle accounting (every arrival schedules exactly one
/// lifetime-closing event).
#[test]
fn engine_lifecycle_accounting_is_complete() {
    let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.02));
    let workload = trace.workload();
    let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Greedy);
    let mut engine = StreamEngine::new(EngineConfig::default());
    engine.load(&workload);
    assert_eq!(engine.pending(), workload.arrival_count());
    let outcome = engine.run(&runner, &[]);
    assert_eq!(outcome.stats.arrivals, workload.arrival_count());
    assert_eq!(outcome.stats.expirations, workload.tasks.len());
    assert_eq!(outcome.stats.offline, workload.workers.len());
    assert_eq!(
        outcome.stats.events_processed,
        workload.arrival_count() + workload.tasks.len() + workload.workers.len()
    );
    assert_eq!(engine.pending(), 0);
}

/// Time-driven batching produces far fewer planning calls than per-arrival
/// replanning while still serving a comparable share of tasks.
#[test]
fn time_batched_replanning_cuts_planning_calls() {
    let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.02));
    let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Greedy);
    let per_arrival = run_workload(&runner, &trace.workload(), &[], EngineConfig::default());
    let ticked = run_workload(&runner, &trace.workload(), &[], EngineConfig::ticked(60.0));
    assert!(ticked.run.planning_calls < per_arrival.run.planning_calls / 2);
    assert!(ticked.run.assigned_tasks > 0);
}

/// All four built-in scenario generators drive the full engine pipeline from
/// the facade.
#[test]
fn builtin_scenarios_run_through_the_facade() {
    let spec = ScenarioSpec::small().with_tasks(120).with_workers(10);
    let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Dta);
    let mut names = Vec::new();
    for scenario in builtin_scenarios(spec) {
        let outcome = run_workload(&runner, &scenario.generate(), &[], EngineConfig::default());
        assert!(outcome.run.assigned_tasks > 0, "{}", scenario.name());
        names.push(scenario.name());
    }
    assert_eq!(
        names,
        vec![
            "uniform-baseline",
            "rush-hour-burst",
            "hotspot-drift",
            "heavy-tailed-churn"
        ]
    );
}
