//! # datawa-sim
//!
//! Workload generation and the end-to-end experiment pipeline.
//!
//! The paper evaluates on two proprietary ride-hailing traces (Yueche and
//! DiDi, Chengdu, 2016-11-01). Those traces are not redistributable, so this
//! crate generates synthetic traces that reproduce the published marginals
//! (worker/task counts, two-hour horizon, spatial hotspot clustering, temporal
//! demand waves) — see DESIGN.md for the substitution rationale. The
//! [`TraceSpec::yueche`] and [`TraceSpec::didi`] presets match Table II.
//!
//! On top of the generator, [`pipeline`] wires prediction and assignment
//! together: build the task multivariate time series, train a demand
//! predictor, convert its confident predictions into predicted tasks, train
//! the task value function on DFSearch samples and run any of the five
//! assignment policies over the streaming trace.

pub mod datasets;
pub mod pipeline;

pub use datasets::{SyntheticTrace, TraceSpec};
#[allow(deprecated)] // re-exported so the equivalence tests can reach the oracle
pub use pipeline::run_policy_legacy;
pub use pipeline::{
    build_series, online_forecaster, prediction_grid, run_policy, run_policy_with_forecast,
    run_prediction, train_tvf_on_prefix, PipelineConfig, PolicyRunSummary, PredictionRunSummary,
};
