//! Travel model: travel distance `td(a, b)` and travel time `c(a, b)`.
//!
//! The paper abstracts movement into two functions used by every validity rule
//! and every assignment algorithm:
//!
//! * `td(a, b)` — travel distance between two locations (Definition 4 iii and
//!   the reachable-task constraint of §IV-A.1), and
//! * `c(a, b)` — travel time between two locations (Eq. 1 and constraints i/ii).
//!
//! We model travel time as distance divided by a constant worker speed, with
//! the distance computed under a configurable [`DistanceMetric`]. This is the
//! standard substitution for the (unavailable) Chengdu road network used by the
//! authors: a constant-speed metric preserves the relative geometry that the
//! assignment algorithms are sensitive to (who can reach what before when).

use crate::location::Location;
use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// The distance metric used to compute `td(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Straight-line (L2) distance.
    Euclidean,
    /// Rectilinear (L1) distance, a crude proxy for grid-like road networks.
    Manhattan,
}

impl DistanceMetric {
    /// Distance between `a` and `b` under this metric.
    #[inline]
    pub fn distance(&self, a: &Location, b: &Location) -> f64 {
        match self {
            DistanceMetric::Euclidean => a.euclidean(b),
            DistanceMetric::Manhattan => a.manhattan(b),
        }
    }
}

/// A travel model: metric + constant speed.
///
/// Speed is expressed in distance-units per second, so with kilometre
/// coordinates a typical urban driving speed of 30 km/h is `30.0 / 3600.0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TravelModel {
    /// Distance metric used for `td`.
    pub metric: DistanceMetric,
    /// Constant speed, in distance-units per second. Must be positive.
    pub speed: f64,
}

impl TravelModel {
    /// Creates a Euclidean travel model with the given speed (distance-units
    /// per second).
    pub fn euclidean(speed: f64) -> TravelModel {
        assert!(speed > 0.0, "travel speed must be positive");
        TravelModel {
            metric: DistanceMetric::Euclidean,
            speed,
        }
    }

    /// Creates a Manhattan travel model with the given speed.
    pub fn manhattan(speed: f64) -> TravelModel {
        assert!(speed > 0.0, "travel speed must be positive");
        TravelModel {
            metric: DistanceMetric::Manhattan,
            speed,
        }
    }

    /// A travel model tuned for the synthetic Chengdu-like traces: Euclidean
    /// metric at 36 km/h (0.01 km per second), a typical effective urban
    /// ride-hailing speed.
    pub fn urban_driving() -> TravelModel {
        TravelModel::euclidean(0.01)
    }

    /// Travel distance `td(a, b)`.
    #[inline]
    pub fn travel_distance(&self, a: &Location, b: &Location) -> f64 {
        self.metric.distance(a, b)
    }

    /// Travel time `c(a, b)`.
    #[inline]
    pub fn travel_time(&self, a: &Location, b: &Location) -> Duration {
        Duration(self.travel_distance(a, b) / self.speed)
    }

    /// The maximum distance coverable within `d`.
    #[inline]
    pub fn max_distance_within(&self, d: Duration) -> f64 {
        self.speed * d.seconds().max(0.0)
    }
}

impl Default for TravelModel {
    fn default() -> Self {
        TravelModel::urban_driving()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_travel_time_scales_with_speed() {
        let fast = TravelModel::euclidean(2.0);
        let slow = TravelModel::euclidean(1.0);
        let a = Location::new(0.0, 0.0);
        let b = Location::new(0.0, 10.0);
        assert_eq!(fast.travel_time(&a, &b), Duration(5.0));
        assert_eq!(slow.travel_time(&a, &b), Duration(10.0));
        assert_eq!(fast.travel_distance(&a, &b), 10.0);
    }

    #[test]
    fn manhattan_distance_is_used_when_selected() {
        let m = TravelModel::manhattan(1.0);
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert_eq!(m.travel_distance(&a, &b), 7.0);
        assert_eq!(m.travel_time(&a, &b), Duration(7.0));
    }

    #[test]
    fn urban_driving_speed_is_36_kmh() {
        let m = TravelModel::urban_driving();
        let a = Location::new(0.0, 0.0);
        let b = Location::new(0.0, 36.0); // 36 km
        assert!((m.travel_time(&a, &b).seconds() - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn max_distance_within_clamps_negative_durations() {
        let m = TravelModel::euclidean(2.0);
        assert_eq!(m.max_distance_within(Duration(3.0)), 6.0);
        assert_eq!(m.max_distance_within(Duration(-3.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_is_rejected() {
        let _ = TravelModel::euclidean(0.0);
    }
}
