// Fixture: unwrap-in-hot-path. Scanned with `--context assign` (a hot-path
// crate, forced to FileKind::Src); never compiled.

fn positive_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn positive_expect(x: Option<u32>) -> u32 {
    x.expect("always set")
}

fn negative_unwrap_or(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

fn suppressed(x: Option<u32>) -> u32 {
    // datawa-lint: allow(unwrap-in-hot-path) -- fixture: construction invariant makes x always Some
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_unwraps_are_fine_in_tests() {
        Some(1u32).unwrap();
    }
}
