//! Crowd workers and dynamic availability windows (Definition 2).

use crate::location::Location;
use crate::task::Task;
use crate::time::{Duration, TimeInterval, Timestamp};
use crate::travel::TravelModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a worker. Dense, assigned by the workload generator or the
/// [`crate::store::WorkerStore`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Index form for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Whether a worker is currently able to accept tasks.
///
/// The paper distinguishes *online* workers (ready to accept tasks) from
/// *offline* workers (unable to perform tasks); the adaptive algorithm only
/// plans for online workers whose availability window has not closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerMode {
    /// Ready to accept task assignments.
    Online,
    /// Not accepting tasks (off shift, on a break, or departed).
    Offline,
}

/// A worker's availability window: the contiguous period during which the
/// worker may be assigned tasks. Windows are dynamic — the simulator may
/// shrink or extend them mid-trace (breaks, shift changes) through
/// [`Worker::set_window`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityWindow {
    /// Online time `w.on`.
    pub on: Timestamp,
    /// Offline (departure) time `w.off`.
    pub off: Timestamp,
}

impl AvailabilityWindow {
    /// Creates a window; `off` must not precede `on`.
    pub fn new(on: Timestamp, off: Timestamp) -> AvailabilityWindow {
        debug_assert!(off.0 >= on.0, "availability window ends before it starts");
        AvailabilityWindow { on, off }
    }

    /// Window length `off − on` (the Table III sweep axis "available time of
    /// workers").
    #[inline]
    pub fn length(&self) -> Duration {
        self.off - self.on
    }

    /// Whether the window contains the instant `t`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t.0 >= self.on.0 && t.0 < self.off.0
    }

    /// The remaining availability from `now` (zero if the window has closed or
    /// not yet opened).
    pub fn remaining_from(&self, now: Timestamp) -> Duration {
        if now.0 >= self.off.0 {
            Duration::ZERO
        } else {
            let start = now.max(self.on);
            self.off - start
        }
    }

    /// The window as a [`TimeInterval`].
    #[inline]
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.on, self.off)
    }
}

/// An online worker `w = (l, d, on, off)` (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Worker identifier.
    pub id: WorkerId,
    /// Current location `w.l`, from which the worker begins to accept the task
    /// assignment (updated as tasks are performed).
    pub location: Location,
    /// Reachable distance `w.d`: tasks farther than this from the worker's
    /// current location cannot be assigned to them.
    pub reachable_distance: f64,
    /// Availability window `[w.on, w.off)`.
    pub window: AvailabilityWindow,
    /// Online/offline mode.
    pub mode: WorkerMode,
}

impl Worker {
    /// Creates a new online worker.
    pub fn new(
        id: WorkerId,
        location: Location,
        reachable_distance: f64,
        on: Timestamp,
        off: Timestamp,
    ) -> Worker {
        Worker {
            id,
            location,
            reachable_distance,
            window: AvailabilityWindow::new(on, off),
            mode: WorkerMode::Online,
        }
    }

    /// Online time `w.on`.
    #[inline]
    pub fn on(&self) -> Timestamp {
        self.window.on
    }

    /// Offline (departure) time `w.off`.
    #[inline]
    pub fn off(&self) -> Timestamp {
        self.window.off
    }

    /// Replaces the availability window (dynamic windows: breaks, shift
    /// extensions, early departures).
    pub fn set_window(&mut self, window: AvailabilityWindow) {
        self.window = window;
    }

    /// Whether the worker is online and inside their availability window at
    /// time `now`.
    #[inline]
    pub fn is_available_at(&self, now: Timestamp) -> bool {
        self.mode == WorkerMode::Online && self.window.contains(now)
    }

    /// Remaining availability `T_w` from `now` (§IV-A.1).
    #[inline]
    pub fn remaining_window(&self, now: Timestamp) -> Duration {
        self.window.remaining_from(now)
    }

    /// The reachable-task test of §IV-A.1 for a single task, evaluated from
    /// the worker's *current* location at time `now`:
    ///
    /// 1. the task can be reached before its expiration time:
    ///    `c(w.l, s.l) ≤ s.e − now`;
    /// 2. the task can be reached within the remaining availability window:
    ///    `c(w.l, s.l) ≤ T_w`;
    /// 3. the task lies within the worker's reachable range:
    ///    `td(w.l, s.l) ≤ w.d`.
    pub fn can_reach(&self, task: &Task, travel: &TravelModel, now: Timestamp) -> bool {
        if !self.is_available_at(now) {
            return false;
        }
        let tt = travel.travel_time(&self.location, &task.location);
        let td = travel.travel_distance(&self.location, &task.location);
        let before_expiration = tt.seconds() <= (task.expiration - now).seconds();
        let within_window = tt.seconds() <= self.remaining_window(now).seconds();
        let within_range = td <= self.reachable_distance;
        before_expiration && within_window && within_range
    }

    /// Whether all fields are finite and self-consistent.
    pub fn is_well_formed(&self) -> bool {
        self.location.is_finite()
            && self.reachable_distance.is_finite()
            && self.reachable_distance >= 0.0
            && self.window.on.is_finite()
            && self.window.off.is_finite()
            && self.window.off.0 >= self.window.on.0
    }
}

impl fmt::Display for Worker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} d={:.2} on={:.1} off={:.1}",
            self.id, self.location, self.reachable_distance, self.window.on.0, self.window.off.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn basic_worker() -> Worker {
        Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            2.0,
            Timestamp(0.0),
            Timestamp(100.0),
        )
    }

    fn task_at(x: f64, y: f64, e: f64) -> Task {
        Task::new(TaskId(0), Location::new(x, y), Timestamp(0.0), Timestamp(e))
    }

    #[test]
    fn window_length_and_remaining() {
        let w = AvailabilityWindow::new(Timestamp(10.0), Timestamp(70.0));
        assert_eq!(w.length(), Duration(60.0));
        assert_eq!(w.remaining_from(Timestamp(0.0)), Duration(60.0));
        assert_eq!(w.remaining_from(Timestamp(40.0)), Duration(30.0));
        assert_eq!(w.remaining_from(Timestamp(80.0)), Duration::ZERO);
    }

    #[test]
    fn can_reach_respects_reachable_distance() {
        let w = basic_worker();
        let travel = TravelModel::euclidean(1.0);
        assert!(w.can_reach(&task_at(1.0, 0.0, 100.0), &travel, Timestamp(0.0)));
        assert!(!w.can_reach(&task_at(3.0, 0.0, 100.0), &travel, Timestamp(0.0)));
    }

    #[test]
    fn can_reach_respects_expiration() {
        let w = basic_worker();
        let travel = TravelModel::euclidean(1.0);
        // travel time 2s, expiration at t=1 -> unreachable
        assert!(!w.can_reach(&task_at(2.0, 0.0, 1.0), &travel, Timestamp(0.0)));
        assert!(w.can_reach(&task_at(2.0, 0.0, 3.0), &travel, Timestamp(0.0)));
    }

    #[test]
    fn can_reach_respects_availability_window() {
        let mut w = basic_worker();
        w.set_window(AvailabilityWindow::new(Timestamp(0.0), Timestamp(1.0)));
        let travel = TravelModel::euclidean(1.0);
        // travel time 2s > remaining window 1s
        assert!(!w.can_reach(&task_at(2.0, 0.0, 100.0), &travel, Timestamp(0.0)));
    }

    #[test]
    fn offline_worker_reaches_nothing() {
        let mut w = basic_worker();
        w.mode = WorkerMode::Offline;
        let travel = TravelModel::euclidean(1.0);
        assert!(!w.can_reach(&task_at(0.1, 0.0, 100.0), &travel, Timestamp(0.0)));
    }

    #[test]
    fn availability_only_inside_window() {
        let w = basic_worker();
        assert!(w.is_available_at(Timestamp(0.0)));
        assert!(w.is_available_at(Timestamp(99.9)));
        assert!(!w.is_available_at(Timestamp(100.0)));
    }

    #[test]
    fn well_formedness() {
        let mut w = basic_worker();
        assert!(w.is_well_formed());
        w.reachable_distance = -1.0;
        assert!(!w.is_well_formed());
    }
}
