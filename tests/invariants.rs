//! Property-based integration tests: the assignment invariants of the paper
//! (Definitions 4–5 and the single-task-assignment mode) must hold for every
//! randomly generated scenario, not just the hand-built fixtures.

use datawa::prelude::*;
use proptest::prelude::*;

/// Strategy: a batch of workers scattered over a small area.
fn workers_strategy(max: usize) -> impl Strategy<Value = Vec<Worker>> {
    prop::collection::vec(
        (
            0.0f64..10.0,
            0.0f64..10.0,
            0.2f64..3.0,    // reachable distance
            0.0f64..50.0,   // online time
            60.0f64..400.0, // window length
        ),
        1..max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(x, y, d, on, len)| {
                Worker::new(
                    WorkerId(0),
                    Location::new(x, y),
                    d,
                    Timestamp(on),
                    Timestamp(on + len),
                )
            })
            .collect()
    })
}

/// Strategy: a batch of tasks with bounded lifetimes.
fn tasks_strategy(max: usize) -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec(
        (
            0.0f64..10.0,
            0.0f64..10.0,
            0.0f64..120.0,  // publication
            20.0f64..200.0, // valid time
        ),
        1..max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(x, y, p, v)| {
                Task::new(
                    TaskId(0),
                    Location::new(x, y),
                    Timestamp(p),
                    Timestamp(p + v),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every planner mode produces a feasible, single-assignment plan on
    /// arbitrary snapshots.
    #[test]
    fn planner_output_is_always_feasible(
        workers in workers_strategy(10),
        tasks in tasks_strategy(20),
        exact in any::<bool>(),
    ) {
        let worker_store = WorkerStore::from_workers(workers);
        let task_store = TaskStore::from_tasks(tasks);
        let now = Timestamp(60.0);
        let config = AssignConfig {
            travel: TravelModel::euclidean(0.05),
            ..AssignConfig::default()
        };
        let mode = if exact { SearchMode::Exact } else { SearchMode::Greedy };
        let mut planner = Planner::new(config, mode);
        let worker_ids: Vec<WorkerId> = worker_store.available_at(now);
        let task_ids: Vec<TaskId> = task_store.open_at(now);
        let (assignment, _) = planner.plan(&worker_ids, &task_ids, &worker_store, &task_store, now);
        // Feasibility per Definition 4 + single assignment per Definition 5.
        prop_assert!(assignment
            .validate(&worker_store, &task_store, &config.travel, now)
            .is_empty());
        // Only open tasks may be assigned.
        for task in assignment.assigned_tasks() {
            prop_assert!(task_ids.contains(&task));
        }
    }

    /// The streaming runner never serves a task twice, never serves more
    /// tasks than exist, and its per-worker counts sum to the total.
    #[test]
    fn adaptive_runner_invariants(
        workers in workers_strategy(8),
        tasks in tasks_strategy(15),
    ) {
        let config = AssignConfig {
            travel: TravelModel::euclidean(0.05),
            ..AssignConfig::default()
        };
        let events: Vec<ArrivalEvent> = workers
            .iter()
            .map(|w| ArrivalEvent::Worker(*w))
            .chain(tasks.iter().map(|t| ArrivalEvent::Task(*t)))
            .collect();
        let total_tasks = tasks.len();
        for policy in [PolicyKind::Greedy, PolicyKind::Fta, PolicyKind::Dta] {
            let outcome = AdaptiveRunner::new(config, policy).run(&events, &[]);
            prop_assert!(outcome.assigned_tasks <= total_tasks);
            let sum: usize = outcome.per_worker.values().sum();
            prop_assert_eq!(sum, outcome.assigned_tasks);
            prop_assert_eq!(outcome.events, events.len());
        }
    }

    /// Exact planning never assigns fewer tasks than greedy planning on the
    /// same snapshot.
    #[test]
    fn exact_dominates_greedy(
        workers in workers_strategy(6),
        tasks in tasks_strategy(12),
    ) {
        let worker_store = WorkerStore::from_workers(workers);
        let task_store = TaskStore::from_tasks(tasks);
        let now = Timestamp(60.0);
        let config = AssignConfig {
            travel: TravelModel::euclidean(0.05),
            ..AssignConfig::default()
        };
        let worker_ids: Vec<WorkerId> = worker_store.available_at(now);
        let task_ids: Vec<TaskId> = task_store.open_at(now);
        let (exact, _) = Planner::new(config, SearchMode::Exact)
            .plan(&worker_ids, &task_ids, &worker_store, &task_store, now);
        let (greedy, _) = Planner::new(config, SearchMode::Greedy)
            .plan(&worker_ids, &task_ids, &worker_store, &task_store, now);
        prop_assert!(exact.assigned_count() >= greedy.assigned_count());
    }
}
