//! End-to-end pipeline: prediction → predicted tasks → TVF training →
//! streaming assignment.
//!
//! This module provides the glue the experiment harness (and the examples)
//! build on: given a [`SyntheticTrace`], it can train any demand predictor on
//! the historical hour, convert confident predictions into predicted tasks,
//! train the Task Value Function on DFSearch samples from a prefix of the
//! trace, and run any of the five assignment policies over the full arrival
//! stream.

use crate::datasets::SyntheticTrace;
use datawa_assign::{
    AdaptiveRunner, AssignConfig, ForecastProvider, Planner, PolicyKind, PredictedTaskInput,
    SearchMode, StaticForecast, TaskValueFunction,
};
use datawa_core::{Duration, TaskId, Timestamp, WorkerId};
use datawa_geo::{GridSpec, UniformGrid};
use datawa_predict::{
    predicted_tasks_from, DemandPredictor, OnlineForecastConfig, OnlineForecaster, SeriesDataset,
    SeriesSpec, TrainingConfig,
};
use datawa_stream::{EngineConfig, NullSink, Session};
use serde::Serialize;

/// Configuration of the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Grid resolution (rows = cols) of the prediction component.
    pub grid_cells_per_side: u32,
    /// Interval length ΔT of the task multivariate time series, in seconds.
    pub delta_t: f64,
    /// Number of ΔT buckets per occurrence vector.
    pub k: usize,
    /// Number of history vectors per prediction example.
    pub history_len: usize,
    /// Decision threshold above which a prediction becomes a predicted task
    /// (0.85 in the paper).
    pub prediction_threshold: f64,
    /// Training hyper-parameters shared by all predictors.
    pub training: TrainingConfig,
    /// Assignment configuration.
    pub assign: AssignConfig,
    /// Re-plan every N arrival events (1 = the paper's setting).
    pub replan_every: usize,
    /// Additionally re-plan every Δt simulated seconds through the
    /// discrete-event engine's replan ticks (`None` = arrival-driven only,
    /// which keeps engine runs bit-identical to the legacy driver).
    pub replan_interval: Option<f64>,
    /// Number of planning instants sampled for TVF training data collection.
    pub tvf_training_instants: usize,
    /// TVF training epochs.
    pub tvf_epochs: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            grid_cells_per_side: 6,
            delta_t: 5.0,
            k: 3,
            history_len: 6,
            prediction_threshold: 0.85,
            training: TrainingConfig {
                epochs: 8,
                learning_rate: 0.02,
            },
            assign: AssignConfig::default(),
            replan_every: 1,
            replan_interval: None,
            tvf_training_instants: 6,
            tvf_epochs: 60,
        }
    }
}

/// Summary of one prediction run (one model on one trace).
#[derive(Debug, Clone, Serialize)]
pub struct PredictionRunSummary {
    /// Model name ("LSTM", "Graph-Wavenet", "DDGNN").
    pub model: String,
    /// Average Precision on the chronological 20 % test split.
    pub average_precision: f64,
    /// Wall-clock training time, in seconds.
    pub train_seconds: f64,
    /// Wall-clock inference time over the test split, in seconds.
    pub test_seconds: f64,
    /// Final training loss (BCE).
    pub final_loss: f64,
    /// Number of predicted tasks emitted above the threshold.
    pub predicted_tasks: usize,
}

/// Summary of one assignment run (one policy on one trace).
#[derive(Debug, Clone, Serialize)]
pub struct PolicyRunSummary {
    /// Policy name ("Greedy", "FTA", "DTA", "DTA+TP", "DATA-WA").
    pub policy: String,
    /// Total number of assigned (served) tasks.
    pub assigned_tasks: usize,
    /// Mean planning CPU time per time instance, in seconds.
    pub mean_cpu_seconds: f64,
    /// Total planning CPU time, in seconds.
    pub total_cpu_seconds: f64,
    /// Number of arrival events processed.
    pub events: usize,
    /// Model re-forecasts performed by the run's forecast provider (0 for
    /// the static oracle and the prediction-blind policies).
    pub forecast_refreshes: usize,
    /// Arrivals observed by the forecast provider.
    pub forecast_observed: usize,
}

/// Builds the prediction grid for a trace.
pub fn prediction_grid(trace: &SyntheticTrace, config: &PipelineConfig) -> UniformGrid {
    UniformGrid::new(GridSpec::new(
        trace.area,
        config.grid_cells_per_side,
        config.grid_cells_per_side,
    ))
}

/// Builds the task multivariate time series dataset covering the historical
/// hour plus the evaluation horizon.
pub fn build_series(trace: &SyntheticTrace, config: &PipelineConfig) -> SeriesDataset {
    let grid = prediction_grid(trace, config);
    let spec = SeriesSpec::new(
        Timestamp(-trace.spec.history),
        config.delta_t,
        config.k,
        config.history_len,
    );
    SeriesDataset::build(
        &trace.all_tasks(),
        &grid,
        spec,
        Timestamp(trace.spec.horizon),
    )
}

/// Trains `model` on the chronological 80 % of the series, evaluates AP on the
/// remaining 20 %, and converts every confident test-window prediction into a
/// predicted task for the assignment layer.
pub fn run_prediction(
    model: &mut dyn DemandPredictor,
    trace: &SyntheticTrace,
    config: &PipelineConfig,
) -> (PredictionRunSummary, Vec<PredictedTaskInput>) {
    let grid = prediction_grid(trace, config);
    let series = build_series(trace, config);
    let (train, test) = series.split(0.8);
    let report = model.train(&train, &config.training);
    let evaluation = model.evaluate(&test);
    let mut predicted = Vec::new();
    for example in &test.examples {
        let probabilities = model.predict(example);
        let (window_start, _) = test.target_interval(example);
        let tasks = predicted_tasks_from(
            &probabilities,
            &grid,
            &test.spec,
            window_start,
            Duration(trace.spec.valid_time),
            config.prediction_threshold,
        );
        predicted.extend(tasks.into_iter().map(PredictedTaskInput::from));
    }
    (
        PredictionRunSummary {
            model: model.name().to_string(),
            average_precision: evaluation.average_precision,
            train_seconds: report.train_seconds,
            test_seconds: evaluation.test_seconds,
            final_loss: report.final_loss,
            predicted_tasks: predicted.len(),
        },
        predicted,
    )
}

/// Collects DFSearch training samples at a handful of planning instants spread
/// over the trace and trains the Task Value Function on them (§IV-B).
pub fn train_tvf_on_prefix(trace: &SyntheticTrace, config: &PipelineConfig) -> TaskValueFunction {
    let mut planner = Planner::new(config.assign, SearchMode::Exact);
    let mut samples = Vec::new();
    let instants = config.tvf_training_instants.max(1);
    for i in 0..instants {
        let now = Timestamp(trace.spec.horizon * (i as f64 + 0.5) / instants as f64);
        let worker_ids: Vec<WorkerId> = trace.workers.available_at(now);
        let task_ids: Vec<TaskId> = trace.tasks.open_at(now);
        if worker_ids.is_empty() || task_ids.is_empty() {
            continue;
        }
        samples.extend(planner.collect_training_samples(
            &worker_ids,
            &task_ids,
            &trace.workers,
            &trace.tasks,
            now,
        ));
    }
    let mut tvf = TaskValueFunction::new(16, trace.spec.seed);
    let tuples: Vec<_> = samples.iter().map(|s| (s.state, s.action, s.opt)).collect();
    tvf.train(&tuples, config.tvf_epochs, 32, 0.01, trace.spec.seed);
    tvf
}

fn build_runner(
    trace: &SyntheticTrace,
    policy: PolicyKind,
    tvf: Option<TaskValueFunction>,
    config: &PipelineConfig,
) -> AdaptiveRunner {
    let mut runner = AdaptiveRunner::new(config.assign, policy);
    runner.replan_every = config.replan_every;
    if policy == PolicyKind::DataWa {
        let tvf = tvf.unwrap_or_else(|| train_tvf_on_prefix(trace, config));
        runner = runner.with_tvf(tvf);
    }
    runner
}

fn summarize(policy: PolicyKind, outcome: &datawa_assign::RunOutcome) -> PolicyRunSummary {
    PolicyRunSummary {
        policy: policy.name().to_string(),
        assigned_tasks: outcome.assigned_tasks,
        mean_cpu_seconds: outcome.mean_planning_seconds,
        total_cpu_seconds: outcome.total_planning_seconds,
        events: outcome.events,
        forecast_refreshes: outcome.forecast.refreshes,
        forecast_observed: outcome.forecast.observed,
    }
}

/// Runs one assignment policy over the trace's arrival stream through the
/// `datawa-stream` session API (replay-compatible configuration, so the
/// reported numbers match the retired synchronous driver at the same
/// `replan_every`): open a session, ingest the whole replay workload, drain.
///
/// `predicted` is only consulted by the prediction-aware policies; `tvf` is
/// required by DATA-WA (trained on the fly via [`train_tvf_on_prefix`] when
/// `None`).
pub fn run_policy(
    trace: &SyntheticTrace,
    policy: PolicyKind,
    predicted: &[PredictedTaskInput],
    tvf: Option<TaskValueFunction>,
    config: &PipelineConfig,
) -> PolicyRunSummary {
    let mut forecast = StaticForecast::from_slice(predicted);
    run_policy_with_forecast(trace, policy, &mut forecast, tvf, config)
}

/// [`run_policy`] over a live [`ForecastProvider`] instead of a fixed
/// prediction slice: the session routes every replayed arrival into
/// `forecast` and the prediction-aware policies re-query it at every
/// planning instant. Pair with [`online_forecaster`] to drive DTA+TP /
/// DATA-WA from a model that re-forecasts as the trace streams.
pub fn run_policy_with_forecast(
    trace: &SyntheticTrace,
    policy: PolicyKind,
    forecast: &mut dyn ForecastProvider,
    tvf: Option<TaskValueFunction>,
    config: &PipelineConfig,
) -> PolicyRunSummary {
    let runner = build_runner(trace, policy, tvf, config);
    let engine_config = EngineConfig {
        replan_interval: config.replan_interval,
        ..EngineConfig::replay_compat(config.replan_every)
    };
    let mut session = Session::open(&runner, forecast, engine_config);
    session
        .ingest_workload(&trace.workload())
        .expect("replay workloads carry finite times");
    let outcome = session.close(&mut NullSink);
    summarize(policy, &outcome.run)
}

/// Builds an [`OnlineForecaster`] for `trace`: trains `model` on the task
/// series of the historical hour (`[-history, 0)`), then wraps it over the
/// trace's prediction grid, warm-started on the same historical tasks, with
/// the pipeline's threshold, the trace's task valid time and the given
/// refresh cadence (simulated seconds between re-forecasts).
pub fn online_forecaster(
    trace: &SyntheticTrace,
    mut model: Box<dyn DemandPredictor>,
    config: &PipelineConfig,
    refresh_every: f64,
) -> OnlineForecaster {
    let grid = prediction_grid(trace, config);
    let spec = SeriesSpec::new(
        Timestamp(-trace.spec.history),
        config.delta_t,
        config.k,
        config.history_len,
    );
    // Train on the historical hour only — the evaluation horizon stays
    // unseen and is forecast online as it streams.
    let history_series = SeriesDataset::build(&trace.history_tasks, &grid, spec, Timestamp(0.0));
    if !history_series.is_empty() {
        model.train(&history_series, &config.training);
    }
    let mut forecaster = OnlineForecaster::new(
        model,
        grid,
        spec,
        OnlineForecastConfig {
            threshold: config.prediction_threshold,
            valid_time: trace.spec.valid_time,
            refresh_every,
        },
    );
    forecaster.warm_up(&trace.history_tasks);
    forecaster
}

/// Runs one assignment policy through the legacy synchronous
/// loop-over-sorted-arrivals driver.
///
/// Deprecated: the session API ([`run_policy`] /
/// [`datawa_stream::Session`]) is the single supported driver. This function
/// survives only as the independent oracle the replay-equivalence tests
/// compare the engine against; do not build new code on it.
#[deprecated(
    since = "0.1.0",
    note = "drive policies through the session API (`run_policy`); kept only as the \
            equivalence oracle for tests"
)]
pub fn run_policy_legacy(
    trace: &SyntheticTrace,
    policy: PolicyKind,
    predicted: &[PredictedTaskInput],
    tvf: Option<TaskValueFunction>,
    config: &PipelineConfig,
) -> PolicyRunSummary {
    let runner = build_runner(trace, policy, tvf, config);
    let outcome = runner.run(&trace.events(), predicted);
    summarize(policy, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::TraceSpec;
    use datawa_predict::{DdgnnPredictor, LstmPredictor};

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            grid_cells_per_side: 3,
            delta_t: 30.0,
            k: 2,
            history_len: 3,
            training: TrainingConfig {
                epochs: 2,
                learning_rate: 0.02,
            },
            replan_every: 4,
            tvf_training_instants: 2,
            tvf_epochs: 10,
            ..PipelineConfig::default()
        }
    }

    fn tiny_trace() -> SyntheticTrace {
        SyntheticTrace::generate(TraceSpec::yueche().scaled(0.01))
    }

    #[test]
    fn series_builder_covers_history_and_horizon() {
        let trace = tiny_trace();
        let config = tiny_config();
        let series = build_series(&trace, &config);
        assert!(!series.is_empty());
        assert_eq!(series.cells, 9);
        assert!(series.positive_rate() > 0.0);
    }

    #[test]
    fn prediction_pipeline_produces_a_summary_and_predicted_tasks() {
        let trace = tiny_trace();
        let config = tiny_config();
        let mut model = DdgnnPredictor::with_defaults(9, config.k, 0);
        let (summary, predicted) = run_prediction(&mut model, &trace, &config);
        assert_eq!(summary.model, "DDGNN");
        assert!(summary.average_precision >= 0.0 && summary.average_precision <= 1.0);
        assert!(summary.train_seconds > 0.0);
        assert_eq!(summary.predicted_tasks, predicted.len());
        for p in &predicted {
            assert!(p.expiration.0 > p.publication.0);
            assert!(trace.area.contains(&p.location));
        }
    }

    #[test]
    fn policy_runs_produce_consistent_summaries() {
        let trace = tiny_trace();
        let config = tiny_config();
        let greedy = run_policy(&trace, PolicyKind::Greedy, &[], None, &config);
        let dta = run_policy(&trace, PolicyKind::Dta, &[], None, &config);
        assert_eq!(greedy.events, trace.tasks.len() + trace.workers.len());
        assert!(greedy.assigned_tasks <= trace.tasks.len());
        assert!(dta.assigned_tasks <= trace.tasks.len());
        assert!(
            dta.assigned_tasks >= 1,
            "DTA should serve something on this trace"
        );
        assert_eq!(dta.policy, "DTA");
    }

    #[test]
    #[allow(deprecated)] // the deprecated legacy loop is the oracle here
    fn engine_replay_matches_the_legacy_driver_exactly() {
        // The acceptance bar for the discrete-event engine: replaying the
        // trace through the engine in replay-compat mode must reproduce the
        // legacy loop's assignment totals for every non-predictive policy,
        // at per-arrival re-planning and at a coarser batching alike.
        let trace = tiny_trace();
        for replan_every in [1usize, 4] {
            let config = PipelineConfig {
                replan_every,
                ..tiny_config()
            };
            for policy in [PolicyKind::Greedy, PolicyKind::Fta, PolicyKind::Dta] {
                let engine = run_policy(&trace, policy, &[], None, &config);
                let legacy = run_policy_legacy(&trace, policy, &[], None, &config);
                assert_eq!(
                    engine.assigned_tasks,
                    legacy.assigned_tasks,
                    "{} diverged at replan_every={replan_every}",
                    policy.name()
                );
                assert_eq!(engine.events, legacy.events);
            }
        }
    }

    #[test]
    fn online_forecaster_drives_a_policy_run_and_refreshes_mid_stream() {
        let trace = tiny_trace();
        let config = tiny_config();
        let mut forecaster = online_forecaster(
            &trace,
            Box::new(LstmPredictor::new(config.k, 6, 0)),
            &config,
            120.0,
        );
        let summary =
            run_policy_with_forecast(&trace, PolicyKind::DtaTp, &mut forecaster, None, &config);
        assert_eq!(summary.policy, "DTA+TP");
        assert!(summary.assigned_tasks <= trace.tasks.len());
        assert!(
            summary.forecast_refreshes > 1,
            "the online provider must re-forecast as the trace streams \
             (got {} refreshes)",
            summary.forecast_refreshes
        );
        assert_eq!(
            summary.forecast_observed,
            trace.history_tasks.len() + trace.tasks.len(),
            "warm-up plus every replayed arrival reaches the provider"
        );
        // A static run of the same policy observes arrivals but never
        // refreshes.
        let static_run = run_policy(&trace, PolicyKind::DtaTp, &[], None, &config);
        assert_eq!(static_run.forecast_refreshes, 0);
    }

    #[test]
    fn data_wa_runs_end_to_end_with_an_internally_trained_tvf() {
        let trace = tiny_trace();
        let config = tiny_config();
        let mut model = LstmPredictor::new(config.k, 6, 0);
        let (_, predicted) = run_prediction(&mut model, &trace, &config);
        let summary = run_policy(&trace, PolicyKind::DataWa, &predicted, None, &config);
        assert_eq!(summary.policy, "DATA-WA");
        assert!(summary.assigned_tasks <= trace.tasks.len());
        assert!(summary.mean_cpu_seconds >= 0.0);
    }
}
