//! Conversion of demand predictions into predicted tasks.
//!
//! After DDGNN produces per-cell, per-bucket occurrence probabilities, every
//! probability above the decision threshold (0.85 in the paper's experiments)
//! becomes a *predicted task* located at the centre of its grid cell and
//! published at the start of its ΔT bucket. The assignment component plans
//! for current and predicted tasks together (§III-C last paragraph, §IV-C).

use crate::series::SeriesSpec;
use datawa_core::{Duration, Location, Timestamp};
use datawa_geo::{CellId, UniformGrid};
use datawa_tensor::Matrix;

/// The decision threshold used in the paper's experiments.
pub const DEFAULT_THRESHOLD: f64 = 0.85;

/// A task predicted to appear in the near future.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedTask {
    /// Grid cell the prediction refers to.
    pub cell: CellId,
    /// Representative location (cell centre).
    pub location: Location,
    /// Expected publication time (start of the predicted ΔT bucket).
    pub publication: Timestamp,
    /// Expected expiration time (publication + the configured task valid
    /// time).
    pub expiration: Timestamp,
    /// Model confidence.
    pub probability: f64,
}

/// Converts a probability matrix (one row per cell, one column per ΔT bucket
/// of the predicted window) into predicted tasks.
///
/// * `window_start` is the absolute start time of the predicted window;
/// * `valid_time` is the lifetime assigned to each predicted task (typically
///   the dataset's task valid time `e − p`);
/// * probabilities below `threshold` are dropped.
pub fn predicted_tasks_from(
    probabilities: &Matrix,
    grid: &UniformGrid,
    spec: &SeriesSpec,
    window_start: Timestamp,
    valid_time: Duration,
    threshold: f64,
) -> Vec<PredictedTask> {
    assert_eq!(
        probabilities.rows(),
        grid.cell_count(),
        "probability rows must match the grid cell count"
    );
    assert_eq!(
        probabilities.cols(),
        spec.k,
        "probability columns must match k"
    );
    let mut out = Vec::new();
    for cell_index in 0..probabilities.rows() {
        for bucket in 0..probabilities.cols() {
            let p = probabilities.get(cell_index, bucket);
            if p >= threshold {
                let cell = CellId(cell_index as u32);
                let publication = window_start + Duration(bucket as f64 * spec.delta_t);
                out.push(PredictedTask {
                    cell,
                    location: grid.cell_center(cell),
                    publication,
                    expiration: publication + valid_time,
                    probability: p,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::BoundingBox;
    use datawa_geo::GridSpec;

    fn grid() -> UniformGrid {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(4.0, 4.0));
        UniformGrid::new(GridSpec::new(area, 2, 2))
    }

    #[test]
    fn only_confident_predictions_become_tasks() {
        let spec = SeriesSpec::new(Timestamp(0.0), 5.0, 2, 1);
        let probs = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.86], &[0.84, 0.3], &[0.99, 0.97]]);
        let tasks = predicted_tasks_from(
            &probs,
            &grid(),
            &spec,
            Timestamp(100.0),
            Duration(40.0),
            DEFAULT_THRESHOLD,
        );
        assert_eq!(tasks.len(), 4); // (0,0), (1,1), (3,0), (3,1)
                                    // Bucket index sets publication offset.
        let t = tasks.iter().find(|t| t.cell == CellId(1)).unwrap();
        assert_eq!(t.publication, Timestamp(105.0));
        assert_eq!(t.expiration, Timestamp(145.0));
        assert!(t.probability >= 0.85);
    }

    #[test]
    fn predicted_task_location_is_the_cell_center() {
        let spec = SeriesSpec::new(Timestamp(0.0), 5.0, 2, 1);
        let mut probs = Matrix::zeros(4, 2);
        probs.set(3, 0, 0.95);
        let tasks =
            predicted_tasks_from(&probs, &grid(), &spec, Timestamp(0.0), Duration(10.0), 0.85);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].location, grid().cell_center(CellId(3)));
    }

    #[test]
    fn threshold_zero_emits_everything() {
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, 2, 1);
        let probs = Matrix::zeros(4, 2);
        let tasks =
            predicted_tasks_from(&probs, &grid(), &spec, Timestamp(0.0), Duration(1.0), 0.0);
        assert_eq!(tasks.len(), 8);
    }
}
