//! Synthetic ride-hailing trace generation (the Yueche / DiDi stand-ins).
//!
//! The generator samples task locations from a mixture of spatial hotspots
//! (restaurant districts, campuses, transit hubs) over a city-scale bounding
//! box and modulates the arrival rate with a smooth temporal wave, which
//! yields the demand-dependency structure the prediction component relies on.
//! Workers come online near hotspots (drivers position themselves where
//! demand is) with availability windows and reachable distances drawn from
//! the Table III parameter grid.

use datawa_assign::ArrivalEvent;
use datawa_core::{
    BoundingBox, Duration, Location, Task, TaskId, TaskStore, Timestamp, Worker, WorkerId,
    WorkerStore,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Parameters of one synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Number of workers `|W|`.
    pub workers: usize,
    /// Number of tasks `|S|`.
    pub tasks: usize,
    /// Observation horizon, in seconds (the paper uses two hours).
    pub horizon: f64,
    /// Extra historical horizon generated *before* t=0 to train the demand
    /// predictor (the paper uses the preceding hour).
    pub history: f64,
    /// Side length of the (square) study area, in kilometres.
    pub area_km: f64,
    /// Number of demand hotspots.
    pub hotspots: usize,
    /// Standard deviation of each hotspot, in kilometres.
    pub hotspot_sigma: f64,
    /// Worker reachable distance, in kilometres (Table III sweeps 0.05–5).
    pub reachable_distance: f64,
    /// Worker availability window length, in seconds (Table III sweeps
    /// 0.25–1.25 h).
    pub available_time: f64,
    /// Task valid time `e − p`, in seconds (Table III sweeps 10–50 s).
    pub valid_time: f64,
    /// RNG seed (fixed defaults keep the experiments reproducible).
    pub seed: u64,
}

impl TraceSpec {
    /// The Yueche-like preset: 624 workers, 11 052 tasks, two hours, Chengdu
    /// urban-core-sized area (Table II), with the Table III default
    /// parameters underlined in the paper (d = 1 km, off−on = 1 h, e−p = 40 s).
    pub fn yueche() -> TraceSpec {
        TraceSpec {
            workers: 624,
            tasks: 11_052,
            horizon: 2.0 * 3600.0,
            history: 3600.0,
            area_km: 10.0,
            hotspots: 12,
            hotspot_sigma: 0.8,
            reachable_distance: 1.0,
            available_time: 3600.0,
            valid_time: 40.0,
            seed: 20161101,
        }
    }

    /// The DiDi-like preset: 760 workers, 8 869 tasks, two hours (Table II).
    pub fn didi() -> TraceSpec {
        TraceSpec {
            workers: 760,
            tasks: 8_869,
            horizon: 2.0 * 3600.0,
            history: 3600.0,
            area_km: 10.0,
            hotspots: 10,
            hotspot_sigma: 0.9,
            reachable_distance: 1.0,
            available_time: 3600.0,
            valid_time: 40.0,
            seed: 20161102,
        }
    }

    /// Scales the worker and task counts by `factor` (used by the experiment
    /// harness to keep full parameter sweeps tractable on a laptop while
    /// preserving the worker-to-task ratio; `1.0` reproduces the full size).
    pub fn scaled(mut self, factor: f64) -> TraceSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        self.workers = ((self.workers as f64 * factor).round() as usize).max(1);
        self.tasks = ((self.tasks as f64 * factor).round() as usize).max(1);
        self
    }

    /// Overrides the number of tasks (the Fig. 7 sweep axis).
    pub fn with_tasks(mut self, tasks: usize) -> TraceSpec {
        self.tasks = tasks;
        self
    }

    /// Overrides the number of workers (the Fig. 8 sweep axis).
    pub fn with_workers(mut self, workers: usize) -> TraceSpec {
        self.workers = workers;
        self
    }

    /// Overrides the reachable distance (the Fig. 9 sweep axis).
    pub fn with_reachable_distance(mut self, d: f64) -> TraceSpec {
        self.reachable_distance = d;
        self
    }

    /// Overrides the availability window length in hours (the Fig. 10 axis).
    pub fn with_available_hours(mut self, hours: f64) -> TraceSpec {
        self.available_time = hours * 3600.0;
        self
    }

    /// Overrides the task valid time in seconds (the Fig. 11 axis).
    pub fn with_valid_time(mut self, seconds: f64) -> TraceSpec {
        self.valid_time = seconds;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> TraceSpec {
        self.seed = seed;
        self
    }
}

/// A generated trace: workers, tasks (including the pre-horizon history used
/// for predictor training) and the derived arrival-event stream.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    /// The generation parameters.
    pub spec: TraceSpec,
    /// The study area.
    pub area: BoundingBox,
    /// Workers (online times spread over the first part of the horizon).
    pub workers: WorkerStore,
    /// Tasks published during the evaluation horizon `[0, horizon)`.
    pub tasks: TaskStore,
    /// Historical tasks published during `[-history, 0)`, used to train the
    /// demand predictor.
    pub history_tasks: TaskStore,
    /// Hotspot centres (exposed for tests and visual inspection).
    pub hotspots: Vec<Location>,
}

impl SyntheticTrace {
    /// Generates a trace from its specification.
    pub fn generate(spec: TraceSpec) -> SyntheticTrace {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let area = BoundingBox::new(
            Location::new(0.0, 0.0),
            Location::new(spec.area_km, spec.area_km),
        );
        // Hotspot centres.
        let hotspots: Vec<Location> = (0..spec.hotspots.max(1))
            .map(|_| {
                Location::new(
                    rng.gen_range(area.min.x..area.max.x),
                    rng.gen_range(area.min.y..area.max.y),
                )
            })
            .collect();
        // Each hotspot has a phase in the temporal demand wave so that demand
        // shifts between regions over time (the dependency DDGNN learns).
        let phases: Vec<f64> = (0..hotspots.len())
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();

        let sample_location = |rng: &mut StdRng, hotspot: usize| -> Location {
            let c = hotspots[hotspot];
            let p = Location::new(
                c.x + rng.sample::<f64, _>(StandardNormal) * spec.hotspot_sigma,
                c.y + rng.sample::<f64, _>(StandardNormal) * spec.hotspot_sigma,
            );
            area.clamp(&p)
        };

        // Hotspot weight at time t: a raised cosine wave with per-hotspot
        // phase; always positive.
        let weight = |hotspot: usize, t: f64| -> f64 {
            let period = 1800.0; // 30-minute demand waves
            1.0 + 0.9 * ((std::f64::consts::TAU * t / period) + phases[hotspot]).cos()
        };

        let pick_hotspot = |rng: &mut StdRng, t: f64| -> usize {
            let weights: Vec<f64> = (0..hotspots.len()).map(|h| weight(h, t)).collect();
            let total: f64 = weights.iter().sum();
            let mut x = rng.gen_range(0.0..total);
            for (h, w) in weights.iter().enumerate() {
                if x < *w {
                    return h;
                }
                x -= w;
            }
            hotspots.len() - 1
        };

        // Tasks over [-history, horizon). The two segments are sampled
        // separately so the evaluation horizon always holds exactly
        // `spec.tasks` tasks (the historical density matches the horizon's).
        let mut tasks = TaskStore::new();
        let mut history_tasks = TaskStore::new();
        let history_count = ((spec.tasks as f64) * spec.history / spec.horizon).round() as usize;
        for i in 0..history_count + spec.tasks {
            let t = if i < history_count {
                rng.gen_range(-spec.history..0.0)
            } else {
                rng.gen_range(0.0..spec.horizon)
            };
            let hotspot = pick_hotspot(&mut rng, t);
            let location = sample_location(&mut rng, hotspot);
            let publication = Timestamp(t);
            let expiration = publication + Duration(spec.valid_time);
            let task = Task::new(TaskId(0), location, publication, expiration);
            if t < 0.0 {
                history_tasks.insert(task);
            } else {
                tasks.insert(task);
            }
        }

        // Workers: online times spread over the first half of the horizon so
        // supply overlaps demand; locations near hotspots.
        let mut workers = WorkerStore::new();
        for _ in 0..spec.workers {
            let on = rng.gen_range(0.0..(spec.horizon * 0.5));
            let hotspot = pick_hotspot(&mut rng, on);
            let location = sample_location(&mut rng, hotspot);
            let off = on + spec.available_time;
            workers.insert(Worker::new(
                WorkerId(0),
                location,
                spec.reachable_distance,
                Timestamp(on),
                Timestamp(off),
            ));
        }

        SyntheticTrace {
            spec,
            area,
            workers,
            tasks,
            history_tasks,
            hotspots,
        }
    }

    /// The time-ordered arrival-event stream over the evaluation horizon
    /// (workers + tasks), as consumed by the adaptive runner.
    pub fn events(&self) -> Vec<ArrivalEvent> {
        let mut events: Vec<ArrivalEvent> = self
            .workers
            .iter()
            .map(|w| ArrivalEvent::Worker(*w))
            .chain(self.tasks.iter().map(|t| ArrivalEvent::Task(*t)))
            .collect();
        events.sort_by(|a, b| datawa_core::time::cmp_timestamps(a.time(), b.time()));
        events
    }

    /// The replay adapter: the trace's evaluation-horizon workers and tasks
    /// as a `datawa-stream` workload, so the discrete-event engine can drive
    /// the exact stream the legacy synchronous loop consumed. Workers precede
    /// tasks and both keep their dense-id order, matching the stable sort in
    /// [`SyntheticTrace::events`], so an engine run under
    /// `EngineConfig::replay_compat` reproduces the legacy assignment totals.
    pub fn workload(&self) -> datawa_stream::Workload {
        datawa_stream::Workload {
            workers: self.workers.iter().copied().collect(),
            tasks: self.tasks.iter().copied().collect(),
        }
    }

    /// All tasks (history + evaluation horizon) in one store, for building the
    /// full task multivariate time series.
    pub fn all_tasks(&self) -> TaskStore {
        let mut all = TaskStore::new();
        for t in self.history_tasks.iter() {
            all.insert(*t);
        }
        for t in self.tasks.iter() {
            all.insert(*t);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_ii_counts() {
        let y = TraceSpec::yueche();
        assert_eq!(y.workers, 624);
        assert_eq!(y.tasks, 11_052);
        assert_eq!(y.horizon, 7200.0);
        let d = TraceSpec::didi();
        assert_eq!(d.workers, 760);
        assert_eq!(d.tasks, 8_869);
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let spec = TraceSpec::yueche().scaled(0.02);
        let a = SyntheticTrace::generate(spec);
        let b = SyntheticTrace::generate(spec);
        assert_eq!(a.tasks.len(), b.tasks.len());
        assert_eq!(a.workers.len(), b.workers.len());
        assert_eq!(
            a.tasks.get(TaskId(0)).location,
            b.tasks.get(TaskId(0)).location
        );
        let c = SyntheticTrace::generate(spec.with_seed(7));
        assert_ne!(
            a.tasks.get(TaskId(0)).location,
            c.tasks.get(TaskId(0)).location
        );
    }

    #[test]
    fn generated_entities_respect_the_spec() {
        let spec = TraceSpec::didi()
            .scaled(0.05)
            .with_valid_time(30.0)
            .with_reachable_distance(0.5);
        let trace = SyntheticTrace::generate(spec);
        assert_eq!(trace.tasks.len(), spec.tasks);
        assert_eq!(trace.workers.len(), spec.workers);
        for t in trace.tasks.iter() {
            assert!(t.publication.0 >= 0.0 && t.publication.0 < spec.horizon);
            assert!((t.valid_time().seconds() - 30.0).abs() < 1e-9);
            assert!(trace.area.contains(&t.location));
        }
        for t in trace.history_tasks.iter() {
            assert!(t.publication.0 < 0.0 && t.publication.0 >= -spec.history);
        }
        for w in trace.workers.iter() {
            assert!((w.reachable_distance - 0.5).abs() < 1e-9);
            assert!((w.window.length().seconds() - spec.available_time).abs() < 1e-9);
            assert!(trace.area.contains(&w.location));
        }
    }

    #[test]
    fn events_are_time_ordered_and_complete() {
        let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.02));
        let events = trace.events();
        assert_eq!(events.len(), trace.tasks.len() + trace.workers.len());
        for pair in events.windows(2) {
            assert!(pair[0].time().0 <= pair[1].time().0);
        }
    }

    #[test]
    fn tasks_cluster_around_hotspots() {
        let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.1));
        // Average distance from each task to its nearest hotspot should be on
        // the order of the hotspot sigma, far below the uniform-baseline
        // expectation (several kilometres on a 10 km box).
        let mean_nearest: f64 = trace
            .tasks
            .iter()
            .map(|t| {
                trace
                    .hotspots
                    .iter()
                    .map(|h| h.euclidean(&t.location))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / trace.tasks.len() as f64;
        assert!(
            mean_nearest < 2.0 * trace.spec.hotspot_sigma,
            "tasks are not clustered: mean nearest-hotspot distance {mean_nearest:.2} km"
        );
    }

    #[test]
    fn scaling_preserves_the_ratio() {
        let full = TraceSpec::yueche();
        let small = full.scaled(0.1);
        let ratio_full = full.tasks as f64 / full.workers as f64;
        let ratio_small = small.tasks as f64 / small.workers as f64;
        assert!((ratio_full - ratio_small).abs() / ratio_full < 0.05);
    }

    #[test]
    fn all_tasks_concatenates_history_and_horizon() {
        let trace = SyntheticTrace::generate(TraceSpec::didi().scaled(0.02));
        assert_eq!(
            trace.all_tasks().len(),
            trace.tasks.len() + trace.history_tasks.len()
        );
    }
}
