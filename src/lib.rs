//! # datawa
//!
//! Umbrella crate for the DATA-WA reproduction (ICDE 2025: *Demand-based
//! Adaptive Task Assignment with Dynamic Worker Availability Windows*).
//!
//! This crate re-exports the whole workspace so applications can depend on a
//! single crate:
//!
//! * [`core`] — tasks, workers, availability windows, travel model, task
//!   sequences and assignments (Definitions 1–5);
//! * [`geo`] — the uniform grid over the study area and the spatial index;
//! * [`tensor`] — the minimal autograd/NN substrate;
//! * [`graph`] — chordal completion, maximal cliques, recursive tree
//!   construction;
//! * [`obs`] — the zero-overhead observability layer: metrics registry,
//!   mergeable latency histograms, span timers, JSON snapshots and the
//!   counting allocator used by the soak harness;
//! * [`predict`] — task multivariate time series, DDGNN and the LSTM /
//!   Graph-WaveNet baselines;
//! * [`assign`] — reachable tasks, maximal valid sequences, DFSearch, the
//!   Task Value Function, the adaptive streaming runner and the five
//!   evaluated policies;
//! * [`stream`] — the discrete-event streaming engine: the open-loop
//!   session API (live ingest, incremental typed decisions), typed
//!   lifecycle events, deterministic queue, batched re-planning and the
//!   built-in scenario generators;
//! * [`service`] — the long-running dispatch service over sessions: ingest
//!   sources (workload replay, paced live traffic), backpressure and
//!   mid-stream inspection;
//! * [`sim`] — synthetic Yueche/DiDi-like trace generation and the
//!   end-to-end pipeline (driven through the session API).
//!
//! ## Quickstart
//!
//! ```
//! use datawa::prelude::*;
//!
//! // A tiny synthetic trace (1 % of the Yueche-like preset).
//! let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.01));
//! let config = PipelineConfig::default();
//! let summary = run_policy(&trace, PolicyKind::Dta, &[], None, &config);
//! assert!(summary.assigned_tasks <= trace.tasks.len());
//! ```

pub use datawa_assign as assign;
pub use datawa_core as core;
pub use datawa_geo as geo;
pub use datawa_graph as graph;
pub use datawa_net as net;
pub use datawa_obs as obs;
pub use datawa_predict as predict;
pub use datawa_service as service;
pub use datawa_sim as sim;
pub use datawa_stream as stream;
pub use datawa_tensor as tensor;

/// One-stop imports for examples and downstream binaries.
pub mod prelude {
    pub use datawa_assign::{
        AdaptiveRunner, ArrivalEvent, AssignConfig, DirtySet, DispatchRecord, ForecastProvider,
        ForecastStats, IncrementalContext, IncrementalMode, Planner, PolicyKind,
        PredictedTaskInput, RunnerState, SearchMode, StaticForecast, TaskValueFunction,
        TvfInference,
    };
    pub use datawa_core::prelude::*;
    pub use datawa_geo::{GridSpec, ShardId, ShardMap, SpatialIndex, UniformGrid};
    pub use datawa_obs::{Histogram, MetricsRegistry, MetricsSnapshot, SpanTimer};
    pub use datawa_predict::{
        DdgnnPredictor, DemandPredictor, GraphWaveNetPredictor, LstmPredictor,
        OnlineForecastConfig, OnlineForecaster, SeriesDataset, SeriesSpec, TrainingConfig,
    };
    pub use datawa_service::{
        DispatchService, IngestSource, LiveSource, PumpStatus, ServiceConfig, ServiceStats,
        SourcePoll, WorkloadSource,
    };
    #[allow(deprecated)] // the equivalence tests reach the oracle through the prelude
    pub use datawa_sim::run_policy_legacy;
    pub use datawa_sim::{
        online_forecaster, run_policy, run_policy_with_forecast, run_prediction,
        train_tvf_on_prefix, PipelineConfig, SyntheticTrace, TraceSpec,
    };
    pub use datawa_stream::{
        builtin_scenarios, run_workload, run_workload_sharded, ChannelSink, CollectingSink,
        Decision, DecisionSink, EngineConfig, EngineOutcome, Event, EventQueue, HeavyTailedChurn,
        HotspotDrift, IngestError, NullSink, RushHourBurst, ScenarioGenerator, ScenarioSpec,
        Session, SessionSnapshot, ShardedEngineConfig, ShardedStreamEngine, StreamEngine,
        UniformBaseline, Workload,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let w = Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            1.0,
            Timestamp(0.0),
            Timestamp(1.0),
        );
        assert_eq!(w.id, WorkerId(0));
        assert_eq!(PolicyKind::all().len(), 5);
    }
}
