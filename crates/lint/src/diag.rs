//! Diagnostics: findings, severities and the text/JSON renderings.

use std::fmt;

/// How a finding affects the exit code. Every shipping rule is currently
/// `Error`; `Warning` exists so a rule can be introduced observe-only and
/// promoted once the tree is clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the run.
    Warning,
    /// Fails the run (nonzero exit).
    Error,
}

impl Severity {
    /// Lower-case name used in both output formats.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case, as listed in `LINTS.md`).
    pub rule: &'static str,
    /// Exit-code contribution.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of the hazard at this site.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.path,
            self.line,
            self.severity.name(),
            self.rule,
            self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Finding {
    /// Renders the finding as a JSON object (used by `--format json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(self.rule),
            self.severity.name(),
            json_escape(&self.path),
            self.line,
            json_escape(&self.message)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_json_are_stable() {
        let f = Finding {
            rule: "stray-env-read",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "read \"HOME\" directly".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: error[stray-env-read]: read \"HOME\" directly"
        );
        assert!(f.to_json().contains("\\\"HOME\\\""));
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
    }
}
