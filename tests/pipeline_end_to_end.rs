//! End-to-end integration test across crates: synthetic trace → demand
//! prediction → predicted tasks → TVF training → all five assignment
//! policies, checking the qualitative relationships the paper's evaluation
//! reports. The trace generation is fully seeded, so these assertions are
//! deterministic.

use datawa::prelude::*;

fn config() -> PipelineConfig {
    PipelineConfig {
        grid_cells_per_side: 4,
        k: 2,
        history_len: 4,
        training: TrainingConfig {
            epochs: 2,
            learning_rate: 0.02,
        },
        replan_every: 1,
        tvf_training_instants: 3,
        tvf_epochs: 20,
        ..PipelineConfig::default()
    }
}

fn trace() -> SyntheticTrace {
    SyntheticTrace::generate(TraceSpec::yueche().scaled(0.02))
}

#[test]
fn all_policies_produce_bounded_feasible_outcomes() {
    let trace = trace();
    let cfg = config();
    let cells = (cfg.grid_cells_per_side * cfg.grid_cells_per_side) as usize;
    let mut predictor = DdgnnPredictor::with_defaults(cells, cfg.k, 1);
    let (_, predicted) = run_prediction(&mut predictor, &trace, &cfg);
    for policy in PolicyKind::all() {
        let predictions: &[_] = if policy.uses_prediction() {
            &predicted
        } else {
            &[]
        };
        let summary = run_policy(&trace, policy, predictions, None, &cfg);
        assert!(
            summary.assigned_tasks <= trace.tasks.len(),
            "{} assigned more tasks than exist",
            summary.policy
        );
        assert!(summary.mean_cpu_seconds >= 0.0);
        assert_eq!(summary.events, trace.tasks.len() + trace.workers.len());
    }
}

#[test]
fn adaptive_replanning_beats_fixed_assignment_on_the_synthetic_trace() {
    let trace = trace();
    let cfg = config();
    let fta = run_policy(&trace, PolicyKind::Fta, &[], None, &cfg);
    let dta = run_policy(&trace, PolicyKind::Dta, &[], None, &cfg);
    assert!(
        dta.assigned_tasks >= fta.assigned_tasks,
        "DTA ({}) should not fall behind FTA ({})",
        dta.assigned_tasks,
        fta.assigned_tasks
    );
}

#[test]
fn exact_search_assigns_at_least_as_many_as_greedy_per_snapshot() {
    let trace = trace();
    // Snapshot planning comparison at several instants (the Fig. 7/8 ordering
    // at the planning level, where it holds deterministically).
    let config = AssignConfig::default();
    let mut exact = Planner::new(config, SearchMode::Exact);
    let mut greedy = Planner::new(config, SearchMode::Greedy);
    let mut checked = 0;
    for i in 1..6 {
        let now = Timestamp(trace.spec.horizon * i as f64 / 6.0);
        let workers = trace.workers.available_at(now);
        let tasks = trace.tasks.open_at(now);
        if workers.is_empty() || tasks.is_empty() {
            continue;
        }
        let (a_exact, _) = exact.plan(&workers, &tasks, &trace.workers, &trace.tasks, now);
        let (a_greedy, _) = greedy.plan(&workers, &tasks, &trace.workers, &trace.tasks, now);
        assert!(
            a_exact.assigned_count() >= a_greedy.assigned_count(),
            "exact search lost to greedy at t={now}"
        );
        // Both must be feasible single assignments.
        assert!(a_exact
            .validate(&trace.workers, &trace.tasks, &config.travel, now)
            .is_empty());
        assert!(a_greedy
            .validate(&trace.workers, &trace.tasks, &config.travel, now)
            .is_empty());
        checked += 1;
    }
    assert!(checked >= 2, "too few non-trivial snapshots were checked");
}

#[test]
fn prediction_metrics_are_well_formed_for_all_three_models() {
    let trace = trace();
    let cfg = config();
    let cells = (cfg.grid_cells_per_side * cfg.grid_cells_per_side) as usize;
    let mut models: Vec<Box<dyn DemandPredictor>> = vec![
        Box::new(LstmPredictor::new(cfg.k, 8, 2)),
        Box::new(GraphWaveNetPredictor::new(cells, cfg.k, 8, 6, 2)),
        Box::new(DdgnnPredictor::with_defaults(cells, cfg.k, 2)),
    ];
    for model in models.iter_mut() {
        let (summary, predicted) = run_prediction(model.as_mut(), &trace, &cfg);
        assert!(summary.average_precision >= 0.0 && summary.average_precision <= 1.0);
        assert!(summary.train_seconds > 0.0);
        assert!(summary.test_seconds >= 0.0);
        for p in &predicted {
            assert!(p.expiration.0 > p.publication.0);
        }
    }
}
