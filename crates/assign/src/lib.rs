//! # datawa-assign
//!
//! Task assignment for DATA-WA (§IV of the paper): reachable-task computation,
//! maximal valid task sequence generation, the worker dependency graph and its
//! separation into a cluster tree (via `datawa-graph`), the exact DFSearch of
//! Algorithm 1, the Task Value Function trained by Q-learning on DFSearch
//! samples (Eq. 11–12), the TVF-guided search of Algorithm 2, the Task
//! Planning Assignment of Algorithm 4 and the streaming adaptive algorithm of
//! Algorithm 3.
//!
//! The five evaluated methods (Greedy, FTA, DTA, DTA+TP, DATA-WA, §V-B.2) are
//! exposed as [`PolicyKind`] variants interpreted by the adaptive runner.
//!
//! ## Incremental replanning
//!
//! The adaptive runner replans at every time instance, but most events touch
//! only a handful of spatial clusters. The [`cache`] module makes the exact
//! partitioned search *incremental*: work proportional to what changed,
//! output bitwise identical to a full replan.
//!
//! * **Dirty-set rules** ([`DirtySet`]): every world event maps to what it
//!   can invalidate — a task arrival dirties partitions whose workers could
//!   reach the new task; an expiration/serve dirties partitions holding it;
//!   a worker coming online, going offline, or moving dirties its partition;
//!   a forecast refresh bumps the epoch and dirties every
//!   prediction-influenced partition. The tracker is diagnostic: the planner
//!   independently *verifies* every cached entry against the live stores, so
//!   a missed hook can never corrupt a plan.
//! * **Fingerprint definition** ([`PlanCache`]): each partition is keyed by
//!   an FNV-1a hash over the forecast epoch, the sorted member worker ids,
//!   each member's position / reachable distance / availability-window
//!   edges (as exact `f64` bit patterns), and its reachable task list as
//!   stable real ids. A probe additionally compares the regenerated
//!   candidate sequences in full — hash collisions and `now`-dependent
//!   sequence drift both degrade to a recompute, never a wrong reuse.
//! * **Escape hatch**: `DATAWA_INCREMENTAL=off` (or
//!   [`IncrementalMode::Off`] in [`AssignConfig`]) forces full replanning at
//!   every instant, mirroring `DATAWA_THREADS`/`DATAWA_OBS`. Unset means on.
//! * **Exemptions**: the TVF-guided search (DATA-WA) and instants planning
//!   over predicted phantom tasks always take the full path — their inputs
//!   depend on `now` in ways a content fingerprint cannot capture.
//!
//! Reuse is observable through `assign.partitions_reused` /
//! `assign.partitions_recomputed` counters, the `assign.cache_hit_pct`
//! gauge and the `assign.dirty_fraction_pct` histogram, and through
//! [`RunOutcome`]'s reuse totals.

pub mod adaptive;
pub mod cache;
pub mod config;
pub mod forecast;
pub mod partition;
pub mod planner;
pub mod pool;
pub mod reachable;
pub mod search;
pub mod sequences;
pub mod tvf;

pub use adaptive::{
    AdaptiveRunner, ArrivalEvent, DispatchRecord, PolicyKind, PredictedTaskInput, RunOutcome,
    RunnerState,
};
pub use cache::{DirtySet, IncrementalContext, PlanCache};
pub use config::{AssignConfig, IncrementalMode};
pub use forecast::{ForecastProvider, ForecastStats, StaticForecast};
pub use partition::{split_cluster_tree, Partition};
pub use planner::{Planner, PlanningReport, SearchMode};
pub use reachable::{build_worker_dependency_graph, reachable_tasks, ReachableSets};
pub use search::{DfSearch, SearchSample};
pub use sequences::{generate_sequences, generate_sequences_into, GenScratch, SequenceSet};
pub use tvf::{ActionFeatures, StateFeatures, TaskValueFunction, TvfInference};
