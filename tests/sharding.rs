//! Property tests for spatial sharding: the shard map must partition the
//! grid, and the sharded engine's boundary-worker hand-off must neither drop
//! nor double-plan a worker.

use datawa::geo::{GridSpec, ShardId, ShardMap, UniformGrid};
use datawa::prelude::*;
use datawa::stream::{run_workload_sharded, ShardedEngineConfig};
use proptest::prelude::*;

fn grid(rows: u32, cols: u32) -> UniformGrid {
    let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(10.0, 10.0));
    UniformGrid::new(GridSpec::new(area, rows, cols))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every grid cell belongs to exactly one shard, every shard id is in
    /// range, no shard is empty, and the per-shard cell lists reassemble the
    /// whole grid.
    #[test]
    fn shard_map_partitions_the_grid(
        rows in 1usize..24,
        cols in 1usize..24,
        requested in 0usize..32,
    ) {
        let map = ShardMap::new(grid(rows as u32, cols as u32), requested as u32);
        prop_assert!(map.shard_count() >= 1);
        prop_assert!(map.shard_count() <= rows);
        let mut counts = vec![0usize; map.shard_count()];
        for cell in map.grid().cells() {
            let s = map.shard_of_cell(cell);
            prop_assert!(s.index() < map.shard_count());
            counts[s.index()] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), map.grid().cell_count());
        for (s, &count) in counts.iter().enumerate() {
            prop_assert!(count > 0, "shard {} is empty", s);
            prop_assert_eq!(map.cells_of(ShardId(s as u32)).len(), count);
        }
    }

    /// The disc query always contains the point's own shard and is
    /// consistent with the boundary predicate.
    #[test]
    fn disc_queries_contain_the_owner_shard(
        x in -2.0f64..12.0,
        y in -2.0f64..12.0,
        radius in 0.0f64..6.0,
        shards in 1usize..9,
    ) {
        let map = ShardMap::new(grid(12, 12), shards as u32);
        let p = Location::new(x, y);
        let touched = map.shards_within_radius(&p, radius);
        prop_assert!(!touched.is_empty());
        prop_assert!(touched.contains(&map.shard_of(&p)));
        prop_assert_eq!(map.is_boundary(&p, radius), touched.len() > 1);
        // Ascending and within range.
        for w in touched.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(touched.last().unwrap().index() < map.shard_count());
    }

    /// Boundary-worker hand-off never drops or double-plans a worker: the
    /// per-shard routing counters always sum to the workload exactly, for
    /// arbitrary workloads and shard counts, and each shard's outcome is
    /// consistent with the aggregate.
    #[test]
    fn hand_off_routes_every_worker_to_exactly_one_shard(
        worker_specs in prop::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 0.2f64..3.0, 0.0f64..50.0, 60.0f64..400.0),
            1..14,
        ),
        task_specs in prop::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 0.0f64..120.0, 20.0f64..200.0),
            1..30,
        ),
        shards in 1usize..6,
    ) {
        let workers: Vec<Worker> = worker_specs
            .into_iter()
            .map(|(x, y, d, on, len)| {
                Worker::new(WorkerId(0), Location::new(x, y), d, Timestamp(on), Timestamp(on + len))
            })
            .collect();
        let tasks: Vec<Task> = task_specs
            .into_iter()
            .map(|(x, y, p, v)| {
                Task::new(TaskId(0), Location::new(x, y), Timestamp(p), Timestamp(p + v))
            })
            .collect();
        let workload = Workload { workers, tasks };
        let map = ShardMap::new(grid(12, 12), shards as u32);
        let config = AssignConfig {
            travel: TravelModel::euclidean(0.05),
            ..AssignConfig::default()
        };
        let runner = AdaptiveRunner::new(config, PolicyKind::Dta);
        let outcome = run_workload_sharded(
            &runner,
            &workload,
            &[],
            map,
            ShardedEngineConfig::default(),
        );
        let routed_workers: usize = outcome.routing.iter().map(|r| r.workers).sum();
        let routed_tasks: usize = outcome.routing.iter().map(|r| r.tasks).sum();
        prop_assert_eq!(routed_workers, workload.workers.len());
        prop_assert_eq!(routed_tasks, workload.tasks.len());
        prop_assert!(outcome.boundary_workers <= workload.workers.len());
        prop_assert_eq!(outcome.run.events, workload.arrival_count());
        let per_shard: usize = outcome.per_shard.iter().map(|o| o.assigned_tasks).sum();
        prop_assert_eq!(per_shard, outcome.run.assigned_tasks);
        prop_assert!(outcome.run.assigned_tasks <= workload.tasks.len());
        // Per-shard per-worker counts also reconcile with each shard's total
        // (no worker is dispatched by two shards).
        for shard in &outcome.per_shard {
            let sum: usize = shard.per_worker.values().sum();
            prop_assert_eq!(sum, shard.assigned_tasks);
        }
    }
}
