//! A counting global-allocator shim for memory high-water tracking.
//!
//! The soak harness installs [`CountingAlloc`] as its `#[global_allocator]`
//! so each `BENCH_*.json` can report live-heap high-water per run. The shim
//! forwards every call to [`System`] and maintains three relaxed atomics —
//! current live bytes, high-water live bytes, and cumulative allocation
//! count. Library code never installs it; binaries opt in:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: datawa_obs::CountingAlloc = datawa_obs::CountingAlloc::new();
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`System`]-forwarding allocator that tracks live bytes, their
/// high-water mark, and the total allocation count.
#[derive(Debug)]
pub struct CountingAlloc {
    live: AtomicUsize,
    high_water: AtomicUsize,
    allocations: AtomicUsize,
}

impl CountingAlloc {
    /// A zeroed shim (const, so it can be a `static`).
    #[must_use]
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            live: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            allocations: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Largest value [`Self::live_bytes`] has reached.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Total number of allocations served.
    pub fn allocation_count(&self) -> usize {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live size (per-run
    /// baselining in the soak harness).
    pub fn reset_high_water(&self) {
        self.high_water
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    #[inline]
    fn on_alloc(&self, size: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.high_water.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(&self, size: usize) {
        self.live.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the byte counters are observational only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            self.on_dealloc(layout.size());
            self.on_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_a_manual_alloc_cycle() {
        // Exercise the shim directly (not installed globally) with a real
        // System allocation.
        let shim = CountingAlloc::new();
        let layout = Layout::from_size_align(4096, 8).expect("layout");
        unsafe {
            let ptr = shim.alloc(layout);
            assert!(!ptr.is_null());
            assert_eq!(shim.live_bytes(), 4096);
            assert_eq!(shim.allocation_count(), 1);
            assert!(shim.high_water_bytes() >= 4096);
            let bigger = shim.realloc(ptr, layout, 8192);
            assert!(!bigger.is_null());
            assert_eq!(shim.live_bytes(), 8192);
            shim.dealloc(bigger, Layout::from_size_align(8192, 8).expect("layout"));
        }
        assert_eq!(shim.live_bytes(), 0);
        assert!(shim.high_water_bytes() >= 8192);
        shim.reset_high_water();
        assert_eq!(shim.high_water_bytes(), 0);
    }
}
