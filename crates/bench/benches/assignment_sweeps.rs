//! Assignment-cost benchmarks covering the CPU-time panels of Fig. 7–11:
//! one Task Planning Assignment (Algorithm 4) invocation per method while
//! sweeping the workload knobs, on snapshots of the Yueche-like trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datawa_assign::{AssignConfig, Planner, SearchMode, TaskValueFunction};
use datawa_bench::snapshot_at_mid;
use datawa_core::TravelModel;
use datawa_sim::{SyntheticTrace, TraceSpec};
use std::time::Duration;

fn planners() -> Vec<(&'static str, Planner)> {
    let config = AssignConfig {
        travel: TravelModel::urban_driving(),
        ..AssignConfig::default()
    };
    vec![
        ("Greedy", Planner::new(config, SearchMode::Greedy)),
        ("Exact(DTA)", Planner::new(config, SearchMode::Exact)),
        (
            "Guided(DATA-WA)",
            Planner::new(config, SearchMode::Guided).with_tvf(TaskValueFunction::new(16, 0)),
        ),
    ]
}

fn bench_axis<F>(c: &mut Criterion, group_name: &str, values: &[f64], make_spec: F)
where
    F: Fn(f64) -> TraceSpec,
{
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    for &value in values {
        let trace = SyntheticTrace::generate(make_spec(value));
        let (workers, tasks, now) = snapshot_at_mid(&trace);
        for (name, mut planner) in planners() {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{value}")),
                &value,
                |bench, _| {
                    bench.iter(|| {
                        let (assignment, _) =
                            planner.plan(&workers, &tasks, &trace.workers, &trace.tasks, now);
                        std::hint::black_box(assignment.assigned_count())
                    });
                },
            );
        }
    }
    group.finish();
}

/// Fig. 7: effect of |S| on the per-instance planning cost.
fn fig7_tasks(c: &mut Criterion) {
    bench_axis(c, "fig7/cpu_vs_tasks", &[7_000.0, 9_000.0, 11_000.0], |s| {
        TraceSpec::yueche()
            .scaled(0.04)
            .with_tasks((s * 0.04) as usize)
    });
}

/// Fig. 8: effect of |W|.
fn fig8_workers(c: &mut Criterion) {
    bench_axis(c, "fig8/cpu_vs_workers", &[200.0, 400.0, 600.0], |w| {
        TraceSpec::yueche()
            .scaled(0.04)
            .with_workers((w * 0.04) as usize)
    });
}

/// Fig. 9: effect of the reachable distance d.
fn fig9_reachable(c: &mut Criterion) {
    bench_axis(
        c,
        "fig9/cpu_vs_reachable_distance",
        &[0.05, 0.5, 1.0, 5.0],
        |d| TraceSpec::yueche().scaled(0.04).with_reachable_distance(d),
    );
}

/// Fig. 10: effect of the availability window off−on.
fn fig10_availability(c: &mut Criterion) {
    bench_axis(c, "fig10/cpu_vs_available_time", &[0.25, 0.75, 1.25], |h| {
        TraceSpec::yueche().scaled(0.04).with_available_hours(h)
    });
}

/// Fig. 11: effect of the task valid time e−p.
fn fig11_validtime(c: &mut Criterion) {
    bench_axis(c, "fig11/cpu_vs_valid_time", &[10.0, 30.0, 50.0], |v| {
        TraceSpec::yueche().scaled(0.04).with_valid_time(v)
    });
}

criterion_group!(
    benches,
    fig7_tasks,
    fig8_workers,
    fig9_reachable,
    fig10_availability,
    fig11_validtime
);
criterion_main!(benches);
