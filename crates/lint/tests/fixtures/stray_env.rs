// Fixture: stray-env-read. Scanned with `--context assign`; never compiled.

fn positive() {
    let t = std::env::var("DATAWA_THREADS").ok();
    drop(t);
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_env_reads_are_fine_in_tests() {
        let t = std::env::var("DATAWA_THREADS").ok();
        drop(t);
    }
}
