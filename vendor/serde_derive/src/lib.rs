//! No-op derive macros backing the vendored `serde` stub.
//!
//! The stub's `Serialize`/`Deserialize` are blanket-implemented marker
//! traits, so the derives have nothing to generate; they exist only so
//! `#[derive(Serialize, Deserialize)]` keeps compiling.

use proc_macro::TokenStream;

/// Expands to nothing (the stub trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (the stub trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
