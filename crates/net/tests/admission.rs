//! Admission control sheds load visibly: past-quota producers get
//! retry-after frames (the refused events are *not* ingested),
//! `net.rejected_admission` counts every refusal, and tenants inside their
//! quota see decision streams identical to an undisturbed direct run.

use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast, TaskValueFunction};
use datawa_net::{ClientError, NetClient, NetConfig, NetServer, RetryReason};
use datawa_service::{IngestSource, SourcePoll, WorkloadSource};
use datawa_stream::{
    CollectingSink, Decision, EngineConfig, ScenarioGenerator, ScenarioSpec, Session,
    UniformBaseline, Workload,
};

fn direct_decisions(policy: PolicyKind, workload: &Workload) -> Vec<Decision> {
    let mut runner = AdaptiveRunner::new(AssignConfig::default(), policy);
    if policy == PolicyKind::DataWa {
        // NetConfig's default TVF (hidden, seed) pair: identical weights to
        // the server-side pump.
        runner = runner.with_tvf(TaskValueFunction::new(8, 0));
    }
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&runner, &mut forecast, EngineConfig::default());
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        session.ingest(time, event).expect("replay order is valid");
    }
    let mut sink = CollectingSink::new();
    let _ = session.close(&mut sink);
    sink.into_decisions()
}

fn send_all(client: &mut NetClient, workload: &Workload) {
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event).expect("send event frame");
    }
}

#[test]
fn past_quota_producers_get_retry_after_and_calm_tenants_are_unaffected() {
    // DATA-WA plans on every arrival, so the pump drains far slower than a
    // loopback reader can push: a large burst reliably piles the backlog
    // past a small quota.
    let server = NetServer::bind(NetConfig {
        policy: PolicyKind::DataWa,
        tenant_pending_quota: 16,
        retry_after_secs: 0.01,
        ..NetConfig::default()
    })
    .expect("bind loopback");

    // Within quota: a workload whose whole event count fits the quota.
    let calm_workload = UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(10)
            .with_workers(4)
            .with_seed(5),
    )
    .generate();
    let expected_calm = direct_decisions(PolicyKind::DataWa, &calm_workload);

    // Far past quota.
    let flood_workload = UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(1200)
            .with_workers(60)
            .with_seed(6),
    )
    .generate();

    let addr = server.addr();
    let flood = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr, "flood", "").expect("handshake");
        send_all(&mut client, &flood_workload);
        client.close()
    });
    let mut calm_client = NetClient::connect(addr, "calm", "").expect("handshake");
    send_all(&mut calm_client, &calm_workload);
    let calm = calm_client.close();
    let flood = flood.join().expect("flood tenant thread");

    assert!(
        !flood.retry_after.is_empty(),
        "a 1260-event burst against quota 16 must trip admission"
    );
    assert!(
        flood
            .retry_after
            .iter()
            .all(|(secs, reason)| *secs == 0.01 && *reason == RetryReason::TenantQuota),
        "refusals carry the configured backoff and the quota reason: {:?}",
        &flood.retry_after[..flood.retry_after.len().min(3)]
    );

    assert!(calm.retry_after.is_empty(), "calm tenant was throttled");
    assert_eq!(
        calm.decisions, expected_calm,
        "an admitted tenant's decisions must be unaffected by a flooding neighbour"
    );

    let snapshot = server.metrics().snapshot();
    let rejected = snapshot
        .counters
        .get("net.rejected_admission")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        rejected as usize,
        flood.retry_after.len(),
        "net.rejected_admission counts exactly the emitted retry-after frames"
    );
    let flood_rejected = snapshot
        .counters
        .get("net.tenant.flood.rejected")
        .copied()
        .unwrap_or(0);
    assert_eq!(flood_rejected, rejected, "per-tenant counter matches");
    assert_eq!(
        snapshot
            .counters
            .get("net.tenant.calm.rejected")
            .copied()
            .unwrap_or(0),
        0
    );

    // The refused events were dropped, not ingested: the flooding session
    // still closed cleanly and processed its admitted prefix. (Whether that
    // prefix produced assignments depends on which events the pump's drain
    // pace happened to admit, so only processing is asserted.)
    let closed = flood.closed.expect("orderly close");
    assert!(closed.events > 0, "admitted prefix was never processed");
}

#[test]
fn global_overload_sheds_the_stalest_tenant_first() {
    // Tiny global cap, effectively unlimited per-tenant quota: only the
    // server-wide limit can refuse, and it must pick the oldest connection.
    let server = NetServer::bind(NetConfig {
        policy: PolicyKind::DataWa,
        tenant_pending_quota: usize::MAX,
        global_pending_cap: 48,
        ..NetConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    // One big workload for the stale tenant, sent in two halves so every
    // frame respects the connection's non-decreasing-time contract.
    let stale_workload = UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(1200)
            .with_workers(50)
            .with_seed(21),
    )
    .generate();
    let mut stale_events = Vec::new();
    {
        let mut source = WorkloadSource::new(&stale_workload);
        while let SourcePoll::Ready(time, event) = source.poll() {
            stale_events.push((time, event));
        }
    }
    let half = stale_events.len() / 2;

    // Small enough that the young tenant's own backlog can never breach the
    // global cap by itself — only the stale flood can, so the young tenant
    // is provably never the shedding victim.
    let young_workload = UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(30)
            .with_workers(8)
            .with_seed(22),
    )
    .generate();

    // The stale tenant connects first and floods, building global pressure
    // far past the cap (DATA-WA pumps drain slowly).
    let mut stale = NetClient::connect(addr, "stale", "").expect("handshake");
    for (time, event) in &stale_events[..half] {
        stale.send_event(*time, event).expect("send event frame");
    }

    // A younger tenant sends a modest stream: its reader sees the breached
    // cap and sheds the stalest connection — not itself.
    let mut young = NetClient::connect(addr, "young", "").expect("handshake");
    send_all(&mut young, &young_workload);

    // The stale tenant keeps sending while pressure is high and gets
    // refused with the overload reason.
    for (time, event) in &stale_events[half..] {
        stale.send_event(*time, event).expect("send event frame");
    }

    let stale_outcome = stale.close();
    let young_outcome = young.close();

    assert!(
        stale_outcome
            .retry_after
            .iter()
            .any(|(_, reason)| *reason == RetryReason::GlobalOverload),
        "the stalest tenant must be shed under global overload (got {} refusals)",
        stale_outcome.retry_after.len()
    );
    assert!(
        young_outcome
            .retry_after
            .iter()
            .all(|(_, reason)| *reason != RetryReason::GlobalOverload),
        "the younger tenant must not be shed while the stalest one exists"
    );
    assert!(stale_outcome.closed.is_some() && young_outcome.closed.is_some());
}

#[test]
fn connection_cap_refuses_with_retry_after_at_accept() {
    let server = NetServer::bind(NetConfig {
        max_connections: 1,
        retry_after_secs: 0.25,
        ..NetConfig::default()
    })
    .expect("bind loopback");

    let first = NetClient::connect(server.addr(), "first", "").expect("handshake");
    match NetClient::connect(server.addr(), "second", "") {
        Err(ClientError::Busy { retry_after_secs }) => assert_eq!(retry_after_secs, 0.25),
        other => panic!("over-cap connection was not refused with Busy: {other:?}"),
    }
    drop(first.close());

    // Capacity freed: the next connection is served. The connection count
    // drops when the server-side thread finishes, so allow a short grace
    // period for the teardown to land.
    let mut attempts = 0;
    let again = loop {
        match NetClient::connect(server.addr(), "second", "") {
            Ok(client) => break client,
            Err(ClientError::Busy { .. }) if attempts < 100 => {
                attempts += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("post-close handshake failed: {e}"),
        }
    };
    drop(again.close());
}
