//! DFSearch (Algorithm 1), the TVF-guided search (Algorithm 2) and the greedy
//! baseline assignment.
//!
//! Both searches operate on one cluster tree produced by worker dependency
//! separation. Because sibling subtrees are worker-independent (their
//! reachable task sets do not intersect), the searches can consume a shared
//! pool of available tasks sequentially without losing optimality — or, since
//! root subtrees are additionally *task*-independent, each root can be
//! searched against a partition-local available set on its own thread
//! ([`DfSearch::exact_partition`] / [`DfSearch::guided_partition`], driven by
//! the planner's partition pool). The whole-tree entry points below are thin
//! sequential sweeps over the same per-root searches.

use crate::config::AssignConfig;
use crate::reachable::ReachableSets;
use crate::sequences::SequenceSet;
use crate::tvf::{ActionFeatures, StateFeatures, TvfInference};
use datawa_core::{Assignment, TaskId, TaskSequence, TaskStore, Timestamp, WorkerId, WorkerStore};
use datawa_graph::ClusterTree;
use std::collections::{HashMap, HashSet};

/// One `(state, action, reward)` sample collected during exact search, used to
/// train the Task Value Function (Eq. 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSample {
    /// State features at the moment the action was evaluated.
    pub state: StateFeatures,
    /// Action features (worker, sequence).
    pub action: ActionFeatures,
    /// The best cumulative reward observed from this state when taking the
    /// action (the `opt` of Algorithm 1, line 11).
    pub opt: f64,
}

/// Search context shared by the exact and TVF-guided searches.
pub struct DfSearch<'a> {
    workers: &'a WorkerStore,
    tasks: &'a TaskStore,
    config: &'a AssignConfig,
    now: Timestamp,
    sequences: &'a HashMap<WorkerId, SequenceSet>,
    reachable: &'a ReachableSets,
    /// Objective weight of a *real* (already published) task relative to a
    /// *predicted* (future-published) one at this planning instant.
    ///
    /// The planning store mixes both kinds for the prediction-aware
    /// policies (§III-C, §IV-C); scoring them equally would let confident
    /// phantoms displace real work one for one. The weight is
    /// `tasks.len() + 1` — strictly larger than any plan's possible phantom
    /// tally — so the weighted count is a true lexicographic objective even
    /// when summed across a whole partition's plan: maximise real tasks
    /// served first, and use predicted demand only to break ties (pure
    /// positioning). Planning stores without predicted tasks score every
    /// sequence at `weight × len`, so the argmax (and therefore every
    /// non-predictive policy) is bit-identical to the unweighted count.
    real_weight: usize,
    /// Whether the planning store carries any predicted (future-published)
    /// task at all. Phantom-free instants keep every pre-forecast code path
    /// byte-identical (the guided search ranks purely by TVF value, exactly
    /// as before the forecast redesign).
    has_predicted: bool,
}

impl<'a> DfSearch<'a> {
    /// Creates a search context.
    pub fn new(
        workers: &'a WorkerStore,
        tasks: &'a TaskStore,
        config: &'a AssignConfig,
        now: Timestamp,
        sequences: &'a HashMap<WorkerId, SequenceSet>,
        reachable: &'a ReachableSets,
    ) -> DfSearch<'a> {
        let has_predicted = tasks.iter().any(|t| t.publication.0 > now.0);
        DfSearch {
            workers,
            tasks,
            config,
            now,
            sequences,
            reachable,
            real_weight: tasks.len() + 1,
            has_predicted,
        }
    }

    // ------------------------------------------------------------------
    // Exact search (Algorithm 1)
    // ------------------------------------------------------------------

    /// Exact depth-first search over one cluster tree. `mapping[i]` is the
    /// worker id of graph node `i`. When `samples` is provided, `(state,
    /// action, opt)` tuples are appended for TVF training.
    pub fn exact(
        &self,
        tree: &ClusterTree,
        mapping: &[WorkerId],
        available: &mut HashSet<TaskId>,
        mut samples: Option<&mut Vec<SearchSample>>,
    ) -> Assignment {
        let mut assignment = Assignment::new();
        for &root in &tree.roots {
            let plan = self.exact_partition(tree, mapping, root, available, samples.as_deref_mut());
            for (w, seq) in plan {
                for t in seq.iter() {
                    available.remove(&t);
                }
                assignment.set(w, seq);
            }
        }
        assignment
    }

    /// Exact search over a single root subtree (one planning partition).
    ///
    /// `available` is restored to its input state before returning (the
    /// caller commits the plan); because root subtrees are task-disjoint it
    /// may equally be the shared whole-instant set or a partition-local one —
    /// the returned plan is identical, which is what lets the planner run
    /// partitions on a thread pool without changing any assignment.
    pub fn exact_partition(
        &self,
        tree: &ClusterTree,
        mapping: &[WorkerId],
        root: usize,
        available: &mut HashSet<TaskId>,
        samples: Option<&mut Vec<SearchSample>>,
    ) -> Vec<(WorkerId, TaskSequence)> {
        self.exact_partition_counted(tree, mapping, root, available, samples)
            .0
    }

    /// [`DfSearch::exact_partition`] plus the number of search nodes the
    /// budgeted depth-first search actually expanded (the observability
    /// layer's `assign.search_nodes` counter; also a direct read on how much
    /// of [`AssignConfig::search_node_budget`] the instant consumed).
    pub fn exact_partition_counted(
        &self,
        tree: &ClusterTree,
        mapping: &[WorkerId],
        root: usize,
        available: &mut HashSet<TaskId>,
        mut samples: Option<&mut Vec<SearchSample>>,
    ) -> (Vec<(WorkerId, TaskSequence)>, usize) {
        let mut budget = self.config.search_node_budget;
        let (_, plan) = self.exact_node(
            tree,
            mapping,
            root,
            &self.node_workers(tree, mapping, root),
            available,
            &mut budget,
            &mut samples,
        );
        (plan, self.config.search_node_budget - budget)
    }

    /// Weighted objective contribution of one sequence: real tasks (already
    /// published at the planning instant) count `real_weight`, predicted
    /// tasks (publication still in the future) count 1 — see the field's
    /// docs for why this makes the count lexicographic.
    fn sequence_weight(&self, q: &TaskSequence) -> usize {
        q.iter()
            .map(|t| {
                if self.tasks.get(t).publication.0 > self.now.0 {
                    1
                } else {
                    self.real_weight
                }
            })
            .sum()
    }

    fn node_workers(&self, tree: &ClusterTree, mapping: &[WorkerId], node: usize) -> Vec<WorkerId> {
        tree.nodes[node]
            .members
            .iter()
            .map(|&i| mapping[i])
            .collect()
    }

    fn descendant_worker_count(&self, tree: &ClusterTree, node: usize) -> usize {
        tree.nodes[node]
            .children
            .iter()
            .map(|&c| tree.subtree_members(c).len())
            .sum()
    }

    fn state_features(
        &self,
        pending: &[WorkerId],
        descendant_workers: usize,
        available: &HashSet<TaskId>,
    ) -> StateFeatures {
        let remaining_workers = pending.len() + descendant_workers;
        let mean_reachable = if pending.is_empty() {
            0.0
        } else {
            pending
                .iter()
                .map(|w| self.reachable.of(*w).len() as f64)
                .sum::<f64>()
                / pending.len() as f64
        };
        StateFeatures {
            remaining_workers,
            remaining_tasks: available.len(),
            mean_reachable,
        }
    }

    /// Recursive exact search on `node`. `pending` is the queue of this node's
    /// workers not yet branched on. Returns the best count and the plan
    /// achieving it. `available` is restored to its input state before
    /// returning.
    #[allow(clippy::too_many_arguments)]
    fn exact_node(
        &self,
        tree: &ClusterTree,
        mapping: &[WorkerId],
        node: usize,
        pending: &[WorkerId],
        available: &mut HashSet<TaskId>,
        budget: &mut usize,
        samples: &mut Option<&mut Vec<SearchSample>>,
    ) -> (usize, Vec<(WorkerId, TaskSequence)>) {
        if *budget == 0 {
            // Budget exhausted: finish this subtree greedily.
            let mut remaining: Vec<WorkerId> = pending.to_vec();
            for &child in &tree.nodes[node].children {
                remaining.extend(tree.subtree_members(child).into_iter().map(|i| mapping[i]));
            }
            let plan = self.greedy_completion(&remaining, available);
            let count = plan.iter().map(|(_, s)| self.sequence_weight(s)).sum();
            return (count, plan);
        }
        *budget -= 1;

        if pending.is_empty() {
            // All of this node's workers are decided: recurse into children
            // (Algorithm 1, lines 15–16). Children are worker-independent, so
            // a sequential pass over the shared task pool stays exact.
            let mut total = 0;
            let mut plan = Vec::new();
            for &child in &tree.nodes[node].children {
                let child_workers = self.node_workers(tree, mapping, child);
                let (count, child_plan) = self.exact_node(
                    tree,
                    mapping,
                    child,
                    &child_workers,
                    available,
                    budget,
                    samples,
                );
                // Commit the child plan while processing the remaining
                // children, then roll back before returning.
                for (_, seq) in &child_plan {
                    for t in seq.iter() {
                        available.remove(&t);
                    }
                }
                total += count;
                plan.extend(child_plan);
            }
            for (_, seq) in &plan {
                for t in seq.iter() {
                    available.insert(t);
                }
            }
            return (total, plan);
        }

        let worker = pending[0];
        let rest = &pending[1..];
        let descendant_workers = self.descendant_worker_count(tree, node);
        let state = self.state_features(pending, descendant_workers, available);

        // Option 0: leave this worker unassigned.
        let (mut best_count, mut best_plan) =
            self.exact_node(tree, mapping, node, rest, available, budget, samples);

        // Options: every candidate sequence of the worker whose tasks are all
        // still available (Algorithm 1, lines 6–12).
        if let Some(sequence_set) = self.sequences.get(&worker) {
            let worker_record = self.workers.get(worker);
            for q in sequence_set.iter() {
                if !q.iter().all(|t| available.contains(&t)) {
                    continue;
                }
                for t in q.iter() {
                    available.remove(&t);
                }
                let (sub_count, sub_plan) =
                    self.exact_node(tree, mapping, node, rest, available, budget, samples);
                for t in q.iter() {
                    available.insert(t);
                }
                let count = sub_count + self.sequence_weight(q);
                if let Some(out) = samples.as_deref_mut() {
                    out.push(SearchSample {
                        state,
                        action: ActionFeatures::compute(
                            worker_record,
                            q,
                            self.tasks,
                            &self.config.travel,
                            self.now,
                        ),
                        // Report `opt` in task units: training stores hold
                        // only real tasks, so this is exactly the pre-weight
                        // cumulative count.
                        opt: count as f64 / self.real_weight as f64,
                    });
                }
                if count > best_count {
                    best_count = count;
                    let mut plan = sub_plan;
                    plan.push((worker, q.clone()));
                    best_plan = plan;
                }
            }
        }
        (best_count, best_plan)
    }

    // ------------------------------------------------------------------
    // TVF-guided search (Algorithm 2)
    // ------------------------------------------------------------------

    /// Greedy tree traversal guided by the trained Task Value Function: each
    /// worker receives the candidate sequence with the highest predicted
    /// long-term value, without backtracking.
    ///
    /// Takes a [`TvfInference`] snapshot (see [`crate::TaskValueFunction::inference`])
    /// so the same code path serves both the serial sweep here and the
    /// planner's partition pool.
    ///
    /// Unlike the exact search, the guided search *reads* the available set
    /// (its `remaining_tasks` state feature is `available.len()`), so each
    /// root is searched against a partition-local set — the subtree's
    /// reachable tasks still present in `available` — exactly as the
    /// planner's partition pool does. The sweep is therefore bitwise
    /// identical to the pooled path for every thread count, and matches the
    /// subproblem-local features the TVF was trained on.
    pub fn guided(
        &self,
        tree: &ClusterTree,
        mapping: &[WorkerId],
        available: &mut HashSet<TaskId>,
        tvf: &TvfInference,
    ) -> Assignment {
        let mut assignment = Assignment::new();
        for &root in &tree.roots {
            let mut local: HashSet<TaskId> = tree
                .subtree_members(root)
                .into_iter()
                .flat_map(|i| self.reachable.of(mapping[i]).iter().copied())
                .filter(|t| available.contains(t))
                .collect();
            for (w, seq) in self.guided_partition(tree, mapping, root, &mut local, tvf) {
                for t in seq.iter() {
                    available.remove(&t);
                }
                assignment.set(w, seq);
            }
        }
        assignment
    }

    /// Guided search over a single root subtree (one planning partition).
    ///
    /// Assigned tasks are removed from `available` as sequences are pinned
    /// (the guided search never backtracks), so the returned plan is already
    /// exclusive within the partition.
    pub fn guided_partition(
        &self,
        tree: &ClusterTree,
        mapping: &[WorkerId],
        root: usize,
        available: &mut HashSet<TaskId>,
        tvf: &TvfInference,
    ) -> Vec<(WorkerId, TaskSequence)> {
        let mut plan = Vec::new();
        self.guided_node(
            tree,
            mapping,
            root,
            &self.node_workers(tree, mapping, root),
            available,
            tvf,
            &mut plan,
        );
        plan
    }

    #[allow(clippy::too_many_arguments)]
    fn guided_node(
        &self,
        tree: &ClusterTree,
        mapping: &[WorkerId],
        node: usize,
        pending: &[WorkerId],
        available: &mut HashSet<TaskId>,
        tvf: &TvfInference,
        plan: &mut Vec<(WorkerId, TaskSequence)>,
    ) {
        if pending.is_empty() {
            for &child in &tree.nodes[node].children {
                let child_workers = self.node_workers(tree, mapping, child);
                self.guided_node(tree, mapping, child, &child_workers, available, tvf, plan);
            }
            return;
        }
        let worker = pending[0];
        let rest = &pending[1..];
        let descendant_workers = self.descendant_worker_count(tree, node);
        let state = self.state_features(pending, descendant_workers, available);
        // When the planning store carries predicted tasks, rank candidates
        // by real-task count first and TVF value second — the guided
        // analogue of the exact search's lexicographic weighting: predicted
        // tasks steer the choice among equally-real sequences but never
        // displace real work. Phantom-free instants (every non-predictive
        // policy, and prediction-aware ones whose current forecast is
        // empty) rank purely by TVF value, exactly as before the forecast
        // redesign.
        let mut best: Option<(usize, f64, &TaskSequence)> = None;
        if let Some(sequence_set) = self.sequences.get(&worker) {
            let worker_record = self.workers.get(worker);
            for q in sequence_set.iter() {
                if !q.iter().all(|t| available.contains(&t)) {
                    continue;
                }
                let real = if self.has_predicted {
                    q.iter()
                        .filter(|t| self.tasks.get(*t).publication.0 <= self.now.0)
                        .count()
                } else {
                    0 // constant key: ranking falls through to the TVF value
                };
                let action = ActionFeatures::compute(
                    worker_record,
                    q,
                    self.tasks,
                    &self.config.travel,
                    self.now,
                );
                let value = tvf.value(&state, &action);
                if best.is_none_or(|(r, v, _)| real > r || (real == r && value > v)) {
                    best = Some((real, value, q));
                }
            }
        }
        if let Some((_, _, q)) = best {
            for t in q.iter() {
                available.remove(&t);
            }
            plan.push((worker, q.clone()));
        }
        self.guided_node(tree, mapping, node, rest, available, tvf, plan);
    }

    // ------------------------------------------------------------------
    // Greedy baseline
    // ------------------------------------------------------------------

    /// The Greedy baseline of §V-B.2: every worker (in the given order) takes
    /// the longest candidate sequence still fully available.
    pub fn greedy(&self, worker_ids: &[WorkerId], available: &mut HashSet<TaskId>) -> Assignment {
        let plan = self.greedy_completion(worker_ids, available);
        let mut assignment = Assignment::new();
        for (w, seq) in plan {
            for t in seq.iter() {
                available.remove(&t);
            }
            assignment.set(w, seq);
        }
        assignment
    }

    /// Greedy completion used both by the Greedy baseline and as the
    /// budget-exhausted fallback of the exact search. Does not mutate
    /// `available`.
    fn greedy_completion(
        &self,
        worker_ids: &[WorkerId],
        available: &HashSet<TaskId>,
    ) -> Vec<(WorkerId, TaskSequence)> {
        let mut taken: HashSet<TaskId> = HashSet::new();
        let mut plan = Vec::new();
        for &w in worker_ids {
            if let Some(sequence_set) = self.sequences.get(&w) {
                // Sequences are sorted longest-first, so in a phantom-free
                // store (every pre-forecast caller, including the Greedy
                // policy) the first compatible one is the greedy choice and
                // the scan can stop there. With predicted tasks in the
                // store, rank compatible candidates by the lexicographic
                // weight instead, so a budget-exhausted fallback can never
                // hand a worker phantoms over real work.
                let mut compatible = sequence_set.iter().filter(|q| {
                    q.iter()
                        .all(|t| available.contains(&t) && !taken.contains(&t))
                });
                let chosen: Option<&TaskSequence> = if !self.has_predicted {
                    compatible.next()
                } else {
                    let mut best: Option<(usize, &TaskSequence)> = None;
                    for q in compatible {
                        let weight = self.sequence_weight(q);
                        if best.is_none_or(|(bw, _)| weight > bw) {
                            best = Some((weight, q));
                        }
                    }
                    best.map(|(_, q)| q)
                };
                if let Some(q) = chosen {
                    for t in q.iter() {
                        taken.insert(t);
                    }
                    plan.push((w, q.clone()));
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachable::{build_worker_dependency_graph, reachable_tasks};
    use crate::sequences::generate_sequences;
    use crate::tvf::TaskValueFunction;
    use datawa_core::{Location, Task, Worker};

    /// Builds the full search context for a small scenario: two workers close
    /// together competing over three tasks on a line.
    struct Fixture {
        workers: WorkerStore,
        tasks: TaskStore,
        config: AssignConfig,
    }

    fn fixture() -> Fixture {
        let mut workers = WorkerStore::new();
        workers.insert(Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            10.0,
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        workers.insert(Worker::new(
            WorkerId(0),
            Location::new(4.0, 0.0),
            10.0,
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        let mut tasks = TaskStore::new();
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(1.0, 0.0),
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(2.0, 0.0),
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(3.0, 0.0),
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        Fixture {
            workers,
            tasks,
            config: AssignConfig::unit_speed(),
        }
    }

    struct Built {
        sequences: HashMap<WorkerId, SequenceSet>,
        reachable: ReachableSets,
        tree: ClusterTree,
        mapping: Vec<WorkerId>,
    }

    fn build(f: &Fixture) -> Built {
        let wids: Vec<WorkerId> = f.workers.ids().collect();
        let tids: Vec<TaskId> = f.tasks.ids().collect();
        let reachable = reachable_tasks(
            &wids,
            &tids,
            &f.workers,
            &f.tasks,
            &f.config,
            Timestamp(0.0),
        );
        let mut sequences = HashMap::new();
        for &w in &wids {
            sequences.insert(
                w,
                generate_sequences(
                    f.workers.get(w),
                    reachable.of(w),
                    &f.tasks,
                    &f.config,
                    Timestamp(0.0),
                ),
            );
        }
        let (graph, mapping) = build_worker_dependency_graph(&wids, &reachable);
        let tree = ClusterTree::build(&graph);
        Built {
            sequences,
            reachable,
            tree,
            mapping,
        }
    }

    #[test]
    fn exact_search_assigns_all_tasks_when_possible() {
        let f = fixture();
        let b = build(&f);
        let search = DfSearch::new(
            &f.workers,
            &f.tasks,
            &f.config,
            Timestamp(0.0),
            &b.sequences,
            &b.reachable,
        );
        let mut available: HashSet<TaskId> = f.tasks.ids().collect();
        let assignment = search.exact(&b.tree, &b.mapping, &mut available, None);
        assert_eq!(
            assignment.assigned_count(),
            3,
            "all three tasks are assignable"
        );
        assert!(assignment
            .validate(&f.workers, &f.tasks, &f.config.travel, Timestamp(0.0))
            .is_empty());
    }

    #[test]
    fn exact_search_beats_or_matches_greedy() {
        let f = fixture();
        let b = build(&f);
        let search = DfSearch::new(
            &f.workers,
            &f.tasks,
            &f.config,
            Timestamp(0.0),
            &b.sequences,
            &b.reachable,
        );
        let wids: Vec<WorkerId> = f.workers.ids().collect();
        let mut avail_greedy: HashSet<TaskId> = f.tasks.ids().collect();
        let greedy = search.greedy(&wids, &mut avail_greedy);
        let mut avail_exact: HashSet<TaskId> = f.tasks.ids().collect();
        let exact = search.exact(&b.tree, &b.mapping, &mut avail_exact, None);
        assert!(exact.assigned_count() >= greedy.assigned_count());
    }

    #[test]
    fn exact_search_collects_training_samples() {
        let f = fixture();
        let b = build(&f);
        let search = DfSearch::new(
            &f.workers,
            &f.tasks,
            &f.config,
            Timestamp(0.0),
            &b.sequences,
            &b.reachable,
        );
        let mut available: HashSet<TaskId> = f.tasks.ids().collect();
        let mut samples = Vec::new();
        let _ = search.exact(&b.tree, &b.mapping, &mut available, Some(&mut samples));
        assert!(!samples.is_empty());
        // Rewards are bounded by the number of tasks.
        assert!(samples.iter().all(|s| s.opt >= 1.0 && s.opt <= 3.0));
        assert!(samples.iter().all(|s| s.action.sequence_len >= 1));
    }

    #[test]
    fn guided_search_respects_task_exclusivity() {
        let f = fixture();
        let b = build(&f);
        let search = DfSearch::new(
            &f.workers,
            &f.tasks,
            &f.config,
            Timestamp(0.0),
            &b.sequences,
            &b.reachable,
        );
        let tvf = TaskValueFunction::new(8, 0).inference();
        let mut available: HashSet<TaskId> = f.tasks.ids().collect();
        let assignment = search.guided(&b.tree, &b.mapping, &mut available, &tvf);
        // Whatever the untrained TVF picks, the assignment must stay feasible
        // and single-assignment.
        assert!(assignment
            .validate(&f.workers, &f.tasks, &f.config.travel, Timestamp(0.0))
            .is_empty());
        assert!(assignment.assigned_count() <= 3);
    }

    #[test]
    fn trained_tvf_recovers_near_exact_quality_on_the_fixture() {
        let f = fixture();
        let b = build(&f);
        let search = DfSearch::new(
            &f.workers,
            &f.tasks,
            &f.config,
            Timestamp(0.0),
            &b.sequences,
            &b.reachable,
        );
        let mut available: HashSet<TaskId> = f.tasks.ids().collect();
        let mut samples = Vec::new();
        let exact = search.exact(&b.tree, &b.mapping, &mut available, Some(&mut samples));
        let mut tvf = TaskValueFunction::new(16, 3);
        let tuples: Vec<_> = samples.iter().map(|s| (s.state, s.action, s.opt)).collect();
        tvf.train(&tuples, 150, 8, 0.01, 3);
        let mut available: HashSet<TaskId> = f.tasks.ids().collect();
        let guided = search.guided(&b.tree, &b.mapping, &mut available, &tvf.inference());
        assert!(
            guided.assigned_count() + 1 >= exact.assigned_count(),
            "guided search should be within one task of exact on this toy instance (guided={}, exact={})",
            guided.assigned_count(),
            exact.assigned_count()
        );
    }

    #[test]
    fn zero_budget_falls_back_to_greedy_but_stays_feasible() {
        let f = fixture();
        let b = build(&f);
        let mut config = f.config;
        config.search_node_budget = 0;
        let search = DfSearch::new(
            &f.workers,
            &f.tasks,
            &config,
            Timestamp(0.0),
            &b.sequences,
            &b.reachable,
        );
        let mut available: HashSet<TaskId> = f.tasks.ids().collect();
        let assignment = search.exact(&b.tree, &b.mapping, &mut available, None);
        assert!(assignment
            .validate(&f.workers, &f.tasks, &config.travel, Timestamp(0.0))
            .is_empty());
        assert!(assignment.assigned_count() >= 1);
    }
}
