//! Prediction metrics: precision, recall and Average Precision (§V-B.1).
//!
//! The paper computes precision and recall at every threshold in
//! `{0, 0.01, …, 1}` and integrates the area under the precision–recall curve
//! to obtain AP. We follow the same procedure.

/// One point of the precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold.
    pub threshold: f64,
    /// Precision at this threshold (1.0 when nothing is predicted positive).
    pub precision: f64,
    /// Recall at this threshold (1.0 when there are no positives).
    pub recall: f64,
}

/// Precision and recall of `scores >= threshold` against binary `labels`.
pub fn precision_recall_at(scores: &[f64], labels: &[f64], threshold: f64) -> (f64, f64) {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fne = 0.0;
    for (&s, &l) in scores.iter().zip(labels.iter()) {
        let predicted = s >= threshold;
        let positive = l >= 0.5;
        match (predicted, positive) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fne += 1.0,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0.0 { 1.0 } else { tp / (tp + fp) };
    let recall = if tp + fne == 0.0 {
        1.0
    } else {
        tp / (tp + fne)
    };
    (precision, recall)
}

/// The full precision–recall curve over thresholds `0, 0.01, …, 1`.
pub fn pr_curve(scores: &[f64], labels: &[f64]) -> Vec<PrPoint> {
    (0..=100)
        .map(|i| {
            let threshold = i as f64 / 100.0;
            let (precision, recall) = precision_recall_at(scores, labels, threshold);
            PrPoint {
                threshold,
                precision,
                recall,
            }
        })
        .collect()
}

/// Average Precision: the area under the precision–recall curve obtained by
/// sweeping the threshold from 1 down to 0 in steps of 0.01 and summing
/// `(R_i − R_{i−1}) · P_i` (the standard step-wise AP definition; recall is
/// non-decreasing as the threshold drops).
pub fn average_precision(scores: &[f64], labels: &[f64]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for i in (0..=100).rev() {
        let threshold = i as f64 / 100.0;
        let (precision, recall) = precision_recall_at(scores, labels, threshold);
        if recall > prev_recall {
            ap += (recall - prev_recall) * precision;
            prev_recall = recall;
        }
    }
    ap.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_ap_one() {
        let labels = [1.0, 0.0, 1.0, 0.0, 1.0];
        let scores = [0.9, 0.1, 0.95, 0.2, 0.99];
        let ap = average_precision(&scores, &labels);
        assert!(ap > 0.99, "perfect separation should give AP ≈ 1, got {ap}");
    }

    #[test]
    fn inverted_predictions_have_low_ap() {
        let labels = [1.0, 0.0, 1.0, 0.0];
        let scores = [0.1, 0.9, 0.2, 0.8];
        let ap = average_precision(&scores, &labels);
        assert!(
            ap < 0.6,
            "anti-correlated scores should score poorly, got {ap}"
        );
    }

    #[test]
    fn random_predictions_score_near_the_positive_rate() {
        // With constant scores the precision at every attainable threshold is
        // the base rate.
        let labels: Vec<f64> = (0..100)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        let scores = vec![0.5; 100];
        let ap = average_precision(&scores, &labels);
        assert!(
            (ap - 0.25).abs() < 0.02,
            "constant scores should give AP = base rate, got {ap}"
        );
    }

    #[test]
    fn precision_recall_hand_computed() {
        let labels = [1.0, 1.0, 0.0, 0.0];
        let scores = [0.8, 0.4, 0.6, 0.2];
        let (p, r) = precision_recall_at(&scores, &labels, 0.5);
        // Predicted positives: idx 0 (tp) and idx 2 (fp). Recall: 1 of 2.
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        let (p0, r0) = precision_recall_at(&scores, &labels, 0.0);
        assert!((p0 - 0.5).abs() < 1e-12); // everything predicted positive
        assert!((r0 - 1.0).abs() < 1e-12);
        let (p1, r1) = precision_recall_at(&scores, &labels, 0.9);
        assert!((p1 - 1.0).abs() < 1e-12); // nothing predicted -> precision 1 by convention
        assert!((r1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn curve_has_101_points() {
        let labels = [1.0, 0.0];
        let scores = [0.7, 0.3];
        let curve = pr_curve(&scores, &labels);
        assert_eq!(curve.len(), 101);
        assert_eq!(curve[0].threshold, 0.0);
        assert_eq!(curve[100].threshold, 1.0);
    }

    #[test]
    fn better_predictor_has_higher_ap() {
        let labels: Vec<f64> = (0..50).map(|i| if i < 15 { 1.0 } else { 0.0 }).collect();
        let good: Vec<f64> = (0..50)
            .map(|i| {
                if i < 15 {
                    0.8 + (i as f64) * 0.01
                } else {
                    0.3 - (i as f64) * 0.001
                }
            })
            .collect();
        let noisy: Vec<f64> = (0..50)
            .map(|i| if (i * 7) % 3 == 0 { 0.7 } else { 0.4 })
            .collect();
        assert!(average_precision(&good, &labels) > average_precision(&noisy, &labels));
    }

    #[test]
    fn empty_input_gives_zero() {
        assert_eq!(average_precision(&[], &[]), 0.0);
    }
}
