// Fixture: file-level suppression. Scanned with `--context assign`;
// never compiled.
// datawa-lint: allow-file(wall-clock-in-hot-path) -- fixture: this whole file is metric plumbing

fn first() {
    let t = Instant::now();
    drop(t);
}

fn second() {
    let u = Instant::now();
    drop(u);
}
