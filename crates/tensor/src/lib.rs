//! # datawa-tensor
//!
//! A minimal, dependency-free dense linear-algebra and neural-network
//! substrate. The DATA-WA paper trains three neural predictors (an LSTM
//! baseline, a Graph-WaveNet baseline and the proposed DDGNN); mature Rust ML
//! frameworks are outside the dependency budget of this reproduction, so this
//! crate provides exactly the pieces those models need:
//!
//! * [`Matrix`] — row-major `f64` matrices with the usual BLAS-1/2/3-style
//!   operations;
//! * [`Var`] — reverse-mode automatic differentiation over matrices (a small
//!   dynamic tape);
//! * [`layers`] — dense layers, gated dilated causal temporal convolutions and
//!   recurrent cells built on top of the autograd;
//! * [`optim`] — SGD and Adam optimisers;
//! * [`loss`] — mean-squared-error and binary-cross-entropy losses.
//!
//! ```
//! use datawa_tensor::{Matrix, Var};
//!
//! // d/dx sum((x*w)^2) evaluated by the tape.
//! let x = Var::constant(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = Var::parameter(Matrix::from_rows(&[&[3.0], &[4.0]]));
//! let y = x.matmul(&w); // 1x1 = [11]
//! let loss = y.hadamard(&y).sum();
//! loss.backward();
//! // d loss / d w = 2 * (x·w) * x^T = 2*11*[1,2]^T = [22, 44]
//! let g = w.grad();
//! assert!((g.get(0, 0) - 22.0).abs() < 1e-9 && (g.get(1, 0) - 44.0).abs() < 1e-9);
//! ```

pub mod autograd;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;

pub use autograd::Var;
pub use matrix::Matrix;
