//! The discrete-event engine: event loop, batched re-planning, incremental
//! world-view maintenance.

use crate::event::{Event, EventQueue};
use crate::scenario::Workload;
use crate::session::{DecisionSink, NullSink, Session};
use datawa_assign::{
    AdaptiveRunner, ForecastProvider, PredictedTaskInput, RunOutcome, StaticForecast,
};
use datawa_core::Timestamp;

/// Engine knobs: when to re-plan and what happens when a worker leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Trigger a re-plan on every `n`-th arrival event (`1` = the paper's
    /// per-arrival setting, `0` = arrivals never trigger planning — combine
    /// with [`EngineConfig::replan_interval`] for purely time-driven
    /// batching). Dispatching still happens at every arrival either way.
    pub replan_every_events: usize,
    /// Also re-plan every `Δt` simulated seconds via [`Event::ReplanTick`]s.
    pub replan_interval: Option<f64>,
    /// Whether a worker going offline releases the undone tasks of its
    /// planned sequence back to the pool (under FTA they become claimable by
    /// later fixed plans). The legacy synchronous driver never releases, so
    /// [`EngineConfig::replay_compat`] turns this off.
    pub release_on_offline: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            replan_every_events: 1,
            replan_interval: None,
            release_on_offline: true,
        }
    }
}

impl EngineConfig {
    /// Bit-for-bit compatibility with the legacy `AdaptiveRunner::run` loop:
    /// re-plan every `replan_every` arrivals, no time-driven ticks, no
    /// release-on-offline. Running a replayed trace under this config
    /// produces the same assignment totals as the legacy driver.
    #[must_use]
    pub fn replay_compat(replan_every: usize) -> EngineConfig {
        EngineConfig {
            replan_every_events: replan_every.max(1),
            replan_interval: None,
            release_on_offline: false,
        }
    }

    /// Batched planning: re-plan every `n` arrivals instead of every arrival.
    #[must_use]
    pub fn batched(n: usize) -> EngineConfig {
        EngineConfig {
            replan_every_events: n.max(1),
            ..EngineConfig::default()
        }
    }

    /// Purely time-driven planning: re-plan every `delta_t` seconds only.
    #[must_use]
    pub fn ticked(delta_t: f64) -> EngineConfig {
        assert!(delta_t > 0.0, "replan interval must be positive");
        EngineConfig {
            replan_every_events: 0,
            replan_interval: Some(delta_t),
            release_on_offline: true,
        }
    }
}

/// Counters describing one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total events popped from the queue (arrivals + lifecycle + ticks).
    pub events_processed: usize,
    /// Worker-online + task-arrival events.
    pub arrivals: usize,
    /// Task-expiration events fired.
    pub expirations: usize,
    /// Expiration events that actually removed a still-open task from the
    /// view (the rest were already served or lazily pruned).
    pub expired_open: usize,
    /// Worker-offline events fired.
    pub offline: usize,
    /// Re-plan ticks fired.
    pub replan_ticks: usize,
    /// High-water mark of the pending-event queue.
    pub peak_queue_len: usize,
    /// Largest number of independent planning partitions (cluster-tree root
    /// subtrees) any single planning instant split into.
    pub peak_partitions: usize,
    /// Workers in the largest partition observed across the run.
    pub peak_partition_workers: usize,
    /// Largest number of planner-pool threads any planning instant actually
    /// occupied (1 unless `AssignConfig::threads`/`DATAWA_THREADS` enables
    /// the pool and an instant had multiple partitions).
    pub peak_pool_occupancy: usize,
}

/// Result of one engine run: the assignment outcome plus engine counters.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// The policy outcome, identical in shape to the legacy driver's.
    pub run: RunOutcome,
    /// Engine-side counters.
    pub stats: EngineStats,
}

/// The discrete-event simulation engine.
///
/// The engine owns a deterministic [`EventQueue`] and drives an
/// [`AdaptiveRunner`]'s stepwise [`datawa_assign::RunnerState`]:
///
/// * arrivals insert the entity, auto-schedule its lifetime-closing event
///   ([`Event::TaskExpiration`] / [`Event::WorkerOffline`]) and step the
///   runner (dispatch always, planning per the batching config);
/// * lifecycle events maintain the incremental open-task/available-worker
///   views in `O(log n)` — no full store rescans;
/// * [`Event::ReplanTick`]s force a batched re-plan every `Δt` simulated
///   seconds and re-arm themselves while any work remains.
pub struct StreamEngine {
    config: EngineConfig,
    queue: EventQueue,
    stats: EngineStats,
}

impl StreamEngine {
    /// Creates an engine with the given configuration.
    ///
    /// Panics on a non-positive or non-finite `replan_interval`: a tick that
    /// does not advance simulated time would re-arm itself at the head of the
    /// queue forever and the run would never terminate.
    pub fn new(config: EngineConfig) -> StreamEngine {
        if let Some(dt) = config.replan_interval {
            assert!(
                dt.is_finite() && dt > 0.0,
                "replan_interval must be a positive finite number of seconds, got {dt}"
            );
        }
        StreamEngine {
            config,
            queue: EventQueue::new(),
            stats: EngineStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Schedules one event explicitly. Arrival events may be scheduled at any
    /// time; note that expiration/offline events for arrivals are scheduled
    /// automatically by the run loop, using the dense ids the stores assign
    /// in insertion order.
    pub fn schedule(&mut self, time: Timestamp, event: Event) {
        self.queue.push(time, event);
    }

    /// Schedules a whole workload: every worker at its online time, every
    /// task at its publication time.
    pub fn load(&mut self, workload: &Workload) {
        for w in &workload.workers {
            self.queue.push(w.on(), Event::WorkerOnline(*w));
        }
        for t in &workload.tasks {
            self.queue.push(t.publication, Event::TaskArrival(*t));
        }
    }

    /// Number of currently pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Drains the queue, driving `runner` over every event, and returns the
    /// combined outcome. The engine can be re-loaded and re-run afterwards
    /// (stats reset per run).
    ///
    /// This is now a thin wrapper over the open-loop [`Session`] API — open,
    /// ingest everything, drain — with a sink that drops the incremental
    /// decisions and the precomputed `predicted` slice wrapped in a
    /// [`StaticForecast`] (the fixed-oracle bridge); callers that want live
    /// re-forecasting pass a provider to
    /// [`StreamEngine::run_with_forecast`], and callers that want the
    /// decisions drive a [`Session`] directly (or use
    /// [`StreamEngine::run_with_sink`]).
    pub fn run(
        &mut self,
        runner: &AdaptiveRunner,
        predicted: &[PredictedTaskInput],
    ) -> EngineOutcome {
        self.run_with_sink(runner, predicted, &mut NullSink)
    }

    /// [`StreamEngine::run`], but with every incremental [`Decision`]
    /// (dispatches, unserved expirations, worker departures) emitted to
    /// `sink` as it happens.
    ///
    /// [`Decision`]: crate::Decision
    pub fn run_with_sink(
        &mut self,
        runner: &AdaptiveRunner,
        predicted: &[PredictedTaskInput],
        sink: &mut dyn DecisionSink,
    ) -> EngineOutcome {
        let mut forecast = StaticForecast::from_slice(predicted);
        self.run_with_forecast(runner, &mut forecast, sink)
    }

    /// The forecast-native batch entry point: drains the queue through a
    /// session whose predictions come from `forecast` — re-queried at every
    /// planning instant and fed every task arrival — emitting incremental
    /// [`Decision`]s to `sink`.
    ///
    /// [`Decision`]: crate::Decision
    pub fn run_with_forecast(
        &mut self,
        runner: &AdaptiveRunner,
        forecast: &mut dyn ForecastProvider,
        sink: &mut dyn DecisionSink,
    ) -> EngineOutcome {
        self.stats = EngineStats::default();
        let mut session = Session::open(runner, forecast, self.config);
        while let Some(scheduled) = self.queue.pop() {
            session
                .ingest(scheduled.time, scheduled.event)
                // datawa-lint: allow(unwrap-in-hot-path) -- enqueue already validated finiteness; a fresh session cannot reject monotone re-delivery
                .expect("engine queue times are finite and the session is fresh");
        }
        // The engine queue is drained; restart its high-water mark so the
        // next load/run pair reports a per-run peak.
        self.queue.reset_peak();
        let outcome = session.close(sink);
        self.stats = outcome.stats;
        outcome
    }
}

/// Whether the `arrivals_seen`-th arrival (0-based) triggers an event-batched
/// re-plan. Shared with the sharded engine so both count identically.
#[inline]
pub(crate) fn arrival_triggers_replan(config: &EngineConfig, arrivals_seen: usize) -> bool {
    let n = config.replan_every_events;
    n > 0 && arrivals_seen.is_multiple_of(n)
}

/// One-shot convenience: build an engine, load `workload`, run `runner` with
/// the precomputed `predicted` slice as a fixed [`StaticForecast`] oracle.
pub fn run_workload(
    runner: &AdaptiveRunner,
    workload: &Workload,
    predicted: &[PredictedTaskInput],
    config: EngineConfig,
) -> EngineOutcome {
    let mut engine = StreamEngine::new(config);
    engine.load(workload);
    engine.run(runner, predicted)
}

/// One-shot convenience for live forecasting: build an engine, load
/// `workload`, run `runner` with predictions re-queried from `forecast` at
/// every planning instant.
pub fn run_workload_forecast(
    runner: &AdaptiveRunner,
    workload: &Workload,
    forecast: &mut dyn ForecastProvider,
    config: EngineConfig,
) -> EngineOutcome {
    let mut engine = StreamEngine::new(config);
    engine.load(workload);
    engine.run_with_forecast(runner, forecast, &mut NullSink)
}
