//! The fault-tolerance acceptance pins: a dispatch session interrupted at a
//! proptest-chosen point and rebuilt from its [`EventJournal`] must be
//! *bitwise identical* to the uninterrupted run — at the session layer for
//! all four policies on all four scenario generators, and end-to-end over
//! TCP under three injected fault classes (pump kill, connection reset,
//! torn frame) healed by the [`ResilientClient`]'s journaled resume. A
//! torn-write proptest additionally pins that truncating a journal at *any*
//! byte offset recovers a clean record prefix (or a typed error) — never a
//! panic, never silent divergence.

use datawa::net::{
    ChaosPlan, ChaosProxy, Fault, NetConfig, NetServer, ResilientClient, RetryOutcome, RetryPolicy,
};
use datawa::prelude::*;
use datawa::stream::{EventJournal, JournalRecord, SkipSink};
use proptest::prelude::*;

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Greedy,
    PolicyKind::Fta,
    PolicyKind::Dta,
    PolicyKind::DataWa,
];

/// The same (hidden, seed) TVF pair as `NetConfig::default()`, so session
/// runs, direct references and server pumps all share identical weights.
fn runner(policy: PolicyKind) -> AdaptiveRunner {
    let r = AdaptiveRunner::new(AssignConfig::default(), policy);
    if policy == PolicyKind::DataWa {
        r.with_tvf(TaskValueFunction::new(8, 0))
    } else {
        r
    }
}

/// The journaled command stream every driver below applies: ingest each
/// arrival, then advance to its instant — what a live front-end does.
fn commands(workload: &Workload) -> Vec<(Timestamp, Event)> {
    let mut source = WorkloadSource::new(workload);
    let mut out = Vec::new();
    while let SourcePoll::Ready(time, event) = source.poll() {
        out.push((time, event));
    }
    out
}

/// Runs the full command stream uninterrupted (journaling along the way)
/// and returns the outcome, the decision stream, and the journal bytes.
fn uninterrupted(
    policy: PolicyKind,
    workload: &Workload,
) -> (EngineOutcome, Vec<Decision>, Vec<u8>) {
    let r = runner(policy);
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
    session.attach_journal(EventJournal::in_memory());
    let mut sink = CollectingSink::new();
    for (time, event) in commands(workload) {
        session.ingest(time, event).expect("replay order is valid");
        session.advance_to(time, &mut sink);
    }
    let bytes = session
        .journal()
        .expect("journal attached")
        .snapshot_bytes()
        .expect("in-memory journal snapshots");
    let outcome = session.close(&mut sink);
    (outcome, sink.into_decisions(), bytes)
}

/// Runs the first `crash_after` commands, drops the session mid-flight (the
/// crash), recovers a fresh session from the journal, finishes the stream
/// on the recovered session, and returns the outcome plus the full decision
/// stream a client would have observed across both incarnations.
fn crashed_and_recovered(
    policy: PolicyKind,
    workload: &Workload,
    crash_after: usize,
) -> (EngineOutcome, Vec<Decision>) {
    let journal = EventJournal::in_memory();
    let r = runner(policy);
    let cmds = commands(workload);
    let crash_after = crash_after.min(cmds.len());

    // First incarnation: journal attached, dies after `crash_after` commands.
    let mut pre_crash = CollectingSink::new();
    {
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
        session.attach_journal(journal.clone());
        for (time, event) in &cmds[..crash_after] {
            session
                .ingest(*time, event.clone())
                .expect("replay order is valid");
            session.advance_to(*time, &mut pre_crash);
        }
        // Dropped without `close`: the crash. The journal survives.
    }
    let delivered = pre_crash.into_decisions();

    // Second incarnation: replay the journal, suppressing exactly the
    // decision prefix the first incarnation already delivered.
    let mut forecast = StaticForecast::default();
    let mut resumed = SkipSink::new(CollectingSink::new(), delivered.len() as u64);
    let mut session = Session::recover(
        &r,
        &mut forecast,
        EngineConfig::default(),
        journal,
        &mut resumed,
    )
    .expect("journal written through ingest replays cleanly");
    assert_eq!(
        resumed.skipped(),
        delivered.len() as u64,
        "replay emitted fewer decisions than the crashed run delivered"
    );
    for (time, event) in &cmds[crash_after..] {
        session
            .ingest(*time, event.clone())
            .expect("replay order is valid");
        session.advance_to(*time, &mut resumed);
    }
    let outcome = session.close(&mut resumed);

    let mut all = delivered;
    all.extend(resumed.into_inner().into_decisions());
    (outcome, all)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crash → journal recovery is invisible: for every policy on every
    /// generator, a session killed after a proptest-chosen number of
    /// commands and rebuilt from its journal produces the same assignments,
    /// per-worker counts, planning calls, engine counters and the same
    /// client-visible decision stream (no loss, no duplicate) as the run
    /// that never crashed.
    #[test]
    fn recovered_session_is_bitwise_equal_to_uninterrupted(crash_frac in 0.0f64..1.0) {
        let spec = ScenarioSpec::small().with_tasks(60).with_workers(8);
        for scenario in builtin_scenarios(spec) {
            let workload = scenario.generate();
            let n_cmds = commands(&workload).len();
            let crash_after = ((n_cmds as f64) * crash_frac) as usize;
            for policy in POLICIES {
                let label = format!(
                    "{} on {} crashed at {crash_after}/{n_cmds}",
                    policy.name(),
                    scenario.name()
                );
                let (expected, expected_decisions, _) = uninterrupted(policy, &workload);
                let (recovered, recovered_decisions) =
                    crashed_and_recovered(policy, &workload, crash_after);
                prop_assert_eq!(
                    recovered_decisions, expected_decisions,
                    "{}: decision streams diverged", label
                );
                prop_assert_eq!(
                    recovered.run.assigned_tasks, expected.run.assigned_tasks,
                    "{}: assigned totals diverged", label
                );
                prop_assert_eq!(
                    &recovered.run.per_worker, &expected.run.per_worker,
                    "{}: per-worker counts diverged", label
                );
                prop_assert_eq!(
                    recovered.run.planning_calls, expected.run.planning_calls,
                    "{}: planning calls diverged", label
                );
                prop_assert_eq!(
                    recovered.run.events, expected.run.events,
                    "{}: event counts diverged", label
                );
            }
        }
    }

    /// Torn-write safety: a journal truncated at *any* byte offset either
    /// recovers the longest clean record prefix or reports a typed
    /// [`JournalError`] — never a panic, and never records that were not an
    /// exact prefix of the original stream.
    #[test]
    fn truncated_journal_recovers_a_clean_prefix(cut_frac in 0.0f64..1.0) {
        let workload = UniformBaseline::new(
            ScenarioSpec::small().with_tasks(40).with_workers(6),
        )
        .generate();
        let (_, _, bytes) = uninterrupted(PolicyKind::Greedy, &workload);
        let full: Vec<JournalRecord> = EventJournal::from_bytes(bytes.clone())
            .recovered_records()
            .expect("untruncated journal is clean");
        prop_assert!(!full.is_empty());

        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let torn = EventJournal::from_bytes(bytes[..cut].to_vec());
        match torn.recovered_records() {
            Ok(records) => {
                prop_assert!(
                    records.len() <= full.len()
                        && records[..] == full[..records.len()],
                    "recovered records are not a prefix of the original stream"
                );
                // The clean prefix must also replay into a working session.
                let r = runner(PolicyKind::Greedy);
                let mut forecast = StaticForecast::default();
                let mut sink = CollectingSink::new();
                let session = Session::recover(
                    &r,
                    &mut forecast,
                    EngineConfig::default(),
                    torn,
                    &mut sink,
                )
                .expect("clean prefix replays");
                prop_assert!(session.pending() <= full.len());
            }
            Err(err) => {
                // Typed, descriptive — the contract is "no panic, no silent
                // divergence", not "always recoverable".
                let msg = format!("{err}");
                prop_assert!(!msg.is_empty());
            }
        }
    }
}

/// Drives `workload` through a [`ChaosProxy`] into a faulted server and
/// returns what the retrying client delivered plus the attempt count.
fn deliver_through_chaos(
    policy: PolicyKind,
    workload: &Workload,
    plan: ChaosPlan,
    pump_kills: Vec<(String, u64)>,
    seed: u64,
) -> (datawa::net::ClientOutcome, u32, u64) {
    let mut server = NetServer::bind(NetConfig {
        policy,
        pump_kills,
        ..NetConfig::default()
    })
    .expect("bind loopback");
    let mut proxy = ChaosProxy::spawn(server.addr(), plan).expect("bind chaos proxy");

    let mut client = ResilientClient::new(
        proxy.addr(),
        "chaos",
        "",
        RetryPolicy {
            jitter_seed: seed,
            ..RetryPolicy::default()
        },
    );
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event);
    }
    let (outcome, attempts) = match client.deliver() {
        RetryOutcome::Completed { outcome, attempts } => (outcome, attempts),
        RetryOutcome::GaveUp {
            attempts,
            last_error,
        } => panic!("client gave up after {attempts} attempts: {last_error}"),
    };
    let recoveries = server
        .metrics()
        .snapshot()
        .counters
        .get("net.pump_recoveries")
        .copied()
        .unwrap_or(0);
    proxy.shutdown();
    server.shutdown();
    (outcome, attempts, recoveries)
}

/// The wire-level reference: the workload ingested directly, as in
/// `tests/net_equivalence.rs` (events only — the TCP driver sends no
/// explicit advances, so neither does the reference).
fn direct_reference(policy: PolicyKind, workload: &Workload) -> Vec<Decision> {
    let r = runner(policy);
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
    for (time, event) in commands(workload) {
        session.ingest(time, event).expect("replay order is valid");
    }
    let mut sink = CollectingSink::new();
    let _ = session.close(&mut sink);
    sink.into_decisions()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// End-to-end healing under three fault classes at proptest-chosen
    /// points — a pump kill mid-stream, a connection reset, and a torn
    /// frame — for every policy: the retrying client's merged stream is
    /// bitwise equal to the uninterrupted direct run, the server's stream
    /// position agrees, and no client-visible decision is lost or
    /// duplicated.
    #[test]
    fn faulted_delivery_heals_to_bitwise_parity(
        kill_at in 20usize..100,
        reset_after in 10usize..80,
        tear_frame in 10usize..80,
        keep_bytes in 1usize..5,
    ) {
        let (kill_at, reset_after, tear_frame) =
            (kill_at as u64, reset_after as u64, tear_frame as u64);
        let workload: Workload = UniformBaseline::new(
            ScenarioSpec::small().with_tasks(100).with_workers(10).with_seed(7),
        )
        .generate();
        for policy in POLICIES {
            let expected = direct_reference(policy, &workload);
            let plan = ChaosPlan {
                conns: vec![
                    Some(Fault::Reset { after_frames: reset_after }),
                    Some(Fault::Truncate { frame: tear_frame, keep_bytes }),
                ],
            };
            let (outcome, attempts, recoveries) = deliver_through_chaos(
                policy,
                &workload,
                plan,
                vec![("chaos".to_string(), kill_at)],
                kill_at ^ reset_after,
            );
            let label = format!(
                "{} kill@{kill_at} reset@{reset_after} tear@{tear_frame}+{keep_bytes}",
                policy.name()
            );
            prop_assert!(attempts > 1, "{}: no fault actually landed", label);
            prop_assert!(recoveries >= 1, "{}: pump kill never fired", label);
            prop_assert_eq!(
                &outcome.decisions, &expected,
                "{}: healed stream diverged from uninterrupted run", label
            );
            let closed = outcome.closed.expect("orderly Closed frame");
            prop_assert_eq!(
                closed.decisions as usize, expected.len(),
                "{}: server stream position diverged (lost or duplicated)", label
            );
        }
    }
}
