//! CI chaos harness: drive one tenant through a [`ChaosProxy`] that resets
//! the first connection mid-stream and tears a frame on the second, against
//! a server configured to panic the tenant's pump twice at seeded event
//! indices — then assert the [`ResilientClient`] still delivers a decision
//! stream *bitwise identical* to an uninterrupted direct session run.
//! Prints `chaos_ok=1` on success; the whole scenario is replayable from
//! `DATAWA_CHAOS_SEED` (default 218).

use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast, TaskValueFunction};
use datawa_net::{
    ChaosPlan, ChaosProxy, Fault, NetConfig, NetServer, ResilientClient, RetryOutcome, RetryPolicy,
};
use datawa_service::{IngestSource, SourcePoll, WorkloadSource};
use datawa_stream::{
    CollectingSink, Decision, EngineConfig, ScenarioGenerator, ScenarioSpec, Session,
    UniformBaseline, Workload,
};
use rand::prelude::{Rng, SeedableRng, StdRng};

const TENANT: &str = "chaos";

/// The uninterrupted reference: the workload ingested into a session
/// directly, mirroring the server's pump construction exactly.
fn direct_decisions(policy: PolicyKind, workload: &Workload) -> Vec<Decision> {
    let mut runner = AdaptiveRunner::new(AssignConfig::default(), policy);
    if policy == PolicyKind::DataWa {
        runner = runner.with_tvf(TaskValueFunction::new(8, 0));
    }
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&runner, &mut forecast, EngineConfig::default());
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        session.ingest(time, event).expect("replay order is valid");
    }
    let mut sink = CollectingSink::new();
    let _ = session.close(&mut sink);
    sink.into_decisions()
}

fn main() {
    let seed: u64 = datawa_core::env_config::chaos_seed().unwrap_or(218);
    let mut rng = StdRng::seed_from_u64(seed);

    let policy = PolicyKind::Dta;
    let workload: Workload = UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(300)
            .with_workers(20)
            .with_seed(7),
    )
    .generate();
    let expected = direct_decisions(policy, &workload);
    let mut total_events: u64 = 0;
    let mut counter = WorkloadSource::new(&workload);
    while let SourcePoll::Ready(..) = counter.poll() {
        total_events += 1;
    }

    // Two seeded pump kills in the middle half of the stream, strictly
    // ordered so both fire.
    let kill_a = rng.gen_range(total_events / 4..total_events / 2);
    let kill_b = rng.gen_range(total_events / 2..3 * total_events / 4);
    let mut server = NetServer::bind(NetConfig {
        policy,
        pump_kills: vec![(TENANT.into(), kill_a), (TENANT.into(), kill_b)],
        ..NetConfig::default()
    })
    .expect("bind 127.0.0.1:0");

    // Connection 0: reset mid-stream. Connection 1: torn frame. Connection
    // 2: one more seeded fault from the full vocabulary. Everything after
    // that is transparent so the retrying client can finish.
    let reset_at = rng.gen_range(10..total_events / 2);
    let tear_at = rng.gen_range(10..total_events / 2);
    let mut plan = ChaosPlan::seeded(seed, 1, total_events / 2);
    plan.conns.insert(
        0,
        Some(Fault::Reset {
            after_frames: reset_at,
        }),
    );
    plan.conns.insert(
        1,
        Some(Fault::Truncate {
            frame: tear_at,
            keep_bytes: rng.gen_range(1..5usize),
        }),
    );
    let mut proxy = ChaosProxy::spawn(server.addr(), plan.clone()).expect("bind chaos proxy");

    let mut client = ResilientClient::new(
        proxy.addr(),
        TENANT,
        "",
        RetryPolicy {
            jitter_seed: seed,
            ..RetryPolicy::default()
        },
    );
    let mut source = WorkloadSource::new(&workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event);
    }

    let (outcome, attempts) = match client.deliver() {
        RetryOutcome::Completed { outcome, attempts } => (outcome, attempts),
        RetryOutcome::GaveUp {
            attempts,
            last_error,
            // datawa-lint: allow(panic-in-service-path) -- CI harness assertion, not serving code
        } => panic!("chaos tenant gave up after {attempts} attempts: {last_error}"),
    };

    assert!(
        attempts > 1,
        "the fault plan injected nothing — seed {seed} produced a clean run"
    );
    assert_eq!(
        outcome.decisions, expected,
        "recovered decision stream diverged from the uninterrupted run"
    );
    let closed = outcome.closed.expect("orderly Closed frame");
    assert_eq!(
        closed.decisions as usize,
        expected.len(),
        "server-side decision count diverged"
    );
    // `closed.events` counts engine-processed events (arrivals plus the
    // expirations/offlines the engine schedules itself), so the meaningful
    // no-loss/no-dup check is that it is at least every client event once —
    // a double-ingest would also break the bitwise pin above.
    assert!(
        closed.events >= total_events,
        "engine processed fewer events ({}) than the client sent ({total_events})",
        closed.events
    );

    let snapshot = server.metrics().snapshot();
    let recoveries = snapshot
        .counters
        .get("net.pump_recoveries")
        .copied()
        .unwrap_or(0);
    assert!(
        recoveries >= 2,
        "expected both seeded pump kills to trigger recovery, saw {recoveries}"
    );

    proxy.shutdown();
    server.shutdown();

    println!(
        "chaos_smoke seed={seed} attempts={attempts} decisions={} kills=({kill_a},{kill_b}) \
         reset_at={reset_at} tear_at={tear_at} recoveries={recoveries}",
        expected.len()
    );
    println!("chaos_ok=1");
}
