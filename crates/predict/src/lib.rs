//! # datawa-predict
//!
//! Task demand prediction (§III of the DATA-WA paper).
//!
//! The study area is partitioned into a uniform grid (`datawa-geo`); the task
//! history of every cell becomes a *task multivariate time series* of binary
//! occurrence vectors (Eq. 2). Three predictors forecast the next occurrence
//! vector of every cell:
//!
//! * [`LstmPredictor`] — the LSTM baseline of §V-B.1;
//! * [`GraphWaveNetPredictor`] — the Graph-WaveNet baseline (static
//!   self-adaptive adjacency + gated temporal convolution);
//! * [`DdgnnPredictor`] — the proposed Dynamic Dependency-based Graph Neural
//!   Network: a demand-dependency learning module that infers a dynamic
//!   adjacency matrix from the current snapshot (Eq. 4–6), gated dilated
//!   causal temporal convolution (Eq. 7) and APPNP propagation (Eq. 8–9).
//!
//! Predictions above a confidence threshold are converted into *predicted
//! tasks* (located at the centre of their grid cell) that the assignment layer
//! plans for ahead of time (DTA+TP and DATA-WA).
//!
//! ## Live forecasting
//!
//! Batch prediction over a whole trace is the evaluation path; production
//! sessions forecast *live* through the [`ForecastProvider`] API (the trait
//! lives in `datawa-assign`, the consumer layer; this crate re-exports it
//! alongside the model-backed implementation). [`OnlineForecaster`] wraps
//! any trained [`DemandPredictor`] over a [`UniformGrid`](datawa_geo::UniformGrid),
//! maintains the
//! per-cell occurrence series incrementally from the observed arrivals, and
//! re-forecasts the current ΔT window on a configurable refresh cadence —
//! so a long-lived dispatch session tracks demand drift instead of replaying
//! a frozen whole-trace oracle. The worked example below trains a DDGNN on a
//! historical prefix and then lets the forecaster take over online:
//!
//! ```
//! use datawa_core::{BoundingBox, Duration, Location, Task, TaskId, Timestamp};
//! use datawa_geo::{GridSpec, UniformGrid};
//! use datawa_predict::{
//!     DdgnnPredictor, DemandPredictor, ForecastProvider, OnlineForecastConfig,
//!     OnlineForecaster, SeriesDataset, SeriesSpec, TrainingConfig,
//! };
//!
//! // A historical prefix of task publications (here: one cell drumming
//! // every ΔT) becomes the training series …
//! let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(4.0, 4.0));
//! let grid = UniformGrid::new(GridSpec::new(area, 2, 2));
//! let spec = SeriesSpec::new(Timestamp(0.0), 5.0, 2, 2);
//! let mut history = datawa_core::TaskStore::new();
//! for t in 0..40 {
//!     history.insert_with_location(
//!         Location::new(1.0, 1.0),
//!         Timestamp(t as f64 * 5.0),
//!         Timestamp(t as f64 * 5.0 + 40.0),
//!     );
//! }
//! let dataset = SeriesDataset::build(&history, &grid, spec, Timestamp(200.0));
//! let mut model = DdgnnPredictor::with_defaults(grid.cell_count(), spec.k, 7);
//! model.train(&dataset, &TrainingConfig { epochs: 2, learning_rate: 0.02 });
//!
//! // … and the trained model goes live: warm-start on the same prefix,
//! // then observe arrivals / re-forecast as the session advances.
//! let cell_buckets = grid.cell_count() * spec.k;
//! let mut forecaster = OnlineForecaster::new(
//!     Box::new(model),
//!     grid,
//!     spec,
//!     OnlineForecastConfig { threshold: 0.2, ..OnlineForecastConfig::default() },
//! );
//! forecaster.warm_up(&history);
//! let task = Task::new(TaskId(0), Location::new(1.0, 1.0), Timestamp(201.0), Timestamp(241.0));
//! forecaster.observe(task.publication, &task);
//! let predicted = forecaster.forecast(Timestamp(205.0), Duration(60.0));
//! // The rollout covers every ΔT·k window the 60 s lookahead touches.
//! assert!(predicted.len() <= 7 * cell_buckets);
//! assert_eq!(forecaster.stats().refreshes, 1);
//! ```
//!
//! A `datawa_stream::Session` (or the `datawa-service` pump) accepts the
//! forecaster wherever it accepts a
//! [`StaticForecast`]: pass `&mut forecaster`
//! to `Session::open` and every ingested arrival flows into
//! [`ForecastProvider::observe`] automatically while every planning instant
//! of a prediction-aware policy re-queries
//! [`ForecastProvider::forecast`].

pub mod ddgnn;
pub mod dependency;
pub mod forecast;
pub mod graph_wavenet;
pub mod lstm;
pub mod metrics;
pub mod predicted;
pub mod series;
pub mod trainer;

pub use ddgnn::DdgnnPredictor;
pub use dependency::DependencyLearner;
pub use forecast::{OnlineForecastConfig, OnlineForecaster};
pub use graph_wavenet::GraphWaveNetPredictor;
pub use lstm::LstmPredictor;
pub use metrics::{average_precision, precision_recall_at, PrPoint};
pub use predicted::{predicted_tasks_from, PredictedTask};
pub use series::{SeriesDataset, SeriesExample, SeriesSpec};
pub use trainer::{DemandPredictor, EvaluationReport, TrainingConfig};

// The forecast API surface, re-exported from the consumer layer so
// prediction-side users need only this crate.
pub use datawa_assign::{ForecastProvider, ForecastStats, StaticForecast};

use datawa_tensor::Var;

/// Stacks a list of `1 × f` row nodes into an `n × f` node, preserving
/// gradients. Implemented with the existing transpose/concat ops so every
/// model can assemble per-cell features into a node-feature matrix.
pub(crate) fn stack_rows(rows: &[Var]) -> Var {
    assert!(!rows.is_empty(), "cannot stack zero rows");
    let mut acc = rows[0].transpose();
    for row in &rows[1..] {
        acc = acc.concat_cols(&row.transpose());
    }
    acc.transpose()
}

#[cfg(test)]
mod stack_tests {
    use super::stack_rows;
    use datawa_tensor::{Matrix, Var};

    #[test]
    fn stack_rows_builds_the_expected_matrix() {
        let a = Var::constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = Var::constant(Matrix::row_vector(&[3.0, 4.0]));
        let s = stack_rows(&[a, b]).value();
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn stack_rows_is_differentiable() {
        let a = Var::parameter(Matrix::row_vector(&[1.0, 2.0]));
        let b = Var::parameter(Matrix::row_vector(&[3.0, 4.0]));
        let loss = stack_rows(&[a.clone(), b.clone()]).sum();
        loss.backward();
        assert_eq!(a.grad(), Matrix::row_vector(&[1.0, 1.0]));
        assert_eq!(b.grad(), Matrix::row_vector(&[1.0, 1.0]));
    }
}
