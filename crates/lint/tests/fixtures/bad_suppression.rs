// Fixture: invalid-suppression (both failure modes). Never compiled.

fn names_unknown_rule() {
    // datawa-lint: allow(no-such-rule) -- misspelled rule name
    let x = 1;
    drop(x);
}

fn does_not_parse() {
    // datawa-lint: allowing everything forever
    let y = 2;
    drop(y);
}
