//! Tour of the `datawa-stream` discrete-event engine: generate each built-in
//! scenario, run DTA on it, and show how batched re-planning trades planning
//! effort for assignments.
//!
//! ```text
//! cargo run --release --example stream_scenarios
//! ```

use datawa::prelude::*;

fn main() {
    let spec = ScenarioSpec::small();
    println!(
        "engine tour: {} workers, {} tasks, {:.0} s horizon\n",
        spec.workers, spec.tasks, spec.horizon
    );
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Dta);
        let per_arrival = run_workload(&runner, &workload, &[], EngineConfig::default());
        let batched = run_workload(&runner, &workload, &[], EngineConfig::batched(16));
        println!(
            "{:<20} sessions={:<4} per-arrival: {:>3} assigned / {:>4} plans | \
             batched(16): {:>3} assigned / {:>4} plans | {} events, queue peak {}",
            scenario.name(),
            workload.workers.len(),
            per_arrival.run.assigned_tasks,
            per_arrival.run.planning_calls,
            batched.run.assigned_tasks,
            batched.run.planning_calls,
            per_arrival.stats.events_processed,
            per_arrival.stats.peak_queue_len,
        );
    }
    println!("\nevery run above is deterministic: same spec + seed => same numbers.");
}
