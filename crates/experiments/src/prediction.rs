//! The prediction experiments of Fig. 5 (Yueche) and Fig. 6 (DiDi): effect of
//! the time interval ΔT on Average Precision, the number of assigned tasks
//! (when the predictions feed DTA+TP), training time and testing time, for
//! the LSTM, Graph-WaveNet and DDGNN predictors.

use crate::params::{Dataset, ExperimentScale, DELTA_T_SWEEP};
use datawa_assign::PolicyKind;
use datawa_predict::{DdgnnPredictor, DemandPredictor, GraphWaveNetPredictor, LstmPredictor};
use datawa_sim::{run_policy, run_prediction, PipelineConfig, SyntheticTrace};
use serde::Serialize;

/// One row of the Fig. 5/6 series.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionRow {
    /// Dataset name.
    pub dataset: String,
    /// Time interval ΔT, in seconds.
    pub delta_t: f64,
    /// Model name.
    pub model: String,
    /// Average Precision on the test split (Fig. 5a/6a).
    pub average_precision: f64,
    /// Tasks assigned by DTA+TP when fed this model's predictions
    /// (Fig. 5b/6b).
    pub assigned_tasks: usize,
    /// Training time, in seconds (Fig. 5c/6c).
    pub train_seconds: f64,
    /// Testing time, in seconds (Fig. 5d/6d).
    pub test_seconds: f64,
}

/// The three evaluated predictors, freshly constructed per (ΔT, dataset)
/// configuration so their parameter counts match the series width.
fn build_models(cells: usize, k: usize, seed: u64) -> Vec<Box<dyn DemandPredictor>> {
    vec![
        Box::new(LstmPredictor::new(k, 12, seed)),
        Box::new(GraphWaveNetPredictor::new(cells, k, 12, 8, seed)),
        Box::new(DdgnnPredictor::with_defaults(cells, k, seed)),
    ]
}

/// Runs the ΔT sweep of Fig. 5/6 on one dataset. `assign_after_prediction`
/// controls whether the (expensive) DTA+TP run that produces the
/// "number of assigned tasks" panel is executed; when `false` that column is
/// reported as zero.
pub fn prediction_effect_of_delta_t(
    dataset: Dataset,
    scale: ExperimentScale,
    config: &PipelineConfig,
    assign_after_prediction: bool,
) -> Vec<PredictionRow> {
    let mut rows = Vec::new();
    for &delta_t in &DELTA_T_SWEEP {
        let spec = dataset.spec().scaled(scale.factor);
        let trace = SyntheticTrace::generate(spec);
        let mut cfg = *config;
        cfg.delta_t = delta_t;
        let cells = (cfg.grid_cells_per_side * cfg.grid_cells_per_side) as usize;
        for mut model in build_models(cells, cfg.k, spec.seed) {
            let (summary, predicted) = run_prediction(model.as_mut(), &trace, &cfg);
            let assigned = if assign_after_prediction {
                run_policy(&trace, PolicyKind::DtaTp, &predicted, None, &cfg).assigned_tasks
            } else {
                0
            };
            rows.push(PredictionRow {
                dataset: dataset.name().to_string(),
                delta_t,
                model: summary.model,
                average_precision: summary.average_precision,
                assigned_tasks: assigned,
                train_seconds: summary.train_seconds,
                test_seconds: summary.test_seconds,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_predict::TrainingConfig;

    #[test]
    fn sweep_produces_one_row_per_model_per_delta_t() {
        let config = PipelineConfig {
            grid_cells_per_side: 3,
            k: 2,
            history_len: 3,
            training: TrainingConfig {
                epochs: 1,
                learning_rate: 0.02,
            },
            ..PipelineConfig::default()
        };
        // Tiny scale, skip the assignment pass: this is a structure test.
        let rows = prediction_effect_of_delta_t(
            Dataset::Yueche,
            ExperimentScale::fixed(0.005),
            &config,
            false,
        );
        assert_eq!(rows.len(), DELTA_T_SWEEP.len() * 3);
        for row in &rows {
            assert!(row.average_precision >= 0.0 && row.average_precision <= 1.0);
            assert!(row.train_seconds >= 0.0);
            assert_eq!(row.dataset, "Yueche");
        }
        let models: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(models.len(), 3);
    }
}
