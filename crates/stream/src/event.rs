//! Typed simulation events and the deterministic event queue.

use datawa_core::{Task, TaskId, Timestamp, Worker, WorkerId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One discrete event in the simulated world.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A task's lifetime ends (scheduled automatically at insertion time; the
    /// id is the dense store id assigned on arrival).
    TaskExpiration(TaskId),
    /// A worker's availability window closes.
    WorkerOffline(WorkerId),
    /// A worker comes online (the carried record's ids are reassigned densely
    /// by the store on insertion).
    WorkerOnline(Worker),
    /// A task is published.
    TaskArrival(Task),
    /// A batched re-planning instant (scheduled by the engine when a
    /// time-based replan interval Δt is configured).
    ReplanTick,
}

impl Event {
    /// The deterministic same-timestamp processing class of the event.
    ///
    /// Lifetime-closing events come first because both task lifetimes
    /// `[p, e)` and availability windows `[on, off)` are half-open: at the
    /// boundary instant the entity is already gone, so its removal must be
    /// visible to any arrival or replan happening at that exact timestamp.
    /// Worker arrivals precede task arrivals to match the legacy loop's
    /// stable sort over `workers ++ tasks`, and replan ticks run last so a
    /// batched plan at time `t` sees everything that arrived at `t`.
    #[inline]
    pub fn class(&self) -> u8 {
        match self {
            Event::TaskExpiration(_) => 0,
            Event::WorkerOffline(_) => 1,
            Event::WorkerOnline(_) => 2,
            Event::TaskArrival(_) => 3,
            Event::ReplanTick => 4,
        }
    }

    /// Short display name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TaskExpiration(_) => "TaskExpiration",
            Event::WorkerOffline(_) => "WorkerOffline",
            Event::WorkerOnline(_) => "WorkerOnline",
            Event::TaskArrival(_) => "TaskArrival",
            Event::ReplanTick => "ReplanTick",
        }
    }

    /// Whether the event is an arrival (the events the legacy driver counts).
    #[inline]
    pub fn is_arrival(&self) -> bool {
        matches!(self, Event::WorkerOnline(_) | Event::TaskArrival(_))
    }
}

/// An event bound to its firing time and queue sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub time: Timestamp,
    /// FIFO tie-break within the same `(time, class)` bucket.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl ScheduledEvent {
    fn key(&self) -> (f64, u8, u64) {
        (self.time.0, self.event.class(), self.seq)
    }
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        let (t1, c1, s1) = self.key();
        let (t2, c2, s2) = other.key();
        t1.total_cmp(&t2).then(c1.cmp(&c2)).then(s1.cmp(&s2))
    }
}

/// A binary-heap priority queue over [`ScheduledEvent`]s with a fully
/// deterministic pop order: ascending time, then event class (see
/// [`Event::class`]), then insertion order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<ScheduledEvent>>,
    next_seq: u64,
    peak_len: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at `time` (`O(log n)`). Panics on non-finite times:
    /// an event at NaN/∞ would silently never fire or wedge the queue head.
    pub fn push(&mut self, time: Timestamp, event: Event) {
        assert!(
            time.is_finite(),
            "cannot schedule {} at non-finite time {time}",
            event.kind()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(std::cmp::Reverse(ScheduledEvent { time, seq, event }));
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Pops the earliest event (`O(log n)`).
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop().map(|r| r.0)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|r| r.0.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The largest number of events pending at once since the last
    /// [`EventQueue::reset_peak`].
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Restarts the high-water mark at the current length (the engine calls
    /// this at the top of every run so per-run stats do not inherit an
    /// earlier run's peak).
    #[inline]
    pub fn reset_peak(&mut self) {
        self.peak_len = self.heap.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::Location;

    fn task(id: u32) -> Task {
        Task::new(
            TaskId(id),
            Location::new(0.0, 0.0),
            Timestamp(0.0),
            Timestamp(10.0),
        )
    }

    fn worker(id: u32) -> Worker {
        Worker::new(
            WorkerId(id),
            Location::new(0.0, 0.0),
            1.0,
            Timestamp(0.0),
            Timestamp(10.0),
        )
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Timestamp(3.0), Event::ReplanTick);
        q.push(Timestamp(1.0), Event::TaskArrival(task(0)));
        q.push(Timestamp(2.0), Event::WorkerOnline(worker(0)));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn same_timestamp_ties_break_by_class_then_seq() {
        let mut q = EventQueue::new();
        let t = Timestamp(5.0);
        q.push(t, Event::ReplanTick);
        q.push(t, Event::TaskArrival(task(7)));
        q.push(t, Event::WorkerOnline(worker(3)));
        q.push(t, Event::WorkerOffline(WorkerId(1)));
        q.push(t, Event::TaskExpiration(TaskId(2)));
        let kinds: Vec<&'static str> = std::iter::from_fn(|| q.pop())
            .map(|e| e.event.kind())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "TaskExpiration",
                "WorkerOffline",
                "WorkerOnline",
                "TaskArrival",
                "ReplanTick"
            ]
        );
    }

    #[test]
    fn equal_time_and_class_is_fifo() {
        let mut q = EventQueue::new();
        let t = Timestamp(1.0);
        for id in [4u32, 2, 9] {
            q.push(t, Event::TaskArrival(task(id)));
        }
        let ids: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.event {
                Event::TaskArrival(task) => task.id.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![4, 2, 9], "FIFO within the tie bucket");
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Timestamp(i as f64), Event::ReplanTick);
        }
        q.pop();
        q.pop();
        q.push(Timestamp(9.0), Event::ReplanTick);
        assert_eq!(q.peak_len(), 5);
        assert_eq!(q.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_times_are_rejected() {
        let mut q = EventQueue::new();
        q.push(Timestamp(f64::NAN), Event::ReplanTick);
    }
}
