//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace actually serialises data yet (there is no `serde_json` user) —
//! the derives only exist so the domain types stay source-compatible with the
//! real serde when a network-enabled build swaps this stub out. `Serialize`
//! and `Deserialize` are therefore marker traits blanket-implemented for every
//! type, and the derive macros expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_cover_arbitrary_types() {
        fn assert_serialize<T: crate::Serialize>(_: &T) {}
        fn assert_deserialize<T: for<'de> crate::Deserialize<'de>>(_: &T) {}
        assert_serialize(&42u32);
        assert_serialize(&vec![1.0f64]);
        assert_deserialize(&"hello");
    }
}
