//! Log-bucketed latency histograms and the scoped [`SpanTimer`].
//!
//! The histogram is the registry's latency primitive: values (nanoseconds by
//! convention) land in log-linear buckets — every power-of-two octave is
//! split into [`SUB`] linear sub-buckets — so recording is two shifts and one
//! relaxed atomic add, the memory footprint is fixed (`[u64; BUCKETS]`), and
//! quantile estimates carry a bounded relative error of at most `1/SUB`
//! (12.5 %). Buckets are atomics, so any number of threads (or shard
//! sessions) record into one histogram concurrently and the counts merge
//! commutatively and associatively — the same property
//! [`Histogram::merge_from`] exposes for explicitly combining per-thread
//! instances.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of linear sub-buckets per power-of-two octave (3 bits).
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave; also the count of exact small-value buckets.
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: values `0..SUB` get exact buckets, every octave above
/// contributes `SUB` more, up to the full `u64` range.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB as usize + SUB as usize;

/// Bucket index of a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) - SUB) as usize;
        octave * SUB as usize + sub
    }
}

/// Inclusive upper bound of a bucket (what quantile estimation reports, so
/// estimates never under-state a latency).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        index as u64
    } else {
        let octave = (index / SUB as usize) as u32;
        let sub = (index % SUB as usize) as u64;
        let width = 1u64 << (octave - 1);
        (SUB + sub).saturating_mul(width).saturating_add(width - 1)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> HistogramCore {
        // `AtomicU64` is not `Copy`; build the boxed array through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is BUCKETS by construction");
        HistogramCore {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A handle to a registered latency histogram (or a detached no-op).
///
/// Cloning is cheap (an `Arc` bump); clones share the same buckets, which is
/// how per-shard sessions merge into one distribution without locks. All
/// operations on a detached handle (from
/// [`MetricsRegistry::detached`](crate::MetricsRegistry::detached)) are
/// no-ops that never read the clock.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A free-standing attached histogram (not registered anywhere) — for
    /// local aggregation that is merged into a registered one later.
    #[must_use]
    pub fn standalone() -> Histogram {
        Histogram {
            core: Some(Arc::new(HistogramCore::new())),
        }
    }

    /// A detached no-op handle.
    #[must_use]
    pub fn detached() -> Histogram {
        Histogram { core: None }
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_attached(&self) -> bool {
        self.core.is_some()
    }

    /// Records one value (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        let Some(core) = &self.core else { return };
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.min.fetch_min(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration expressed in (non-negative, finite) seconds, as
    /// nanoseconds.
    #[inline]
    pub fn record_seconds(&self, seconds: f64) {
        if self.core.is_some() && seconds.is_finite() && seconds >= 0.0 {
            self.record((seconds * 1e9) as u64);
        }
    }

    /// Starts a scoped timer that records the elapsed nanoseconds into this
    /// histogram when dropped. A detached histogram yields an inert timer
    /// that never reads the clock.
    #[must_use = "the span records on drop; binding it to `_` drops it immediately"]
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer {
            hist: self,
            // The whole point of a span timer; only armed when obs is attached.
            #[allow(clippy::disallowed_methods)]
            start: self.core.as_ref().map(|_| Instant::now()),
        }
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.max.load(Ordering::Relaxed))
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| {
            let m = c.min.load(Ordering::Relaxed);
            if m == u64::MAX {
                0
            } else {
                m
            }
        })
    }

    /// Estimates the `p`-quantile (`p` in `[0, 1]`) from the bucket counts.
    ///
    /// The estimate is the upper bound of the bucket holding the rank-`⌈pN⌉`
    /// value, clamped to the exact recorded maximum, so for a true quantile
    /// value `v ≥ SUB` the estimate `e` satisfies `v ≤ e ≤ v + v/SUB`
    /// (values below [`SUB`] are bucketed exactly). Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let Some(core) = &self.core else { return 0 };
        let counts: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(core.max.load(Ordering::Relaxed));
            }
        }
        core.max.load(Ordering::Relaxed)
    }

    /// Adds every count of `other` into this histogram (threads/shards
    /// merge). Merging is commutative and associative; detached handles on
    /// either side are no-ops.
    pub fn merge_from(&self, other: &Histogram) {
        let (Some(dst), Some(src)) = (&self.core, &other.core) else {
            return;
        };
        if Arc::ptr_eq(dst, src) {
            return; // clones already share buckets
        }
        for (d, s) in dst.buckets.iter().zip(src.buckets.iter()) {
            let v = s.load(Ordering::Relaxed);
            if v > 0 {
                d.fetch_add(v, Ordering::Relaxed);
            }
        }
        dst.count
            .fetch_add(src.count.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.sum
            .fetch_add(src.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.min
            .fetch_min(src.min.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.max
            .fetch_max(src.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The raw bucket counts (test/diagnostic aid; index order matches the
    /// internal `bucket_index` mapping).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core.as_ref().map_or_else(Vec::new, |c| {
            c.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        })
    }

    /// A point-in-time summary (the snapshot form serialized into
    /// `BENCH_*.json`).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSummary {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Estimated median (≤ 12.5 % relative error).
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A scoped timer: created by [`Histogram::span`], records the elapsed
/// nanoseconds into the histogram when dropped. When the histogram is
/// detached the timer holds no start instant and dropping it does nothing —
/// the hot path never touches the clock.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl SpanTimer<'_> {
    /// Stops the timer early and records (equivalent to dropping it).
    pub fn finish(self) {}

    /// Abandons the span without recording anything.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Every representative boundary maps one past its predecessor.
        let mut last = None;
        for v in 0u64..1024 {
            let i = bucket_index(v);
            if let Some(l) = last {
                assert!(i == l || i == l + 1, "index jumped at {v}");
            }
            assert!(bucket_upper(i) >= v, "upper bound below the value at {v}");
            last = Some(i);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::standalone();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, oracle) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = h.percentile(p);
            assert!(est >= oracle, "p{p}: {est} under-states {oracle}");
            assert!(
                est <= oracle + oracle / SUB,
                "p{p}: {est} over-states {oracle} beyond 1/{SUB}"
            );
        }
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn detached_histogram_is_a_no_op_and_span_never_reads_the_clock() {
        let h = Histogram::detached();
        h.record(123);
        h.record_seconds(1.0);
        {
            let span = h.span();
            assert!(span.start.is_none(), "detached span must not read Instant");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn span_records_on_drop_and_cancel_suppresses() {
        let h = Histogram::standalone();
        {
            let _span = h.span();
        }
        assert_eq!(h.count(), 1);
        h.span().cancel();
        assert_eq!(h.count(), 1, "cancelled span recorded anyway");
        h.span().finish();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_accumulates_counts_and_extremes() {
        let a = Histogram::standalone();
        let b = Histogram::standalone();
        a.record(10);
        b.record(1_000_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
        // Self-merge through a clone is a no-op (shared buckets).
        let c = a.clone();
        a.merge_from(&c);
        assert_eq!(a.count(), 2);
    }
}
