//! Simple undirected graphs over dense node indices.

use std::collections::BTreeSet;

/// An undirected graph over nodes `0..n` with set-based adjacency.
///
/// The worker dependency graphs of the paper are small (hundreds of nodes) and
/// sparse, and the algorithms that consume them (MCS, clique enumeration, RTC)
/// need ordered neighbour iteration and O(log n) membership tests, so a
/// `BTreeSet` adjacency representation is a good fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnGraph {
    adj: Vec<BTreeSet<usize>>,
}

impl UnGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> UnGraph {
        UnGraph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Adds the undirected edge `{u, v}` (self-loops are ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        if u == v {
            return;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
    }

    /// Removes the undirected edge `{u, v}` if present.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        if u < self.adj.len() && v < self.adj.len() {
            self.adj[u].remove(&v);
            self.adj[v].remove(&u);
        }
    }

    /// Whether the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u).is_some_and(|s| s.contains(&v))
    }

    /// The neighbours of `u` in ascending order.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter().copied()
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Nodes of the graph (`0..n`).
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.adj.len()
    }

    /// Connected components, each as a sorted list of nodes. Components are
    /// returned in order of their smallest node.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(u) = stack.pop() {
                comp.push(u);
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// Connected components of the graph restricted to `allowed` nodes
    /// (edges with an endpoint outside `allowed` are ignored).
    pub fn components_within(&self, allowed: &BTreeSet<usize>) -> Vec<Vec<usize>> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut components = Vec::new();
        for &start in allowed {
            if seen.contains(&start) {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen.insert(start);
            while let Some(u) = stack.pop() {
                comp.push(u);
                for v in self.neighbors(u) {
                    if allowed.contains(&v) && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// The subgraph induced by `nodes`, together with the mapping from new
    /// (dense) indices back to the original node ids.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (UnGraph, Vec<usize>) {
        let mapping: Vec<usize> = nodes.to_vec();
        let index_of = |orig: usize| mapping.iter().position(|&m| m == orig);
        let mut g = UnGraph::new(mapping.len());
        for (new_u, &orig_u) in mapping.iter().enumerate() {
            for orig_v in self.neighbors(orig_u) {
                if let Some(new_v) = index_of(orig_v) {
                    if new_u < new_v {
                        g.add_edge(new_u, new_v);
                    }
                }
            }
        }
        (g, mapping)
    }

    /// Whether `clique` is a clique in this graph (every pair adjacent).
    pub fn is_clique(&self, clique: &[usize]) -> bool {
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UnGraph {
        let mut g = UnGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = UnGraph::new(3);
        g.add_edge(0, 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        g.add_edge(0, 1); // idempotent
        assert_eq!(g.edge_count(), 1);
        g.remove_edge(0, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = UnGraph::new(2);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn connected_components_of_a_path_and_isolated_nodes() {
        let mut g = path_graph(4);
        // add two isolated nodes
        g = {
            let mut bigger = UnGraph::new(6);
            for u in g.nodes() {
                for v in g.neighbors(u) {
                    if u < v {
                        bigger.add_edge(u, v);
                    }
                }
            }
            bigger
        };
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2, 3]);
        assert_eq!(comps[1], vec![4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn components_within_a_restriction() {
        let g = path_graph(5); // 0-1-2-3-4
        let allowed: BTreeSet<usize> = [0, 1, 3, 4].into_iter().collect();
        let comps = g.components_within(&allowed);
        assert_eq!(comps, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn induced_subgraph_preserves_internal_edges() {
        let mut g = UnGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let (sub, mapping) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(mapping, vec![1, 2, 4]);
        assert!(sub.has_edge(0, 1)); // 1-2 edge survives
        assert!(!sub.has_edge(1, 2)); // 2-4 never existed
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn is_clique_checks_all_pairs() {
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[2])); // singleton is trivially a clique
        assert!(g.is_clique(&[])); // empty set too
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = UnGraph::new(2);
        g.add_edge(0, 5);
    }
}
