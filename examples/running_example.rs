//! The running example of Fig. 1 in the paper: three workers and nine tasks
//! with the exact coordinates, publication and expiration times from the
//! figure's table, a reachable distance of 1.2 units, and unit travel speed.
//!
//! The Fixed Task Assignment baseline serves 5 tasks; the adaptive,
//! re-planning methods serve more because they can reshuffle each worker's
//! remaining sequence as new tasks appear.
//!
//! ```text
//! cargo run --release --example running_example
//! ```

use datawa::prelude::*;

/// The nine tasks of Fig. 1: (x, y, publication, expiration).
const TASKS: [(f64, f64, f64, f64); 9] = [
    (1.5, 1.2, 1.0, 4.0), // s1
    (2.5, 2.0, 1.0, 6.0), // s2
    (2.2, 1.5, 1.0, 4.0), // s3
    (3.2, 1.7, 1.0, 6.0), // s4
    (1.5, 2.5, 2.0, 8.0), // s5
    (2.0, 3.2, 2.0, 8.0), // s6
    (4.0, 1.0, 4.0, 9.0), // s7
    (1.0, 3.0, 4.0, 8.0), // s8
    (1.0, 1.7, 4.0, 9.0), // s9
];

/// The three workers of Fig. 1: (x, y, online time).
const WORKERS: [(f64, f64, f64); 3] = [(0.5, 1.0, 1.0), (2.5, 3.2, 1.0), (4.0, 2.2, 3.0)];

fn stream() -> Vec<ArrivalEvent> {
    let mut events = Vec::new();
    for (i, &(x, y, on)) in WORKERS.iter().enumerate() {
        events.push(ArrivalEvent::Worker(Worker::new(
            WorkerId(i as u32),
            Location::new(x, y),
            1.2,
            Timestamp(on),
            Timestamp(20.0),
        )));
    }
    for (i, &(x, y, p, e)) in TASKS.iter().enumerate() {
        events.push(ArrivalEvent::Task(Task::new(
            TaskId(i as u32),
            Location::new(x, y),
            Timestamp(p),
            Timestamp(e),
        )));
    }
    events
}

fn main() {
    let config = AssignConfig::unit_speed();
    println!("Fig. 1 running example: 3 workers, 9 tasks, reachable distance 1.2, unit speed\n");
    for policy in [PolicyKind::Fta, PolicyKind::Dta, PolicyKind::Greedy] {
        let runner = AdaptiveRunner::new(config, policy);
        let outcome = runner.run(&stream(), &[]);
        println!(
            "{:<8} assigned {} of {} tasks (planning calls: {})",
            policy.name(),
            outcome.assigned_tasks,
            TASKS.len(),
            outcome.planning_calls
        );
        let mut per_worker: Vec<_> = outcome.per_worker.iter().collect();
        per_worker.sort();
        for (worker, count) in per_worker {
            println!("    w{} served {count} task(s)", worker.0 + 1);
        }
    }
    println!("\nThe fixed assignment cannot react to the tasks published at t=2 and t=4,");
    println!(
        "while the dynamic methods reshuffle each worker's remaining sequence and serve more."
    );
}
