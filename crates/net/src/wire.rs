//! The length-prefixed binary wire protocol (see `PROTOCOL.md` at the
//! workspace root for the normative byte-level description).
//!
//! Every frame on the wire is a little-endian `u32` payload length followed
//! by the payload; the payload's first byte is the frame type (client→server
//! types in `0x01..=0x7f`, server→client in `0x80..=0xff`). Payloads are
//! fixed-layout primitives — `f64` as IEEE-754 little-endian bits, strings
//! as a `u16` length plus UTF-8 bytes — so a decoded [`Frame`] re-encodes to
//! the identical bytes (pinned by round-trip proptests in
//! `tests/codec_roundtrip.rs`).
//!
//! Decoding is total: junk bytes, truncated payloads, unknown types,
//! non-finite floats and oversized length prefixes all surface as typed
//! [`WireError`]s, never panics — a misbehaving client must not be able to
//! take down a connection handler with malformed input.

use datawa_core::{
    AvailabilityWindow, Location, Task, TaskId, Timestamp, Worker, WorkerId, WorkerMode,
};
use datawa_stream::{Decision, Event};
use std::io::{Read, Write};

/// Protocol version carried (and checked) in the `Hello` handshake.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame payload. The largest legitimate frame is a
/// `Hello` with maximal tenant/token strings; event and decision frames are
/// all well under 100 bytes. Anything larger is a framing desync or an
/// attack, and is rejected before any allocation of the claimed size.
pub const MAX_FRAME_LEN: usize = 4096;

/// Why an admission was refused, carried in a [`Frame::RetryAfter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryReason {
    /// This tenant's own ingest backlog exceeded its quota.
    TenantQuota,
    /// The server-wide backlog cap was exceeded and this tenant (the
    /// stalest admitter) is being shed until pressure clears.
    GlobalOverload,
    /// The global connection cap was reached; the connection is closed.
    ConnectionCap,
    /// The tenant's pump crashed and is being restarted from its journal;
    /// the event was *not* ingested. Resend it after the suggested backoff.
    Recovering,
}

impl RetryReason {
    fn to_byte(self) -> u8 {
        match self {
            RetryReason::TenantQuota => 0,
            RetryReason::GlobalOverload => 1,
            RetryReason::ConnectionCap => 2,
            RetryReason::Recovering => 3,
        }
    }

    fn from_byte(b: u8) -> Result<RetryReason, WireError> {
        match b {
            0 => Ok(RetryReason::TenantQuota),
            1 => Ok(RetryReason::GlobalOverload),
            2 => Ok(RetryReason::ConnectionCap),
            3 => Ok(RetryReason::Recovering),
            _ => Err(WireError::Malformed("unknown retry-after reason")),
        }
    }
}

/// A fatal protocol error, carried in a [`Frame::Error`] before the server
/// closes the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The first frame was not a well-formed `Hello`.
    BadHello,
    /// The `Hello` version byte does not match [`PROTOCOL_VERSION`].
    VersionMismatch,
    /// The `Hello` token was rejected.
    AuthFailed,
    /// Another live connection already owns this tenant name.
    TenantBusy,
    /// A frame violated the protocol (unknown type, malformed payload,
    /// oversized length prefix, client sent a server-only frame, …).
    Protocol,
    /// An event frame violated the session's time contract (non-finite or
    /// decreasing timestamp, malformed task/worker fields).
    BadEvent,
    /// The tenant's pump exhausted its recovery attempts without making
    /// progress; the ledger survives, so a reconnect may still resume.
    PumpFailed,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadHello => 0,
            ErrorCode::VersionMismatch => 1,
            ErrorCode::AuthFailed => 2,
            ErrorCode::TenantBusy => 3,
            ErrorCode::Protocol => 4,
            ErrorCode::BadEvent => 5,
            ErrorCode::PumpFailed => 6,
        }
    }

    fn from_byte(b: u8) -> Result<ErrorCode, WireError> {
        match b {
            0 => Ok(ErrorCode::BadHello),
            1 => Ok(ErrorCode::VersionMismatch),
            2 => Ok(ErrorCode::AuthFailed),
            3 => Ok(ErrorCode::TenantBusy),
            4 => Ok(ErrorCode::Protocol),
            5 => Ok(ErrorCode::BadEvent),
            6 => Ok(ErrorCode::PumpFailed),
            _ => Err(WireError::Malformed("unknown error code")),
        }
    }
}

/// One protocol frame, client→server or server→client.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- client → server ----
    /// Handshake: must be the first frame on a connection.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u8,
        /// Tenant name this connection ingests for (one live connection per
        /// tenant).
        tenant: String,
        /// Shared-secret auth token (checked when the server has one).
        token: String,
    },
    /// A task publication at `time`.
    TaskArrival {
        /// Ingest instant.
        time: Timestamp,
        /// The published task.
        task: Task,
    },
    /// A worker check-in at `time`.
    WorkerOnline {
        /// Ingest instant.
        time: Timestamp,
        /// The worker coming online.
        worker: Worker,
    },
    /// An externally-driven task expiration.
    TaskExpiration {
        /// Ingest instant.
        time: Timestamp,
        /// The expiring task.
        task: TaskId,
    },
    /// An externally-driven worker departure.
    WorkerOffline {
        /// Ingest instant.
        time: Timestamp,
        /// The departing worker.
        worker: WorkerId,
    },
    /// An explicit re-planning request at `time`.
    ReplanTick {
        /// Ingest instant.
        time: Timestamp,
    },
    /// Advance the session through a quiet period to `time`.
    AdvanceTo {
        /// Target instant.
        time: Timestamp,
    },
    /// Orderly end of the tenant's stream; the server drains the session
    /// and answers with [`Frame::Closed`].
    Close,
    /// Reconnect-and-resume: tells the server how many decision frames the
    /// client has already received, so a recovered pump suppresses exactly
    /// that replayed prefix. As the first post-handshake frame it arms
    /// resume; mid-stream it is a sync ping the server answers with a
    /// [`Frame::ResumeAck`] carrying the current ingested-command count.
    Resume {
        /// Decision frames the client has already received on earlier
        /// connections for this tenant.
        decisions_seen: u64,
    },

    // ---- server → client ----
    /// Handshake accepted.
    HelloAck {
        /// The server's protocol version.
        version: u8,
    },
    /// A worker departs for a task ([`Decision::Dispatch`]).
    Dispatch {
        /// Decision instant.
        at: Timestamp,
        /// Dispatched worker.
        worker: WorkerId,
        /// Task it will serve.
        task: TaskId,
        /// When the worker reaches the task.
        eta: Timestamp,
    },
    /// A task expired unserved ([`Decision::TaskExpired`]).
    TaskExpired {
        /// Expiration instant.
        at: Timestamp,
        /// The lost task.
        task: TaskId,
    },
    /// A worker's availability window closed ([`Decision::WorkerOffline`]).
    OfflineNotice {
        /// Window-close instant.
        at: Timestamp,
        /// The departing worker.
        worker: WorkerId,
    },
    /// Admission refused; the event was *not* ingested. Retry after the
    /// suggested backoff.
    RetryAfter {
        /// Suggested client backoff in seconds.
        seconds: f64,
        /// Which limit was hit.
        reason: RetryReason,
    },
    /// Fatal protocol error; the server closes the connection after this.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answers a [`Frame::Resume`] (and is also sent unconditionally once a
    /// tenant pump starts or restarts): how many of the tenant's commands
    /// (events + advances) the server has durably ingested. A resuming
    /// client replays its command log from this index — commands the server
    /// never admitted are resent, admitted ones are not, so nothing is lost
    /// or double-ingested.
    ResumeAck {
        /// Commands (events + advances) ingested into the tenant's journal.
        events_ingested: u64,
    },
    /// Final frame of an orderly shutdown: the session's totals.
    Closed {
        /// Tasks assigned over the whole session.
        assigned: u64,
        /// Decisions streamed back (dispatches + expirations + offlines).
        decisions: u64,
        /// Events the engine processed (including auto-scheduled lifetimes).
        events: u64,
        /// Planning invocations.
        planning_calls: u64,
    },
}

/// A decode or transport failure.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error.
    Io(std::io::Error),
    /// The length prefix exceeded [`MAX_FRAME_LEN`] (or was zero).
    BadLength(usize),
    /// The payload ended before the advertised field layout.
    Truncated,
    /// The payload's first byte is not a known frame type.
    UnknownType(u8),
    /// A field violated its invariant (bad enum byte, non-UTF-8 string,
    /// non-finite float, trailing garbage).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadLength(n) => {
                write!(f, "frame length {n} outside 1..={MAX_FRAME_LEN}")
            }
            WireError::Truncated => write!(f, "payload shorter than its frame layout"),
            WireError::UnknownType(b) => write!(f, "unknown frame type byte {b:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this is a clean end-of-stream *between* frames (the peer hung
    /// up without violating the protocol mid-frame).
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, WireError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
    }
}

// Frame type bytes. Client→server types have the high bit clear,
// server→client types have it set.
const T_HELLO: u8 = 0x01;
const T_TASK_ARRIVAL: u8 = 0x02;
const T_WORKER_ONLINE: u8 = 0x03;
const T_TASK_EXPIRATION: u8 = 0x04;
const T_WORKER_OFFLINE: u8 = 0x05;
const T_REPLAN_TICK: u8 = 0x06;
const T_ADVANCE_TO: u8 = 0x07;
const T_CLOSE: u8 = 0x08;
const T_RESUME: u8 = 0x09;
const T_HELLO_ACK: u8 = 0x81;
const T_DISPATCH: u8 = 0x82;
const T_TASK_EXPIRED: u8 = 0x83;
const T_OFFLINE_NOTICE: u8 = 0x84;
const T_RETRY_AFTER: u8 = 0x85;
const T_ERROR: u8 = 0x86;
const T_CLOSED: u8 = 0x87;
const T_RESUME_ACK: u8 = 0x88;

/// Sequential payload writer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(ty: u8) -> Enc {
        Enc { buf: vec![ty] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
        self.buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Sequential payload reader over a borrowed slice.
struct Dec<'a> {
    rest: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.rest.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// An `f64` that must be finite (timestamps, coordinates, distances —
    /// the engine rejects or misbehaves on NaN/∞, so the codec refuses them
    /// at the boundary).
    fn finite(&mut self) -> Result<f64, WireError> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::Malformed("non-finite float field"))
        }
    }

    /// Like [`Dec::finite`] but additionally permits `+∞` (open-ended
    /// expirations and availability windows are legal engine inputs).
    fn finite_or_inf(&mut self) -> Result<f64, WireError> {
        let v = self.f64()?;
        if v.is_finite() || v == f64::INFINITY {
            Ok(v)
        } else {
            Err(WireError::Malformed("NaN or -inf float field"))
        }
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("non-UTF-8 string field"))
    }

    fn done(self) -> Result<(), WireError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after frame layout"))
        }
    }
}

impl Frame {
    /// Serialises the frame payload (type byte included, length prefix not).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Hello {
                version,
                tenant,
                token,
            } => {
                let mut e = Enc::new(T_HELLO);
                e.u8(*version);
                e.str(tenant);
                e.str(token);
                e.buf
            }
            Frame::TaskArrival { time, task } => {
                let mut e = Enc::new(T_TASK_ARRIVAL);
                e.f64(time.0);
                e.u32(task.id.0);
                e.f64(task.location.x);
                e.f64(task.location.y);
                e.f64(task.publication.0);
                e.f64(task.expiration.0);
                e.buf
            }
            Frame::WorkerOnline { time, worker } => {
                let mut e = Enc::new(T_WORKER_ONLINE);
                e.f64(time.0);
                e.u32(worker.id.0);
                e.f64(worker.location.x);
                e.f64(worker.location.y);
                e.f64(worker.reachable_distance);
                e.f64(worker.window.on.0);
                e.f64(worker.window.off.0);
                e.u8(match worker.mode {
                    WorkerMode::Online => 0,
                    WorkerMode::Offline => 1,
                });
                e.buf
            }
            Frame::TaskExpiration { time, task } => {
                let mut e = Enc::new(T_TASK_EXPIRATION);
                e.f64(time.0);
                e.u32(task.0);
                e.buf
            }
            Frame::WorkerOffline { time, worker } => {
                let mut e = Enc::new(T_WORKER_OFFLINE);
                e.f64(time.0);
                e.u32(worker.0);
                e.buf
            }
            Frame::ReplanTick { time } => {
                let mut e = Enc::new(T_REPLAN_TICK);
                e.f64(time.0);
                e.buf
            }
            Frame::AdvanceTo { time } => {
                let mut e = Enc::new(T_ADVANCE_TO);
                e.f64(time.0);
                e.buf
            }
            Frame::Close => Enc::new(T_CLOSE).buf,
            Frame::Resume { decisions_seen } => {
                let mut e = Enc::new(T_RESUME);
                e.u64(*decisions_seen);
                e.buf
            }
            Frame::ResumeAck { events_ingested } => {
                let mut e = Enc::new(T_RESUME_ACK);
                e.u64(*events_ingested);
                e.buf
            }
            Frame::HelloAck { version } => {
                let mut e = Enc::new(T_HELLO_ACK);
                e.u8(*version);
                e.buf
            }
            Frame::Dispatch {
                at,
                worker,
                task,
                eta,
            } => {
                let mut e = Enc::new(T_DISPATCH);
                e.f64(at.0);
                e.u32(worker.0);
                e.u32(task.0);
                e.f64(eta.0);
                e.buf
            }
            Frame::TaskExpired { at, task } => {
                let mut e = Enc::new(T_TASK_EXPIRED);
                e.f64(at.0);
                e.u32(task.0);
                e.buf
            }
            Frame::OfflineNotice { at, worker } => {
                let mut e = Enc::new(T_OFFLINE_NOTICE);
                e.f64(at.0);
                e.u32(worker.0);
                e.buf
            }
            Frame::RetryAfter { seconds, reason } => {
                let mut e = Enc::new(T_RETRY_AFTER);
                e.f64(*seconds);
                e.u8(reason.to_byte());
                e.buf
            }
            Frame::Error { code, message } => {
                let mut e = Enc::new(T_ERROR);
                e.u8(code.to_byte());
                e.str(message);
                e.buf
            }
            Frame::Closed {
                assigned,
                decisions,
                events,
                planning_calls,
            } => {
                let mut e = Enc::new(T_CLOSED);
                e.u64(*assigned);
                e.u64(*decisions);
                e.u64(*events);
                e.u64(*planning_calls);
                e.buf
            }
        }
    }

    /// Parses one frame payload (as produced by [`Frame::encode`]).
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let (&ty, rest) = payload
            .split_first()
            .ok_or(WireError::Malformed("empty payload"))?;
        let mut d = Dec { rest };
        let frame = match ty {
            T_HELLO => Frame::Hello {
                version: d.u8()?,
                tenant: d.str()?,
                token: d.str()?,
            },
            T_TASK_ARRIVAL => Frame::TaskArrival {
                time: Timestamp(d.finite()?),
                task: Task {
                    id: TaskId(d.u32()?),
                    location: Location::new(d.finite()?, d.finite()?),
                    publication: Timestamp(d.finite()?),
                    expiration: Timestamp(d.finite_or_inf()?),
                },
            },
            T_WORKER_ONLINE => Frame::WorkerOnline {
                time: Timestamp(d.finite()?),
                // Struct literals, not `Worker::new`: the constructor
                // debug-asserts window sanity, and hostile input must decode
                // to a rejectable value, not a panic. Semantic validation
                // (`is_well_formed`) happens at the server's admission step.
                worker: Worker {
                    id: WorkerId(d.u32()?),
                    location: Location::new(d.finite()?, d.finite()?),
                    reachable_distance: d.finite()?,
                    window: AvailabilityWindow {
                        on: Timestamp(d.finite()?),
                        off: Timestamp(d.finite_or_inf()?),
                    },
                    mode: match d.u8()? {
                        0 => WorkerMode::Online,
                        1 => WorkerMode::Offline,
                        _ => return Err(WireError::Malformed("unknown worker mode")),
                    },
                },
            },
            T_TASK_EXPIRATION => Frame::TaskExpiration {
                time: Timestamp(d.finite()?),
                task: TaskId(d.u32()?),
            },
            T_WORKER_OFFLINE => Frame::WorkerOffline {
                time: Timestamp(d.finite()?),
                worker: WorkerId(d.u32()?),
            },
            T_REPLAN_TICK => Frame::ReplanTick {
                time: Timestamp(d.finite()?),
            },
            T_ADVANCE_TO => Frame::AdvanceTo {
                time: Timestamp(d.finite()?),
            },
            T_CLOSE => Frame::Close,
            T_RESUME => Frame::Resume {
                decisions_seen: d.u64()?,
            },
            T_RESUME_ACK => Frame::ResumeAck {
                events_ingested: d.u64()?,
            },
            T_HELLO_ACK => Frame::HelloAck { version: d.u8()? },
            T_DISPATCH => Frame::Dispatch {
                at: Timestamp(d.finite()?),
                worker: WorkerId(d.u32()?),
                task: TaskId(d.u32()?),
                eta: Timestamp(d.finite_or_inf()?),
            },
            T_TASK_EXPIRED => Frame::TaskExpired {
                at: Timestamp(d.finite()?),
                task: TaskId(d.u32()?),
            },
            T_OFFLINE_NOTICE => Frame::OfflineNotice {
                at: Timestamp(d.finite()?),
                worker: WorkerId(d.u32()?),
            },
            T_RETRY_AFTER => Frame::RetryAfter {
                seconds: d.finite()?,
                reason: RetryReason::from_byte(d.u8()?)?,
            },
            T_ERROR => Frame::Error {
                code: ErrorCode::from_byte(d.u8()?)?,
                message: d.str()?,
            },
            T_CLOSED => Frame::Closed {
                assigned: d.u64()?,
                decisions: d.u64()?,
                events: d.u64()?,
                planning_calls: d.u64()?,
            },
            other => return Err(WireError::UnknownType(other)),
        };
        d.done()?;
        Ok(frame)
    }

    /// Maps a client event frame onto the engine's `(time, event)`
    /// vocabulary; `None` for every non-event frame.
    #[must_use]
    pub fn into_event(self) -> Option<(Timestamp, Event)> {
        match self {
            Frame::TaskArrival { time, task } => Some((time, Event::TaskArrival(task))),
            Frame::WorkerOnline { time, worker } => Some((time, Event::WorkerOnline(worker))),
            Frame::TaskExpiration { time, task } => Some((time, Event::TaskExpiration(task))),
            Frame::WorkerOffline { time, worker } => Some((time, Event::WorkerOffline(worker))),
            Frame::ReplanTick { time } => Some((time, Event::ReplanTick)),
            _ => None,
        }
    }

    /// The event frame carrying `event` at `time` — the inverse of
    /// [`Frame::into_event`].
    #[must_use]
    pub fn from_event(time: Timestamp, event: &Event) -> Frame {
        match event {
            Event::TaskArrival(task) => Frame::TaskArrival { time, task: *task },
            Event::WorkerOnline(worker) => Frame::WorkerOnline {
                time,
                worker: *worker,
            },
            Event::TaskExpiration(task) => Frame::TaskExpiration { time, task: *task },
            Event::WorkerOffline(worker) => Frame::WorkerOffline {
                time,
                worker: *worker,
            },
            Event::ReplanTick => Frame::ReplanTick { time },
        }
    }

    /// The decision frame announcing `decision` — what a routing sink
    /// streams back to the owning connection.
    #[must_use]
    pub fn from_decision(decision: &Decision) -> Frame {
        match *decision {
            Decision::Dispatch {
                at,
                worker,
                task,
                eta,
            } => Frame::Dispatch {
                at,
                worker,
                task,
                eta,
            },
            Decision::TaskExpired { at, task } => Frame::TaskExpired { at, task },
            Decision::WorkerOffline { at, worker } => Frame::OfflineNotice { at, worker },
        }
    }

    /// The decision a server decision frame announces; `None` for every
    /// other frame.
    #[must_use]
    pub fn into_decision(self) -> Option<Decision> {
        match self {
            Frame::Dispatch {
                at,
                worker,
                task,
                eta,
            } => Some(Decision::Dispatch {
                at,
                worker,
                task,
                eta,
            }),
            Frame::TaskExpired { at, task } => Some(Decision::TaskExpired { at, task }),
            Frame::OfflineNotice { at, worker } => Some(Decision::WorkerOffline { at, worker }),
            _ => None,
        }
    }
}

/// Writes one length-prefixed frame. The caller flushes (frames are written
/// through `BufWriter`s; one flush per frame keeps decision latency low
/// without syscall-per-field overhead).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let payload = frame.encode();
    debug_assert!(
        (1..=MAX_FRAME_LEN).contains(&payload.len()),
        "encoded frame violates MAX_FRAME_LEN"
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one length-prefixed frame, rejecting oversized/zero length
/// prefixes *before* reading (or allocating) the payload.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if !(1..=MAX_FRAME_LEN).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Frame::decode(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(
            TaskId(7),
            Location::new(1.5, -2.25),
            Timestamp(3.0),
            Timestamp(9.5),
        )
    }

    fn worker() -> Worker {
        Worker::new(
            WorkerId(11),
            Location::new(0.5, 0.25),
            4.0,
            Timestamp(1.0),
            Timestamp(100.0),
        )
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                tenant: "acme".into(),
                token: "s3cret".into(),
            },
            Frame::TaskArrival {
                time: Timestamp(3.0),
                task: task(),
            },
            Frame::WorkerOnline {
                time: Timestamp(1.0),
                worker: worker(),
            },
            Frame::TaskExpiration {
                time: Timestamp(9.5),
                task: TaskId(7),
            },
            Frame::WorkerOffline {
                time: Timestamp(100.0),
                worker: WorkerId(11),
            },
            Frame::ReplanTick {
                time: Timestamp(4.0),
            },
            Frame::AdvanceTo {
                time: Timestamp(50.0),
            },
            Frame::Close,
            Frame::Resume { decisions_seen: 12 },
            Frame::ResumeAck {
                events_ingested: 345,
            },
            Frame::HelloAck {
                version: PROTOCOL_VERSION,
            },
            Frame::Dispatch {
                at: Timestamp(3.0),
                worker: WorkerId(11),
                task: TaskId(7),
                eta: Timestamp(4.25),
            },
            Frame::TaskExpired {
                at: Timestamp(9.5),
                task: TaskId(7),
            },
            Frame::OfflineNotice {
                at: Timestamp(100.0),
                worker: WorkerId(11),
            },
            Frame::RetryAfter {
                seconds: 0.05,
                reason: RetryReason::TenantQuota,
            },
            Frame::RetryAfter {
                seconds: 0.1,
                reason: RetryReason::Recovering,
            },
            Frame::Error {
                code: ErrorCode::TenantBusy,
                message: "tenant acme already connected".into(),
            },
            Frame::Closed {
                assigned: 42,
                decisions: 99,
                events: 1000,
                planning_calls: 17,
            },
        ]
    }

    #[test]
    fn every_frame_round_trips_bitwise() {
        for frame in all_frames() {
            let payload = frame.encode();
            let back = Frame::decode(&payload).expect("decode own encoding");
            assert_eq!(back, frame);
            assert_eq!(back.encode(), payload, "re-encode is byte-identical");
        }
    }

    #[test]
    fn stream_round_trip_through_a_byte_pipe() {
        let mut pipe = Vec::new();
        for frame in all_frames() {
            write_frame(&mut pipe, &frame).unwrap();
        }
        let mut cursor = std::io::Cursor::new(pipe);
        for frame in all_frames() {
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
        }
        assert!(
            read_frame(&mut cursor).unwrap_err().is_clean_eof(),
            "drained pipe ends cleanly between frames"
        );
    }

    #[test]
    fn oversized_and_zero_length_prefixes_are_rejected_before_allocation() {
        let huge = (u32::MAX).to_le_bytes();
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(huge)),
            Err(WireError::BadLength(_))
        ));
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(zero)),
            Err(WireError::BadLength(0))
        ));
    }

    #[test]
    fn junk_payloads_decode_to_typed_errors_not_panics() {
        assert!(matches!(Frame::decode(&[]), Err(WireError::Malformed(_))));
        assert!(matches!(
            Frame::decode(&[0x42]),
            Err(WireError::UnknownType(0x42))
        ));
        // A truncated task arrival.
        let mut short = Frame::TaskArrival {
            time: Timestamp(3.0),
            task: task(),
        }
        .encode();
        short.truncate(short.len() - 1);
        assert!(matches!(Frame::decode(&short), Err(WireError::Truncated)));
        // Trailing garbage after a complete layout.
        let mut long = Frame::Close.encode();
        long.push(0);
        assert!(matches!(Frame::decode(&long), Err(WireError::Malformed(_))));
    }

    #[test]
    fn non_finite_times_are_refused_at_the_codec() {
        let mut payload = Frame::ReplanTick {
            time: Timestamp(1.0),
        }
        .encode();
        payload[1..9].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            Frame::decode(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn open_ended_expirations_survive_the_wire() {
        let frame = Frame::TaskArrival {
            time: Timestamp(0.0),
            task: Task::new(
                TaskId(1),
                Location::new(0.0, 0.0),
                Timestamp(0.0),
                Timestamp(f64::INFINITY),
            ),
        };
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn journal_bytes_are_wire_event_frame_bytes() {
        // A tenant's journal is the admitted prefix of its wire command
        // stream, byte for byte: `datawa-stream` mirrors this codec without
        // depending on it, so the equivalence is pinned here where both
        // sides are visible.
        use datawa_stream::EventJournal;
        let journal = EventJournal::in_memory();
        let commands = [
            (Timestamp(1.0), Event::WorkerOnline(worker())),
            (Timestamp(3.0), Event::TaskArrival(task())),
            (Timestamp(4.0), Event::ReplanTick),
            (Timestamp(9.5), Event::TaskExpiration(TaskId(7))),
            (Timestamp(100.0), Event::WorkerOffline(WorkerId(11))),
        ];
        let mut pipe = Vec::new();
        for (time, event) in &commands {
            journal.append_event(*time, event).unwrap();
            write_frame(&mut pipe, &Frame::from_event(*time, event)).unwrap();
        }
        journal.append_advance(Timestamp(50.0)).unwrap();
        write_frame(
            &mut pipe,
            &Frame::AdvanceTo {
                time: Timestamp(50.0),
            },
        )
        .unwrap();
        assert_eq!(
            journal.snapshot_bytes().unwrap(),
            pipe,
            "journal byte stream == wire frame stream"
        );
        // And the journal's reader decodes a captured wire stream.
        let recovered = EventJournal::from_bytes(pipe).recovered_records().unwrap();
        assert_eq!(recovered.len(), commands.len() + 1);
    }

    #[test]
    fn event_and_decision_mappings_invert() {
        let arrivals = [
            Event::TaskArrival(task()),
            Event::WorkerOnline(worker()),
            Event::TaskExpiration(TaskId(7)),
            Event::WorkerOffline(WorkerId(11)),
            Event::ReplanTick,
        ];
        for event in arrivals {
            let frame = Frame::from_event(Timestamp(2.0), &event);
            let (t, back) = frame.into_event().expect("event frames map to events");
            assert_eq!(t, Timestamp(2.0));
            assert_eq!(back.kind(), event.kind());
        }
        let decision = Decision::Dispatch {
            at: Timestamp(1.0),
            worker: WorkerId(3),
            task: TaskId(4),
            eta: Timestamp(2.0),
        };
        assert_eq!(
            Frame::from_decision(&decision).into_decision(),
            Some(decision)
        );
        assert_eq!(Frame::Close.into_event(), None);
        assert_eq!(
            Frame::HelloAck {
                version: PROTOCOL_VERSION
            }
            .into_decision(),
            None
        );
    }
}
