//! Append-only event journaling and crash recovery for [`Session`]s.
//!
//! An [`EventJournal`] records every accepted [`Session::ingest`] call and
//! every finite [`Session::advance_to`] target, in call order, as
//! length-prefixed binary records. The record payloads are **byte-identical
//! to the wire protocol's client event frames** (`PROTOCOL.md` types
//! `0x02..=0x07`), so a tenant's journal is literally the admitted prefix of
//! its wire command stream — `datawa-net` pins this equivalence in its codec
//! tests. Because the engine is bitwise-deterministic over its ingest/advance
//! call sequence, replaying a journal into a fresh session
//! ([`Session::recover`]) reproduces the interrupted run's decision stream
//! exactly, decision for decision, bit for bit.
//!
//! Two backends exist, both fsync-free by design (the recovery contract is
//! "whatever the journal holds replays cleanly", not "every write survives
//! power loss"): an in-memory byte buffer for supervised in-process restarts
//! and tests, and an append-only file for recovery across processes. Torn
//! tails — a record cut mid-length-prefix or mid-payload, the signature of a
//! crash during append — are silently dropped, yielding the longest clean
//! prefix; a *complete* record that fails to decode is a typed
//! [`JournalError::Corrupt`], never a panic.
//!
//! [`Session`]: crate::Session
//! [`Session::ingest`]: crate::Session::ingest
//! [`Session::advance_to`]: crate::Session::advance_to
//! [`Session::recover`]: crate::Session::recover

use crate::event::Event;
use crate::session::{Decision, DecisionSink, IngestError};
use datawa_core::{
    AvailabilityWindow, Location, Task, TaskId, Timestamp, Worker, WorkerId, WorkerMode,
};
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Upper bound on a journal record payload, mirroring the wire protocol's
/// `MAX_FRAME_LEN`. Event records are all under 100 bytes; a larger length
/// prefix means the byte stream is not a journal.
pub const MAX_RECORD_LEN: usize = 4096;

// Record type bytes — the wire protocol's client event frame types. Kept
// numerically identical so journal bytes and wire frame bytes interconvert
// without translation (pinned by a cross-check test in `datawa-net`).
const R_TASK_ARRIVAL: u8 = 0x02;
const R_WORKER_ONLINE: u8 = 0x03;
const R_TASK_EXPIRATION: u8 = 0x04;
const R_WORKER_OFFLINE: u8 = 0x05;
const R_REPLAN_TICK: u8 = 0x06;
const R_ADVANCE_TO: u8 = 0x07;

/// One replayable session command.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// An accepted [`Session::ingest`](crate::Session::ingest) call.
    Event(Timestamp, Event),
    /// A finite [`Session::advance_to`](crate::Session::advance_to) target.
    Advance(Timestamp),
}

/// Why a journal operation failed.
#[derive(Debug)]
pub enum JournalError {
    /// The file backend hit an I/O error.
    Io(std::io::Error),
    /// A complete record at `offset` failed to decode — the byte stream is
    /// not (or no longer) a journal. Torn tails are *not* corruption; they
    /// are dropped silently.
    Corrupt {
        /// Byte offset of the record's length prefix.
        offset: usize,
        /// What the decoder objected to.
        what: &'static str,
    },
    /// Replaying a decoded record into a fresh session was rejected — the
    /// journal's command sequence violates the session's time contract,
    /// which a journal written through [`Session::ingest`](crate::Session::ingest) never does.
    Replay(IngestError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt { offset, what } => {
                write!(f, "corrupt journal record at byte {offset}: {what}")
            }
            JournalError::Replay(e) => write!(f, "journal replay rejected: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

enum Backend {
    Mem(Vec<u8>),
    File(std::fs::File),
}

/// A cloneable handle to one append-only journal. Clones share the backend;
/// the dispatch pump appends through one clone while the supervisor keeps
/// another for replay after a crash.
pub struct EventJournal {
    backend: Arc<Mutex<Backend>>,
    records: Arc<AtomicU64>,
    events: Arc<AtomicU64>,
}

impl Clone for EventJournal {
    fn clone(&self) -> EventJournal {
        EventJournal {
            backend: Arc::clone(&self.backend),
            records: Arc::clone(&self.records),
            events: Arc::clone(&self.events),
        }
    }
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("records", &self.record_count())
            .field("events", &self.event_count())
            .finish()
    }
}

impl EventJournal {
    /// An empty in-memory journal.
    #[must_use]
    pub fn in_memory() -> EventJournal {
        EventJournal {
            backend: Arc::new(Mutex::new(Backend::Mem(Vec::new()))),
            records: Arc::new(AtomicU64::new(0)),
            events: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A journal over existing bytes (tests and transports use this to
    /// rebuild a journal from a captured byte stream). Counts cover the
    /// longest clean record prefix; a torn or corrupt tail surfaces through
    /// [`EventJournal::recovered_records`].
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> EventJournal {
        let (mut records, mut events) = (0u64, 0u64);
        if let Ok((recs, _)) = scan(&bytes) {
            records = recs.len() as u64;
            events = recs
                .iter()
                .filter(|r| matches!(r, JournalRecord::Event(..)))
                .count() as u64;
        }
        EventJournal {
            backend: Arc::new(Mutex::new(Backend::Mem(bytes))),
            records: Arc::new(AtomicU64::new(records)),
            events: Arc::new(AtomicU64::new(events)),
        }
    }

    /// Opens (or creates) a file-backed journal at `path`. An existing
    /// journal is scanned first: a torn tail from an interrupted append is
    /// truncated away so new appends extend the clean prefix, and the
    /// record counters resume from what survived.
    pub fn file(path: &std::path::Path) -> Result<EventJournal, JournalError> {
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut bytes = Vec::new();
        f.seek(SeekFrom::Start(0))?;
        f.read_to_end(&mut bytes)?;
        let (recs, clean_len) = scan(&bytes)?;
        if clean_len < bytes.len() {
            f.set_len(clean_len as u64)?;
        }
        let events = recs
            .iter()
            .filter(|r| matches!(r, JournalRecord::Event(..)))
            .count() as u64;
        Ok(EventJournal {
            backend: Arc::new(Mutex::new(Backend::File(f))),
            records: Arc::new(AtomicU64::new(recs.len() as u64)),
            events: Arc::new(AtomicU64::new(events)),
        })
    }

    /// Records one accepted ingest. Called by [`Session::ingest`](crate::Session::ingest) *after* validation, so the journal only ever
    /// holds commands the session admitted.
    pub fn append_event(&self, time: Timestamp, event: &Event) -> Result<(), JournalError> {
        self.append(&encode_record(&JournalRecord::Event(time, event.clone())))?;
        self.events.fetch_add(1, Ordering::SeqCst);
        self.records.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Records one finite advance target.
    pub fn append_advance(&self, time: Timestamp) -> Result<(), JournalError> {
        self.append(&encode_record(&JournalRecord::Advance(time)))?;
        self.records.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn append(&self, payload: &[u8]) -> Result<(), JournalError> {
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(payload);
        match &mut *self.lock() {
            Backend::Mem(buf) => buf.extend_from_slice(&framed),
            Backend::File(f) => f.write_all(&framed)?,
        }
        Ok(())
    }

    /// Records appended so far (events + advances). This is exactly the
    /// index into the replayable command sequence, which the wire protocol's
    /// `ResumeAck` reports back to reconnecting clients.
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::SeqCst)
    }

    /// Event records appended so far (excluding advances).
    pub fn event_count(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// Decodes the longest clean record prefix, dropping any torn tail.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file backend cannot be read;
    /// [`JournalError::Corrupt`] if a *complete* record fails to decode.
    pub fn recovered_records(&self) -> Result<Vec<JournalRecord>, JournalError> {
        let bytes = self.snapshot_bytes()?;
        let (records, _) = scan(&bytes)?;
        Ok(records)
    }

    /// The journal's raw byte stream (for transport or inspection).
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, JournalError> {
        match &mut *self.lock() {
            Backend::Mem(buf) => Ok(buf.clone()),
            Backend::File(f) => {
                let mut bytes = Vec::new();
                f.seek(SeekFrom::Start(0))?;
                f.read_to_end(&mut bytes)?;
                Ok(bytes)
            }
        }
    }

    /// A panicking pump must not take the journal down with it: the lock is
    /// recovered from poisoning because appends are single `write_all`/
    /// `extend_from_slice` calls that never leave the backend half-written
    /// at this layer (a torn *file* write is exactly what the clean-prefix
    /// reader tolerates).
    fn lock(&self) -> MutexGuard<'_, Backend> {
        match self.backend.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Encodes one record payload (type byte first, length prefix excluded) —
/// byte-identical to the wire protocol's client frame payloads.
fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match record {
        JournalRecord::Event(time, Event::TaskArrival(task)) => {
            buf.push(R_TASK_ARRIVAL);
            put_f64(&mut buf, time.0);
            buf.extend_from_slice(&task.id.0.to_le_bytes());
            put_f64(&mut buf, task.location.x);
            put_f64(&mut buf, task.location.y);
            put_f64(&mut buf, task.publication.0);
            put_f64(&mut buf, task.expiration.0);
        }
        JournalRecord::Event(time, Event::WorkerOnline(worker)) => {
            buf.push(R_WORKER_ONLINE);
            put_f64(&mut buf, time.0);
            buf.extend_from_slice(&worker.id.0.to_le_bytes());
            put_f64(&mut buf, worker.location.x);
            put_f64(&mut buf, worker.location.y);
            put_f64(&mut buf, worker.reachable_distance);
            put_f64(&mut buf, worker.window.on.0);
            put_f64(&mut buf, worker.window.off.0);
            buf.push(match worker.mode {
                WorkerMode::Online => 0,
                WorkerMode::Offline => 1,
            });
        }
        JournalRecord::Event(time, Event::TaskExpiration(task)) => {
            buf.push(R_TASK_EXPIRATION);
            put_f64(&mut buf, time.0);
            buf.extend_from_slice(&task.0.to_le_bytes());
        }
        JournalRecord::Event(time, Event::WorkerOffline(worker)) => {
            buf.push(R_WORKER_OFFLINE);
            put_f64(&mut buf, time.0);
            buf.extend_from_slice(&worker.0.to_le_bytes());
        }
        JournalRecord::Event(time, Event::ReplanTick) => {
            buf.push(R_REPLAN_TICK);
            put_f64(&mut buf, time.0);
        }
        JournalRecord::Advance(time) => {
            buf.push(R_ADVANCE_TO);
            put_f64(&mut buf, time.0);
        }
    }
    buf
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Sequential record-payload reader (the journal-side twin of the wire
/// decoder, with the same finiteness discipline).
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        if self.rest.len() < n {
            return Err("payload shorter than its record layout");
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, &'static str> {
        let bytes = self.take(4)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, &'static str> {
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_le_bytes(raw))
    }

    fn finite(&mut self) -> Result<f64, &'static str> {
        let v = self.f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err("non-finite float field")
        }
    }

    fn finite_or_inf(&mut self) -> Result<f64, &'static str> {
        let v = self.f64()?;
        if v.is_finite() || v == f64::INFINITY {
            Ok(v)
        } else {
            Err("NaN or -inf float field")
        }
    }

    fn done(self) -> Result<(), &'static str> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err("trailing bytes after record layout")
        }
    }
}

/// Decodes one record payload as produced by `encode_record`.
fn decode_record(payload: &[u8]) -> Result<JournalRecord, &'static str> {
    let (&ty, rest) = payload.split_first().ok_or("empty record payload")?;
    let mut c = Cursor { rest };
    let record = match ty {
        R_TASK_ARRIVAL => {
            let time = Timestamp(c.finite()?);
            let task = Task {
                id: TaskId(c.u32()?),
                location: Location::new(c.finite()?, c.finite()?),
                publication: Timestamp(c.finite()?),
                expiration: Timestamp(c.finite_or_inf()?),
            };
            JournalRecord::Event(time, Event::TaskArrival(task))
        }
        R_WORKER_ONLINE => {
            let time = Timestamp(c.finite()?);
            // Struct literal, not `Worker::new`: the constructor
            // debug-asserts window sanity, and a corrupt journal must decode
            // to a typed error, never a panic.
            let worker = Worker {
                id: WorkerId(c.u32()?),
                location: Location::new(c.finite()?, c.finite()?),
                reachable_distance: c.finite()?,
                window: AvailabilityWindow {
                    on: Timestamp(c.finite()?),
                    off: Timestamp(c.finite_or_inf()?),
                },
                mode: match c.u8()? {
                    0 => WorkerMode::Online,
                    1 => WorkerMode::Offline,
                    _ => return Err("unknown worker mode"),
                },
            };
            JournalRecord::Event(time, Event::WorkerOnline(worker))
        }
        R_TASK_EXPIRATION => JournalRecord::Event(
            Timestamp(c.finite()?),
            Event::TaskExpiration(TaskId(c.u32()?)),
        ),
        R_WORKER_OFFLINE => JournalRecord::Event(
            Timestamp(c.finite()?),
            Event::WorkerOffline(WorkerId(c.u32()?)),
        ),
        R_REPLAN_TICK => JournalRecord::Event(Timestamp(c.finite()?), Event::ReplanTick),
        R_ADVANCE_TO => JournalRecord::Advance(Timestamp(c.finite()?)),
        _ => return Err("unknown record type byte"),
    };
    c.done()?;
    Ok(record)
}

/// Walks the byte stream, decoding the longest clean record prefix. Returns
/// the records and the byte length of that prefix. A tail cut mid-prefix or
/// mid-payload is a torn write and ends the walk silently; a complete record
/// that fails to decode is [`JournalError::Corrupt`].
fn scan(bytes: &[u8]) -> Result<(Vec<JournalRecord>, usize), JournalError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 4 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&bytes[offset..offset + 4]);
        let len = u32::from_le_bytes(raw) as usize;
        if !(1..=MAX_RECORD_LEN).contains(&len) {
            return Err(JournalError::Corrupt {
                offset,
                what: "record length outside bounds",
            });
        }
        let start = offset + 4;
        if bytes.len() - start < len {
            break; // torn payload: clean prefix ends here
        }
        match decode_record(&bytes[start..start + len]) {
            Ok(record) => records.push(record),
            Err(what) => return Err(JournalError::Corrupt { offset, what }),
        }
        offset = start + len;
    }
    Ok((records, offset))
}

/// A sink adapter that swallows the first `skip` decisions and forwards the
/// rest — how a recovered pump suppresses the replayed decision prefix its
/// client already received, so the client-visible stream continues seamlessly
/// with neither losses nor duplicates.
#[derive(Debug)]
pub struct SkipSink<S: DecisionSink> {
    inner: S,
    remaining: u64,
    skipped: u64,
}

impl<S: DecisionSink> SkipSink<S> {
    /// Wraps `inner`, suppressing its first `skip` decisions.
    #[must_use]
    pub fn new(inner: S, skip: u64) -> SkipSink<S> {
        SkipSink {
            inner,
            remaining: skip,
            skipped: 0,
        }
    }

    /// Decisions suppressed so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Decisions still to be suppressed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Unwraps the inner sink.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: DecisionSink> DecisionSink for SkipSink<S> {
    fn emit(&mut self, decision: Decision) {
        if self.remaining > 0 {
            self.remaining -= 1;
            self.skipped += 1;
        } else {
            self.inner.emit(decision);
        }
    }

    fn observe_event(&mut self, time: Timestamp, event: &Event) {
        self.inner.observe_event(time, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CollectingSink;

    fn task(id: u32, p: f64, e: f64) -> Task {
        Task::new(
            TaskId(id),
            Location::new(1.5, -2.25),
            Timestamp(p),
            Timestamp(e),
        )
    }

    fn worker(id: u32, on: f64, off: f64) -> Worker {
        Worker::new(
            WorkerId(id),
            Location::new(0.5, 0.25),
            4.0,
            Timestamp(on),
            Timestamp(off),
        )
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Event(Timestamp(0.0), Event::WorkerOnline(worker(3, 0.0, 90.0))),
            JournalRecord::Advance(Timestamp(0.5)),
            JournalRecord::Event(Timestamp(1.0), Event::TaskArrival(task(7, 1.0, 9.5))),
            JournalRecord::Event(Timestamp(2.0), Event::ReplanTick),
            JournalRecord::Event(Timestamp(3.0), Event::TaskExpiration(TaskId(7))),
            JournalRecord::Event(Timestamp(4.0), Event::WorkerOffline(WorkerId(3))),
            JournalRecord::Advance(Timestamp(5.0)),
        ]
    }

    fn journal_with(records: &[JournalRecord]) -> EventJournal {
        let j = EventJournal::in_memory();
        for r in records {
            match r {
                JournalRecord::Event(t, e) => j.append_event(*t, e).unwrap(),
                JournalRecord::Advance(t) => j.append_advance(*t).unwrap(),
            }
        }
        j
    }

    #[test]
    fn records_round_trip_bitwise() {
        for record in sample_records() {
            let payload = encode_record(&record);
            let back = decode_record(&payload).expect("decode own encoding");
            assert_eq!(back, record);
            assert_eq!(encode_record(&back), payload, "re-encode is byte-identical");
        }
    }

    #[test]
    fn append_then_recover_preserves_order_and_counts() {
        let records = sample_records();
        let j = journal_with(&records);
        assert_eq!(j.record_count(), 7);
        assert_eq!(j.event_count(), 5);
        assert_eq!(j.recovered_records().unwrap(), records);
        // A clone shares the backend and the counters.
        let clone = j.clone();
        clone.append_advance(Timestamp(6.0)).unwrap();
        assert_eq!(j.record_count(), 8);
    }

    #[test]
    fn torn_tail_yields_the_clean_prefix() {
        let records = sample_records();
        let full = journal_with(&records).snapshot_bytes().unwrap();
        // Every strictly-shorter truncation either drops whole records or
        // tears the last one; the reader must return the clean prefix.
        for cut in 0..full.len() {
            let j = EventJournal::from_bytes(full[..cut].to_vec());
            let recovered = j.recovered_records().expect("truncation never corrupts");
            assert!(recovered.len() <= records.len());
            assert_eq!(
                &records[..recovered.len()],
                &recovered[..],
                "prefix at cut {cut}"
            );
        }
    }

    #[test]
    fn corrupt_complete_records_surface_typed_errors() {
        let j = journal_with(&sample_records());
        let mut bytes = j.snapshot_bytes().unwrap();
        // Overwrite the first record's type byte (offset 4, after the length
        // prefix) with an unknown type: a complete-but-undecodable record.
        bytes[4] = 0x7e;
        let err = EventJournal::from_bytes(bytes)
            .recovered_records()
            .unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { offset: 0, .. }),
            "got {err}"
        );

        // A hostile length prefix is corruption, not a torn tail.
        let mut huge = j.snapshot_bytes().unwrap();
        huge[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = EventJournal::from_bytes(huge)
            .recovered_records()
            .unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { offset: 0, .. }));
    }

    #[test]
    fn file_backend_persists_and_truncates_torn_tails() {
        let path = std::env::temp_dir().join(format!(
            "datawa-journal-test-{}-file-backend.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let records = sample_records();
        {
            let j = EventJournal::file(&path).unwrap();
            for r in &records {
                match r {
                    JournalRecord::Event(t, e) => j.append_event(*t, e).unwrap(),
                    JournalRecord::Advance(t) => j.append_advance(*t).unwrap(),
                }
            }
        }
        // Simulate a crash mid-append: chop the last three bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let j = EventJournal::file(&path).unwrap();
        let recovered = j.recovered_records().unwrap();
        assert_eq!(recovered.len(), records.len() - 1, "torn record dropped");
        assert_eq!(&records[..recovered.len()], &recovered[..]);
        // The torn tail was truncated away, so appends extend a clean file.
        j.append_advance(Timestamp(99.0)).unwrap();
        let again = EventJournal::file(&path).unwrap();
        assert_eq!(again.record_count(), records.len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn skip_sink_swallows_exactly_the_prefix() {
        let mut sink = SkipSink::new(CollectingSink::new(), 2);
        for i in 0..5 {
            sink.emit(Decision::TaskExpired {
                at: Timestamp(i as f64),
                task: TaskId(i),
            });
        }
        assert_eq!(sink.skipped(), 2);
        assert_eq!(sink.remaining(), 0);
        let decisions = sink.into_inner().into_decisions();
        assert_eq!(decisions.len(), 3);
        assert_eq!(
            decisions[0].at(),
            Timestamp(2.0),
            "prefix suppressed in order"
        );
    }
}
