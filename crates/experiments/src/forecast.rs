//! Scenario-conditioned prediction: evaluate the demand predictors against
//! the distribution shift created by the four built-in `datawa-stream`
//! scenario generators, and compare an online-forecast-driven session with
//! the prediction-blind baseline on the same workload.
//!
//! This is the evaluation the ROADMAP's "scenario-conditioned prediction"
//! item asks for: the generators create qualitatively different demand
//! regimes (uniform control, rush-hour bursts, hotspot drift, heavy-tailed
//! churn), and forecast quality under those regimes is exactly what
//! separates the prediction-aware policies from the blind ones.

use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast};
use datawa_core::{BoundingBox, Location, TaskStore, Timestamp};
use datawa_geo::{GridSpec, UniformGrid};
use datawa_predict::{
    DdgnnPredictor, DemandPredictor, GraphWaveNetPredictor, LstmPredictor, OnlineForecastConfig,
    OnlineForecaster, SeriesDataset, SeriesSpec, TrainingConfig,
};
use datawa_stream::{
    builtin_scenarios, run_workload_forecast, EngineConfig, ScenarioSpec, Workload,
};
use serde::Serialize;

/// Knobs of the scenario-conditioned forecast evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastScenarioConfig {
    /// Grid resolution (rows = cols) of the prediction component.
    pub grid_cells_per_side: u32,
    /// Interval length ΔT of the occurrence series, in seconds.
    pub delta_t: f64,
    /// Buckets per occurrence vector.
    pub k: usize,
    /// History vectors per example.
    pub history_len: usize,
    /// Training hyper-parameters shared by all predictors.
    pub training: TrainingConfig,
    /// Fraction of the horizon used as the training prefix (the remainder
    /// is forecast — chronological, like the paper's 80/20 split).
    pub train_fraction: f64,
    /// Decision threshold for the online forecaster's predicted tasks.
    pub threshold: f64,
    /// Simulated seconds between online re-forecasts.
    pub refresh_every: f64,
}

impl Default for ForecastScenarioConfig {
    fn default() -> ForecastScenarioConfig {
        ForecastScenarioConfig {
            grid_cells_per_side: 4,
            delta_t: 10.0,
            k: 3,
            history_len: 4,
            training: TrainingConfig {
                epochs: 3,
                learning_rate: 0.02,
            },
            train_fraction: 0.8,
            threshold: 0.6,
            refresh_every: 30.0,
        }
    }
}

/// One row of the per-scenario AP report: one predictor on one generator.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioPredictionRow {
    /// Scenario generator name.
    pub scenario: String,
    /// Predictor name ("LSTM", "Graph-Wavenet", "DDGNN").
    pub model: String,
    /// Average Precision on the chronological test split of the scenario's
    /// own task series.
    pub average_precision: f64,
    /// Wall-clock training time, in seconds.
    pub train_seconds: f64,
    /// Wall-clock inference time over the test split, in seconds.
    pub test_seconds: f64,
}

/// One row of the online-vs-blind comparison: the DDGNN-backed online
/// forecaster driving DTA+TP against prediction-blind DTA on one generator.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioAssignmentRow {
    /// Scenario generator name.
    pub scenario: String,
    /// Tasks assigned by prediction-blind DTA.
    pub blind_assigned: usize,
    /// Tasks assigned by DTA+TP over the online DDGNN forecaster.
    pub online_assigned: usize,
    /// Model re-forecasts the online provider performed during the run.
    pub refreshes: usize,
}

/// The study area of a scenario spec as a bounding box.
fn scenario_area(spec: ScenarioSpec) -> BoundingBox {
    BoundingBox::new(
        Location::new(0.0, 0.0),
        Location::new(spec.area_km, spec.area_km),
    )
}

fn task_store(workload: &Workload) -> TaskStore {
    let mut store = TaskStore::new();
    for t in &workload.tasks {
        store.insert(*t);
    }
    store
}

fn series_spec(config: &ForecastScenarioConfig) -> SeriesSpec {
    SeriesSpec::new(Timestamp(0.0), config.delta_t, config.k, config.history_len)
}

/// The three evaluated predictors, freshly constructed per scenario.
fn build_models(cells: usize, k: usize, seed: u64) -> Vec<Box<dyn DemandPredictor>> {
    vec![
        Box::new(LstmPredictor::new(k, 12, seed)),
        Box::new(GraphWaveNetPredictor::new(cells, k, 12, 8, seed)),
        Box::new(DdgnnPredictor::with_defaults(cells, k, seed)),
    ]
}

/// Per-scenario AP for all three predictors: each generator's task series is
/// split chronologically, every model trains on the prefix and is scored on
/// the suffix — so the drift scenarios test exactly the
/// generalisation-under-shift the DDGNN's dynamic dependency targets.
pub fn scenario_prediction_report(
    spec: ScenarioSpec,
    config: &ForecastScenarioConfig,
) -> Vec<ScenarioPredictionRow> {
    let grid = UniformGrid::new(GridSpec::new(
        scenario_area(spec),
        config.grid_cells_per_side,
        config.grid_cells_per_side,
    ));
    let mut rows = Vec::new();
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        let series = SeriesDataset::build(
            &task_store(&workload),
            &grid,
            series_spec(config),
            Timestamp(spec.horizon),
        );
        let (train, test) = series.split(config.train_fraction);
        for mut model in build_models(grid.cell_count(), config.k, spec.seed) {
            let report = model.train(&train, &config.training);
            let evaluation = model.evaluate(&test);
            rows.push(ScenarioPredictionRow {
                scenario: scenario.name().to_string(),
                model: model.name().to_string(),
                average_precision: evaluation.average_precision,
                train_seconds: report.train_seconds,
                test_seconds: evaluation.test_seconds,
            });
        }
    }
    rows
}

/// Builds a DDGNN-backed [`OnlineForecaster`] for one scenario workload:
/// the model trains on the chronological prefix of the scenario's own task
/// series (publication times before `train_fraction · horizon`), then goes
/// live — the session feeds it every arrival and it re-forecasts on the
/// configured cadence.
pub fn scenario_online_forecaster(
    workload: &Workload,
    spec: ScenarioSpec,
    config: &ForecastScenarioConfig,
) -> OnlineForecaster {
    let grid = UniformGrid::new(GridSpec::new(
        scenario_area(spec),
        config.grid_cells_per_side,
        config.grid_cells_per_side,
    ));
    let cut = Timestamp(spec.horizon * config.train_fraction);
    let mut prefix = TaskStore::new();
    for t in &workload.tasks {
        if t.publication.0 < cut.0 {
            prefix.insert(*t);
        }
    }
    let mut model = DdgnnPredictor::with_defaults(grid.cell_count(), config.k, spec.seed);
    let series = SeriesDataset::build(&prefix, &grid, series_spec(config), cut);
    if !series.is_empty() {
        model.train(&series, &config.training);
    }
    OnlineForecaster::new(
        Box::new(model),
        grid,
        series_spec(config),
        OnlineForecastConfig {
            threshold: config.threshold,
            valid_time: spec.valid_time,
            refresh_every: config.refresh_every,
        },
    )
}

/// Online-vs-blind on every generator: DTA+TP over the scenario's trained
/// online DDGNN against prediction-blind DTA, same workload, same engine
/// configuration.
pub fn scenario_online_vs_blind(
    spec: ScenarioSpec,
    config: &ForecastScenarioConfig,
) -> Vec<ScenarioAssignmentRow> {
    let mut rows = Vec::new();
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        let engine = EngineConfig::default();

        let blind_runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Dta);
        let mut blind_forecast = StaticForecast::default();
        let blind = run_workload_forecast(&blind_runner, &workload, &mut blind_forecast, engine);

        let online_runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::DtaTp);
        let mut forecaster = scenario_online_forecaster(&workload, spec, config);
        let online = run_workload_forecast(&online_runner, &workload, &mut forecaster, engine);

        rows.push(ScenarioAssignmentRow {
            scenario: scenario.name().to_string(),
            blind_assigned: blind.run.assigned_tasks,
            online_assigned: online.run.assigned_tasks,
            refreshes: online.run.forecast.refreshes,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ForecastScenarioConfig {
        ForecastScenarioConfig {
            grid_cells_per_side: 3,
            k: 2,
            history_len: 3,
            training: TrainingConfig {
                epochs: 1,
                learning_rate: 0.02,
            },
            ..ForecastScenarioConfig::default()
        }
    }

    #[test]
    fn report_covers_every_scenario_and_model() {
        let spec = ScenarioSpec::small().with_tasks(150).with_workers(10);
        let rows = scenario_prediction_report(spec, &tiny_config());
        assert_eq!(rows.len(), 4 * 3, "4 scenarios × 3 predictors");
        for row in &rows {
            assert!(
                (0.0..=1.0).contains(&row.average_precision),
                "{}/{}: AP out of range",
                row.scenario,
                row.model
            );
            assert!(row.train_seconds >= 0.0);
        }
        let scenarios: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(scenarios.len(), 4);
        let models: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(models.len(), 3);
    }

    #[test]
    fn online_forecaster_refreshes_during_a_scenario_run() {
        let spec = ScenarioSpec::small().with_tasks(120).with_workers(8);
        let rows = scenario_online_vs_blind(spec, &tiny_config());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.refreshes > 0, "{}: no online refresh", row.scenario);
            assert!(row.online_assigned <= 120);
        }
    }
}
