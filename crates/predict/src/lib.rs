//! # datawa-predict
//!
//! Task demand prediction (§III of the DATA-WA paper).
//!
//! The study area is partitioned into a uniform grid (`datawa-geo`); the task
//! history of every cell becomes a *task multivariate time series* of binary
//! occurrence vectors (Eq. 2). Three predictors forecast the next occurrence
//! vector of every cell:
//!
//! * [`LstmPredictor`] — the LSTM baseline of §V-B.1;
//! * [`GraphWaveNetPredictor`] — the Graph-WaveNet baseline (static
//!   self-adaptive adjacency + gated temporal convolution);
//! * [`DdgnnPredictor`] — the proposed Dynamic Dependency-based Graph Neural
//!   Network: a demand-dependency learning module that infers a dynamic
//!   adjacency matrix from the current snapshot (Eq. 4–6), gated dilated
//!   causal temporal convolution (Eq. 7) and APPNP propagation (Eq. 8–9).
//!
//! Predictions above a confidence threshold are converted into *predicted
//! tasks* (located at the centre of their grid cell) that the assignment layer
//! plans for ahead of time (DTA+TP and DATA-WA).

pub mod ddgnn;
pub mod dependency;
pub mod graph_wavenet;
pub mod lstm;
pub mod metrics;
pub mod predicted;
pub mod series;
pub mod trainer;

pub use ddgnn::DdgnnPredictor;
pub use dependency::DependencyLearner;
pub use graph_wavenet::GraphWaveNetPredictor;
pub use lstm::LstmPredictor;
pub use metrics::{average_precision, precision_recall_at, PrPoint};
pub use predicted::{predicted_tasks_from, PredictedTask};
pub use series::{SeriesDataset, SeriesExample, SeriesSpec};
pub use trainer::{DemandPredictor, EvaluationReport, TrainingConfig};

use datawa_tensor::Var;

/// Stacks a list of `1 × f` row nodes into an `n × f` node, preserving
/// gradients. Implemented with the existing transpose/concat ops so every
/// model can assemble per-cell features into a node-feature matrix.
pub(crate) fn stack_rows(rows: &[Var]) -> Var {
    assert!(!rows.is_empty(), "cannot stack zero rows");
    let mut acc = rows[0].transpose();
    for row in &rows[1..] {
        acc = acc.concat_cols(&row.transpose());
    }
    acc.transpose()
}

#[cfg(test)]
mod stack_tests {
    use super::stack_rows;
    use datawa_tensor::{Matrix, Var};

    #[test]
    fn stack_rows_builds_the_expected_matrix() {
        let a = Var::constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = Var::constant(Matrix::row_vector(&[3.0, 4.0]));
        let s = stack_rows(&[a, b]).value();
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
    }

    #[test]
    fn stack_rows_is_differentiable() {
        let a = Var::parameter(Matrix::row_vector(&[1.0, 2.0]));
        let b = Var::parameter(Matrix::row_vector(&[3.0, 4.0]));
        let loss = stack_rows(&[a.clone(), b.clone()]).sum();
        loss.backward();
        assert_eq!(a.grad(), Matrix::row_vector(&[1.0, 1.0]));
        assert_eq!(b.grad(), Matrix::row_vector(&[1.0, 1.0]));
    }
}
