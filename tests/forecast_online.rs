//! End-to-end acceptance of the live-forecast redesign: a DATA-WA session
//! whose predictions come from a *trained DDGNN over a prefix* — served
//! through an [`OnlineForecaster`] that observes arrivals and re-forecasts
//! mid-stream — must beat prediction-blind DTA on completed tasks under the
//! hotspot-drift generator, the scenario whose distribution shift demand
//! prediction exists to absorb.
//!
//! Everything here is seeded and the engine is bitwise deterministic for
//! every thread count, so the comparison is exact, not statistical.

use datawa::prelude::*;
use datawa_experiments::{scenario_online_forecaster, ForecastScenarioConfig};

/// The tuned evaluation point: a 10 km box whose single demand hotspot
/// migrates across the full area, moderately under-supplied so positioning
/// decisions actually change what gets served.
fn drift_spec() -> ScenarioSpec {
    ScenarioSpec::small()
        .with_workers(40)
        .with_tasks(1500)
        .with_seed(11)
}

fn forecast_config() -> ForecastScenarioConfig {
    ForecastScenarioConfig {
        grid_cells_per_side: 8,
        delta_t: 10.0,
        k: 3,
        history_len: 4,
        training: TrainingConfig {
            epochs: 8,
            learning_rate: 0.02,
        },
        train_fraction: 0.5,
        threshold: 0.45,
        refresh_every: 15.0,
    }
}

/// Trains the Task Value Function on exact-DFSearch samples from planning
/// instants inside the workload's training prefix (the workload analogue of
/// `datawa_sim::train_tvf_on_prefix`).
fn train_tvf_on_workload_prefix(workload: &Workload, spec: ScenarioSpec) -> TaskValueFunction {
    let mut workers = datawa::core::WorkerStore::new();
    for w in &workload.workers {
        workers.insert(*w);
    }
    let mut tasks = datawa::core::TaskStore::new();
    for t in &workload.tasks {
        tasks.insert(*t);
    }
    let mut planner = Planner::new(AssignConfig::default(), SearchMode::Exact);
    let mut samples = Vec::new();
    let instants = 4;
    for i in 0..instants {
        // Sample instants spread over the training half of the horizon.
        let now = Timestamp(spec.horizon * 0.5 * (i as f64 + 0.5) / instants as f64);
        let worker_ids: Vec<WorkerId> = workers.available_at(now);
        let task_ids: Vec<TaskId> = tasks.open_at(now);
        if worker_ids.is_empty() || task_ids.is_empty() {
            continue;
        }
        samples.extend(planner.collect_training_samples(
            &worker_ids,
            &task_ids,
            &workers,
            &tasks,
            now,
        ));
    }
    assert!(!samples.is_empty(), "no TVF training samples collected");
    let mut tvf = TaskValueFunction::new(16, drift_spec().seed);
    let tuples: Vec<_> = samples.iter().map(|s| (s.state, s.action, s.opt)).collect();
    tvf.train(&tuples, 40, 32, 0.01, drift_spec().seed);
    tvf
}

#[test]
fn online_ddgnn_data_wa_beats_prediction_blind_dta_under_hotspot_drift() {
    let spec = drift_spec();
    let config = forecast_config();
    let workload = HotspotDrift::new(spec).generate();
    let engine = EngineConfig::default();

    // Baseline: prediction-blind DTA (exact re-planning, no forecasts).
    let blind_runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Dta);
    let mut blind_forecast = StaticForecast::default();
    let blind = datawa::stream::run_workload_forecast(
        &blind_runner,
        &workload,
        &mut blind_forecast,
        engine,
    );

    // The full DATA-WA method, forecast-fed: TVF-guided search, predictions
    // from a DDGNN trained on the chronological prefix of the scenario's own
    // task series and re-forecast live as the session streams.
    let online_runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::DataWa)
        .with_tvf(train_tvf_on_workload_prefix(&workload, spec));
    let mut forecaster = scenario_online_forecaster(&workload, spec, &config);
    let online =
        datawa::stream::run_workload_forecast(&online_runner, &workload, &mut forecaster, engine);

    assert!(
        online.run.forecast.refreshes > 10,
        "the online forecaster must re-forecast repeatedly mid-stream, got {}",
        online.run.forecast.refreshes
    );
    assert_eq!(
        online.run.forecast.observed,
        workload.tasks.len(),
        "every arrival reaches the provider"
    );
    assert!(
        online.run.assigned_tasks > blind.run.assigned_tasks,
        "DATA-WA over the online DDGNN forecast must beat prediction-blind DTA \
         under hotspot drift: online={} blind={}",
        online.run.assigned_tasks,
        blind.run.assigned_tasks
    );
}

/// The same session driven through `datawa-service` exposes the provider's
/// live counters mid-stream (the forecast-stats surface of the redesign).
#[test]
fn dispatch_service_surfaces_live_forecast_stats() {
    let spec = ScenarioSpec::small().with_tasks(200).with_workers(12);
    let workload = HotspotDrift::new(spec).generate();
    let config = ForecastScenarioConfig {
        grid_cells_per_side: 4,
        k: 2,
        history_len: 3,
        training: TrainingConfig {
            epochs: 1,
            learning_rate: 0.02,
        },
        ..ForecastScenarioConfig::default()
    };
    let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::DtaTp);
    let mut forecaster = scenario_online_forecaster(&workload, spec, &config);
    let mut service = DispatchService::open(
        &runner,
        &mut forecaster,
        LiveSource::new(&workload, 30.0),
        CollectingSink::new(),
        ServiceConfig::default(),
    );
    let mut saw_midstream_refresh = false;
    while service.pump() != PumpStatus::SourceDrained {
        let stats = service.stats();
        assert_eq!(stats.forecast, service.snapshot().forecast);
        if stats.forecast.refreshes > 0 {
            saw_midstream_refresh = true;
        }
    }
    let (outcome, stats, _sink) = service.finish();
    assert!(saw_midstream_refresh, "no refresh visible mid-stream");
    assert!(stats.forecast.refreshes > 0);
    assert_eq!(stats.forecast, outcome.run.forecast, "final stats agree");
    assert!(outcome.run.forecast.observed >= workload.tasks.len());
}
