//! Uniform grid partition of the study area.
//!
//! The prediction component of the paper partitions the study area into
//! disjoint, uniform grid cells and treats each cell as one node of the grid
//! graph (§III). The same grid doubles as the bucketing scheme of the spatial
//! index used by the assignment component.

use datawa_core::location::BoundingBox;
use datawa_core::Location;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one grid cell, in row-major order (`row * cols + col`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CellId(pub u32);

impl CellId {
    /// Index form for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Parameters of a uniform grid: the study area bounding box and the number
/// of rows and columns it is divided into.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Study area.
    pub area: BoundingBox,
    /// Number of rows (y divisions).
    pub rows: u32,
    /// Number of columns (x divisions).
    pub cols: u32,
}

impl GridSpec {
    /// Creates a grid specification. Both dimensions must be at least 1.
    pub fn new(area: BoundingBox, rows: u32, cols: u32) -> GridSpec {
        assert!(rows >= 1 && cols >= 1, "grid must have at least one cell");
        assert!(
            area.width() > 0.0 && area.height() > 0.0,
            "study area must have positive extent"
        );
        GridSpec { area, rows, cols }
    }

    /// Total number of cells `M = rows × cols`.
    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.rows as usize) * (self.cols as usize)
    }
}

/// A uniform grid over the study area with O(1) point-to-cell mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    spec: GridSpec,
    cell_width: f64,
    cell_height: f64,
}

impl UniformGrid {
    /// Builds the grid from its specification.
    pub fn new(spec: GridSpec) -> UniformGrid {
        let cell_width = spec.area.width() / spec.cols as f64;
        let cell_height = spec.area.height() / spec.rows as f64;
        UniformGrid {
            spec,
            cell_width,
            cell_height,
        }
    }

    /// The grid specification.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.spec.cell_count()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.spec.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.spec.cols
    }

    /// Width of one cell.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Height of one cell.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.cell_height
    }

    /// Maps a `(row, col)` pair to a cell id.
    #[inline]
    pub fn cell_at(&self, row: u32, col: u32) -> CellId {
        debug_assert!(row < self.spec.rows && col < self.spec.cols);
        CellId(row * self.spec.cols + col)
    }

    /// Decomposes a cell id into its `(row, col)` pair.
    #[inline]
    pub fn row_col(&self, cell: CellId) -> (u32, u32) {
        (cell.0 / self.spec.cols, cell.0 % self.spec.cols)
    }

    /// The cell containing `p`. Points outside the study area are clamped to
    /// the nearest boundary cell, which matches how city-boundary GPS noise is
    /// usually handled in trace preprocessing.
    pub fn cell_of(&self, p: &Location) -> CellId {
        let clamped = self.spec.area.clamp(p);
        let col = ((clamped.x - self.spec.area.min.x) / self.cell_width) as u32;
        let row = ((clamped.y - self.spec.area.min.y) / self.cell_height) as u32;
        let col = col.min(self.spec.cols - 1);
        let row = row.min(self.spec.rows - 1);
        self.cell_at(row, col)
    }

    /// Centre point of a cell.
    pub fn cell_center(&self, cell: CellId) -> Location {
        let (row, col) = self.row_col(cell);
        Location::new(
            self.spec.area.min.x + (col as f64 + 0.5) * self.cell_width,
            self.spec.area.min.y + (row as f64 + 0.5) * self.cell_height,
        )
    }

    /// Bounding box of a cell.
    pub fn cell_bounds(&self, cell: CellId) -> BoundingBox {
        let (row, col) = self.row_col(cell);
        let min = Location::new(
            self.spec.area.min.x + col as f64 * self.cell_width,
            self.spec.area.min.y + row as f64 * self.cell_height,
        );
        let max = Location::new(min.x + self.cell_width, min.y + self.cell_height);
        BoundingBox::new(min, max)
    }

    /// The 4-neighbourhood (up/down/left/right) of a cell, clipped to the grid.
    pub fn neighbors4(&self, cell: CellId) -> Vec<CellId> {
        let (row, col) = self.row_col(cell);
        let mut out = Vec::with_capacity(4);
        if row > 0 {
            out.push(self.cell_at(row - 1, col));
        }
        if row + 1 < self.spec.rows {
            out.push(self.cell_at(row + 1, col));
        }
        if col > 0 {
            out.push(self.cell_at(row, col - 1));
        }
        if col + 1 < self.spec.cols {
            out.push(self.cell_at(row, col + 1));
        }
        out
    }

    /// The 8-neighbourhood (including diagonals) of a cell, clipped to the grid.
    pub fn neighbors8(&self, cell: CellId) -> Vec<CellId> {
        let (row, col) = self.row_col(cell);
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let r = row as i64 + dr;
                let c = col as i64 + dc;
                if r >= 0 && c >= 0 && (r as u32) < self.spec.rows && (c as u32) < self.spec.cols {
                    out.push(self.cell_at(r as u32, c as u32));
                }
            }
        }
        out
    }

    /// All cells whose bounding box intersects the disc of radius `radius`
    /// centred at `p`. This is the candidate-cell set for reachable-task range
    /// queries; exact distance filtering is done per point by the index.
    pub fn cells_within_radius(&self, p: &Location, radius: f64) -> Vec<CellId> {
        debug_assert!(radius >= 0.0);
        let min = Location::new(p.x - radius, p.y - radius);
        let max = Location::new(p.x + radius, p.y + radius);
        let c_min = self.cell_of(&min);
        let c_max = self.cell_of(&max);
        let (r0, col0) = self.row_col(c_min);
        let (r1, col1) = self.row_col(c_max);
        let mut out = Vec::with_capacity(((r1 - r0 + 1) * (col1 - col0 + 1)) as usize);
        for r in r0..=r1 {
            for c in col0..=col1 {
                out.push(self.cell_at(r, c));
            }
        }
        out
    }

    /// All cell ids in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.cell_count() as u32).map(CellId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> UniformGrid {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(10.0, 10.0));
        UniformGrid::new(GridSpec::new(area, 5, 5))
    }

    #[test]
    fn cell_of_maps_points_to_expected_cells() {
        let g = grid();
        assert_eq!(g.cell_of(&Location::new(0.1, 0.1)), g.cell_at(0, 0));
        assert_eq!(g.cell_of(&Location::new(9.9, 9.9)), g.cell_at(4, 4));
        assert_eq!(g.cell_of(&Location::new(5.0, 1.0)), g.cell_at(0, 2));
    }

    #[test]
    fn out_of_area_points_are_clamped() {
        let g = grid();
        assert_eq!(g.cell_of(&Location::new(-5.0, -5.0)), g.cell_at(0, 0));
        assert_eq!(g.cell_of(&Location::new(50.0, 50.0)), g.cell_at(4, 4));
    }

    #[test]
    fn boundary_points_fall_in_last_cell() {
        let g = grid();
        // x = 10.0 is the right edge of the area; it must map to column 4, not 5.
        assert_eq!(g.cell_of(&Location::new(10.0, 10.0)), g.cell_at(4, 4));
    }

    #[test]
    fn row_col_roundtrip() {
        let g = grid();
        for cell in g.cells() {
            let (r, c) = g.row_col(cell);
            assert_eq!(g.cell_at(r, c), cell);
        }
    }

    #[test]
    fn cell_center_lies_inside_cell_bounds() {
        let g = grid();
        for cell in g.cells() {
            let center = g.cell_center(cell);
            assert!(g.cell_bounds(cell).contains(&center));
            assert_eq!(g.cell_of(&center), cell);
        }
    }

    #[test]
    fn neighbors4_counts() {
        let g = grid();
        assert_eq!(g.neighbors4(g.cell_at(0, 0)).len(), 2); // corner
        assert_eq!(g.neighbors4(g.cell_at(0, 2)).len(), 3); // edge
        assert_eq!(g.neighbors4(g.cell_at(2, 2)).len(), 4); // interior
    }

    #[test]
    fn neighbors8_counts() {
        let g = grid();
        assert_eq!(g.neighbors8(g.cell_at(0, 0)).len(), 3);
        assert_eq!(g.neighbors8(g.cell_at(0, 2)).len(), 5);
        assert_eq!(g.neighbors8(g.cell_at(2, 2)).len(), 8);
    }

    #[test]
    fn cells_within_radius_covers_the_disc() {
        let g = grid();
        let cells = g.cells_within_radius(&Location::new(5.0, 5.0), 2.0);
        // radius 2 around the centre touches a 3x3 block of 2km cells at least.
        assert!(cells.len() >= 4);
        assert!(cells.contains(&g.cell_of(&Location::new(5.0, 5.0))));
        // zero radius returns the single containing cell
        let single = g.cells_within_radius(&Location::new(5.0, 5.0), 0.0);
        assert_eq!(single, vec![g.cell_of(&Location::new(5.0, 5.0))]);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_rows_rejected() {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(1.0, 1.0));
        let _ = GridSpec::new(area, 0, 3);
    }
}
