//! Overhead benchmarks for the session API redesign: the batch wrapper
//! (open, ingest all, drain) versus event-by-event live ingest through a
//! [`Session`], and the dispatch-service pump on top, at 10k and 100k
//! arrivals. The session is the single event path now, so this pins the
//! cost of incremental ingest and decision emission relative to preloading —
//! the two must stay within the same order of magnitude for the service
//! front-end to be viable at traffic scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast};
use datawa_service::{DispatchService, IngestSource, ServiceConfig, SourcePoll, WorkloadSource};
use datawa_sim::{SyntheticTrace, TraceSpec};
use datawa_stream::{run_workload, CollectingSink, EngineConfig, NullSink, Session, Workload};
use std::time::Duration;

/// A trace sized so that workers + tasks ≈ `arrivals`.
fn trace_with_arrivals(arrivals: usize) -> SyntheticTrace {
    let base = TraceSpec::yueche();
    let scale = arrivals as f64 / (base.workers + base.tasks) as f64;
    SyntheticTrace::generate(base.scaled(scale))
}

fn bench_session_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/events_per_sec");
    group.sample_size(10);
    for arrivals in [10_000usize, 100_000] {
        let trace = trace_with_arrivals(arrivals);
        let workload: Workload = trace.workload();
        let total_arrivals = workload.arrival_count() as u64;
        let mut runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Greedy);
        runner.replan_every = 64;
        let config = EngineConfig::replay_compat(64);
        group.measurement_time(Duration::from_millis(if arrivals > 10_000 {
            2_500
        } else {
            1_500
        }));
        group.throughput(Throughput::Elements(total_arrivals * 2));

        group.bench_with_input(
            BenchmarkId::new("batch_wrapper", arrivals),
            &arrivals,
            |bench, _| {
                bench.iter(|| {
                    let outcome = run_workload(&runner, &workload, &[], config);
                    criterion::black_box(outcome.run.assigned_tasks)
                });
            },
        );

        // Event-by-event: ingest + advance per arrival, decisions dropped.
        group.bench_with_input(
            BenchmarkId::new("live_ingest", arrivals),
            &arrivals,
            |bench, _| {
                bench.iter(|| {
                    let mut forecast = StaticForecast::default();
                    let mut session = Session::open(&runner, &mut forecast, config);
                    let mut source = WorkloadSource::new(&workload);
                    while let SourcePoll::Ready(time, event) = source.poll() {
                        session.ingest(time, event).unwrap();
                        session.advance_to(time, &mut NullSink);
                    }
                    let outcome = session.close(&mut NullSink);
                    criterion::black_box(outcome.run.assigned_tasks)
                });
            },
        );

        // The full service pump with backpressure and decision collection.
        group.bench_with_input(
            BenchmarkId::new("dispatch_service", arrivals),
            &arrivals,
            |bench, _| {
                bench.iter(|| {
                    let mut forecast = StaticForecast::default();
                    let service = DispatchService::open(
                        &runner,
                        &mut forecast,
                        WorkloadSource::new(&workload),
                        CollectingSink::new(),
                        ServiceConfig {
                            engine: config,
                            ..ServiceConfig::default()
                        },
                    );
                    let (outcome, _, sink) = service.run();
                    criterion::black_box((outcome.run.assigned_tasks, sink.dispatches()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_session_paths);
criterion_main!(benches);
