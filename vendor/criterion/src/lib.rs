//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the slice of the criterion 0.5 API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `sample_size`,
//! `measurement_time`, `throughput`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It is not statistically rigorous — it warms
//! up, runs batches of iterations until the measurement budget is spent, and
//! prints the mean wall-clock time per iteration (plus elements/sec when a
//! [`Throughput`] is set) — but it produces real comparable numbers so perf
//! trajectories can be tracked PR to PR without network access.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group(name.to_string());
        group.bench_inner(String::new(), &mut f);
        group.finish();
        self
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation: lets the harness report a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples (kept for API compatibility; the stub folds
    /// it into the measurement budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_inner(id.into_label(), &mut f);
        self
    }

    /// Benchmarks a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_inner(id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn bench_inner(&self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            min_iters: self.sample_size as u64,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        let full = if label.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, label)
        };
        let mut line = format!(
            "{full:<60} time: {:>12}  ({} iterations)",
            format_ns(bencher.mean_ns),
            bencher.iters
        );
        if let Some(t) = self.throughput {
            let per_sec = |n: u64| n as f64 / (bencher.mean_ns / 1e9);
            match t {
                Throughput::Elements(n) if bencher.mean_ns > 0.0 => {
                    line.push_str(&format!("  thrpt: {:>14.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) if bencher.mean_ns > 0.0 => {
                    line.push_str(&format!("  thrpt: {:>14.0} B/s", per_sec(n)));
                }
                _ => {}
            }
        }
        println!("{line}");
    }

    /// Ends the group (printing happens per-benchmark).
    pub fn finish(self) {}
}

/// Conversion helper so both `&str` and [`BenchmarkId`] name benchmarks.
pub trait IntoLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    budget: Duration,
    min_iters: u64,
    /// Mean wall-clock nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

impl Bencher {
    /// Measures `f` repeatedly until the measurement budget is spent.
    #[allow(clippy::disallowed_methods)] // a bench harness is made of wall-clock reads
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration run.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.budget.max(once);
        let mut iters: u64 = 0;
        let started = Instant::now();
        while started.elapsed() < budget || iters < self.min_iters {
            black_box(f());
            iters += 1;
            // Never spin more than ~16M times even for ns-scale bodies.
            if iters >= (1 << 24) {
                break;
            }
        }
        let total = started.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Opaque value barrier (re-exported for criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        group.finish();
        assert!(ran >= 5);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2.0e9).ends_with(" s"));
    }
}
