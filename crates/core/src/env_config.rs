//! The single place the workspace reads process-environment configuration.
//!
//! Every `DATAWA_*` knob — thread count, observability toggle, incremental
//! replanning, experiment scaling, service sizing — is read **here and only
//! here**, through a typed accessor. The `stray-env-read` rule of
//! `datawa-lint` (see `LINTS.md`) enforces this at the source level: any
//! `std::env::var` outside this module is a lint error, because scattered
//! environment reads are exactly how nondeterminism sneaks into code paths
//! that are pinned bitwise-equal across configurations.
//!
//! ## Caching policy
//!
//! Accessors document whether they cache. [`threads_override`] is resolved
//! once per process (it sits under the hot replan path); the boolean toggles
//! ([`obs_attached`], [`incremental_enabled`]) re-read the environment on
//! every call so tests can flip them in-process. The experiment knobs are
//! read once at binary startup by their callers, so they are uncached too.
//!
//! ## Adding a knob
//!
//! Add a `DATAWA_*` name constant, a typed accessor with the validation the
//! call sites previously did inline, and a line in `LINTS.md`'s knob table.
//! Do **not** call `std::env::var` from anywhere else.

use std::sync::OnceLock;

/// Planner-pool thread count (`DATAWA_THREADS`); positive integer.
pub const THREADS: &str = "DATAWA_THREADS";
/// Observability toggle (`DATAWA_OBS=on|1|true` attaches the registry).
pub const OBS: &str = "DATAWA_OBS";
/// Incremental-replanning escape hatch (`DATAWA_INCREMENTAL=off|0|false`
/// forces full replans).
pub const INCREMENTAL: &str = "DATAWA_INCREMENTAL";
/// Experiment workload scale factor in `(0, 1]` (`DATAWA_SCALE`).
pub const SCALE: &str = "DATAWA_SCALE";
/// Predictor training epochs (`DATAWA_EPOCHS`).
pub const EPOCHS: &str = "DATAWA_EPOCHS";
/// Re-plan every N arrival events (`DATAWA_REPLAN`).
pub const REPLAN: &str = "DATAWA_REPLAN";
/// Additional re-plan period in simulated seconds (`DATAWA_REPLAN_DT`).
pub const REPLAN_DT: &str = "DATAWA_REPLAN_DT";
/// Prediction grid cells per side (`DATAWA_GRID`).
pub const GRID: &str = "DATAWA_GRID";
/// `service_live` demo workload sizing (`DATAWA_SERVICE_TASKS`).
pub const SERVICE_TASKS: &str = "DATAWA_SERVICE_TASKS";
/// `service_live` demo workload sizing (`DATAWA_SERVICE_WORKERS`).
pub const SERVICE_WORKERS: &str = "DATAWA_SERVICE_WORKERS";
/// Seed replayed by the `chaos_smoke` fault-injection harness
/// (`DATAWA_CHAOS_SEED`).
pub const CHAOS_SEED: &str = "DATAWA_CHAOS_SEED";

/// The one sanctioned environment read. Returns `None` when unset or not
/// valid UTF-8. Private: callers go through the typed accessors so that
/// validation stays next to the knob's definition.
#[allow(clippy::disallowed_methods)] // this module IS the sanctioned gateway clippy.toml points everyone at
fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// `DATAWA_THREADS` as a validated thread count (`>= 1`), or `None` when
/// unset/invalid. **Cached per process** — the hot replan path resolves the
/// pool size on every planning instant and must not touch the environment
/// (an OS call and a lock on some platforms) each time.
pub fn threads_override() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        raw(THREADS)
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Parses an on/off toggle value the way every `DATAWA_*` boolean knob does:
/// `on`, `1`, `true` (case-insensitive, trimmed) enable; everything else
/// disables.
pub fn toggle_is_on(value: &str) -> bool {
    matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "on" | "1" | "true"
    )
}

/// Whether `DATAWA_OBS` asks for an attached metrics registry. **Uncached**
/// (read per call) so tests can flip the toggle in-process; registry
/// construction is a cold path.
pub fn obs_attached() -> bool {
    raw(OBS).is_some_and(|v| toggle_is_on(&v))
}

/// Whether `DATAWA_INCREMENTAL` permits plan caching: `off`/`0`/`false`
/// disables, anything else — including unset — enables. **Uncached** so
/// toggling between runs in one process behaves as expected.
pub fn incremental_enabled() -> bool {
    match raw(INCREMENTAL) {
        Some(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false"
        ),
        None => true,
    }
}

/// `DATAWA_SCALE` as a validated factor in `(0, 1]`, or `None`.
pub fn scale_factor() -> Option<f64> {
    raw(SCALE)
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|f| *f > 0.0 && *f <= 1.0)
}

/// `DATAWA_EPOCHS` as a training-epoch count, or `None`.
pub fn epochs() -> Option<usize> {
    raw(EPOCHS).and_then(|v| v.trim().parse().ok())
}

/// `DATAWA_REPLAN` as an every-N-arrivals cadence, or `None`.
pub fn replan_every() -> Option<usize> {
    raw(REPLAN).and_then(|v| v.trim().parse().ok())
}

/// `DATAWA_REPLAN_DT` as a positive period in simulated seconds, or `None`.
pub fn replan_interval() -> Option<f64> {
    raw(REPLAN_DT)
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|dt| *dt > 0.0)
}

/// `DATAWA_GRID` as a cells-per-side count, or `None`.
pub fn grid_cells_per_side() -> Option<u32> {
    raw(GRID).and_then(|v| v.trim().parse().ok())
}

/// `DATAWA_SERVICE_TASKS` for the `service_live` demo, or `None`.
pub fn service_tasks() -> Option<usize> {
    raw(SERVICE_TASKS).and_then(|v| v.trim().parse().ok())
}

/// `DATAWA_SERVICE_WORKERS` for the `service_live` demo, or `None`.
pub fn service_workers() -> Option<usize> {
    raw(SERVICE_WORKERS).and_then(|v| v.trim().parse().ok())
}

/// `DATAWA_CHAOS_SEED` for the `chaos_smoke` fault-injection harness, or
/// `None` (the harness falls back to its documented default seed).
pub fn chaos_seed() -> Option<u64> {
    raw(CHAOS_SEED).and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_parsing_accepts_the_documented_spellings() {
        for on in ["on", "1", "true", "ON", " True "] {
            assert!(toggle_is_on(on), "{on:?} should enable");
        }
        for off in ["off", "0", "false", "", "yes-ish", "2"] {
            assert!(!toggle_is_on(off), "{off:?} should disable");
        }
    }

    #[test]
    fn accessors_tolerate_unset_variables() {
        // The suite never sets the experiment knobs, so these exercise the
        // unset path; the set path is covered by the lint fixture corpus and
        // the existing pool/config/params behaviour tests.
        let _ = scale_factor();
        let _ = epochs();
        let _ = replan_every();
        let _ = replan_interval();
        let _ = grid_cells_per_side();
        let _ = service_tasks();
        let _ = service_workers();
        assert!(threads_override().is_none_or(|n| n >= 1));
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // presence probe in the gateway's own tests, not a knob read
    fn incremental_defaults_on_and_obs_defaults_off_when_unset() {
        // CI legs that set these variables still satisfy the weaker
        // assertions below; locally (unset) they pin the defaults.
        if std::env::var_os(INCREMENTAL).is_none() {
            assert!(incremental_enabled());
        }
        if std::env::var_os(OBS).is_none() {
            assert!(!obs_attached());
        }
    }
}
