//! # datawa-stream
//!
//! An event-driven streaming engine for DATA-WA: the discrete-event substrate
//! that replaces the synchronous for-loop-over-sorted-arrivals driver with a
//! deterministic event queue, explicit lifecycle events and batched
//! re-planning.
//!
//! ## Event lifecycle
//!
//! Every entity flows through the engine as a pair of events:
//!
//! 1. **Birth.** A [`Event::WorkerOnline`] or [`Event::TaskArrival`] pops at
//!    the entity's online/publication time. The engine inserts the record
//!    into the run's [`datawa_core::WorkerStore`]/[`datawa_core::TaskStore`]
//!    (which assigns its dense id), adds the id to the matching incremental
//!    view ([`datawa_core::AvailableWorkerView`] /
//!    [`datawa_core::OpenTaskView`], an `O(log n)` insertion), and
//!    immediately schedules the entity's **death** event for its window-close
//!    instant.
//! 2. **Life.** While alive, the entity participates in planning and
//!    dispatch: every arrival steps the
//!    [`datawa_assign::RunnerState`] state machine (dispatch always;
//!    re-planning when the batching policy triggers — every N arrivals, every
//!    Δt seconds via [`Event::ReplanTick`], or both). Serving a task removes
//!    it from the open view at dispatch time.
//! 3. **Death.** [`Event::TaskExpiration`] / [`Event::WorkerOffline`] pops at
//!    the boundary of the half-open lifetime interval and removes the id from
//!    its view in `O(log n)` — no full-store rescans ever happen. A worker
//!    going offline can optionally release the undone remainder of its
//!    planned sequence back to the pool
//!    ([`EngineConfig::release_on_offline`]).
//!
//! Determinism: the queue orders events by `(time, class, insertion seq)`,
//! where same-instant classes fire as *expiration → offline → online →
//! arrival → replan-tick*, mirroring the half-open `[p, e)` / `[on, off)`
//! interval semantics of the domain model, and FIFO order breaks exact ties.
//! Two runs over the same workload are therefore bit-identical.
//!
//! ## Sessions and live ingest
//!
//! The engine's primary entry point is the open-loop [`Session`] API:
//! [`Session::open`] starts a run, [`Session::ingest`] schedules events as
//! they arrive (a live request front-end feeds this incrementally; the batch
//! wrapper ingests a whole workload at once), [`Session::advance_to`] moves
//! simulated time forward firing everything due, and [`Session::close`]
//! drains the remainder and returns the [`EngineOutcome`]. Assignment
//! decisions are not buffered until the end of the run: every dispatch (and
//! every unserved expiration / worker departure) is emitted as a typed
//! [`Decision`] through a pluggable [`DecisionSink`] the moment it is made —
//! [`CollectingSink`] gathers them in memory, [`ChannelSink`] streams them to
//! an `mpsc` consumer thread, and [`NullSink`] drops them for totals-only
//! runs. Mid-stream, [`Session::stats`] and [`Session::snapshot`] expose the
//! live counters and world-view sizes without stopping the run.
//!
//! Because the deterministic queue orders events by `(time, class, ingest
//! order)` regardless of when they were ingested, feeding a workload
//! event-by-event through a session — ingesting each event before advancing
//! to its timestamp — is bit-identical to the batch [`StreamEngine::run`]
//! wrapper (pinned by the workspace `session_equivalence` tests; see
//! [`session`] for the exact contract around time-driven replan ticks). The
//! long-running service loop built on top of sessions (sources, pacing,
//! backpressure) lives in the `datawa-service` crate.
//!
//! ## Live forecasting
//!
//! Sessions no longer bake in a fixed prediction slice: [`Session::open`]
//! takes a [`ForecastProvider`] — the pluggable demand-forecast API from
//! `datawa-assign`. Every ingested [`Event::TaskArrival`] is routed into
//! the provider ([`ForecastProvider::observe`]) and the prediction-aware
//! policies (DTA+TP, DATA-WA) re-query [`ForecastProvider::forecast`] at
//! every planning instant, so a long-lived session can track demand drift
//! instead of replaying a whole-trace oracle. [`StaticForecast`] wraps a
//! precomputed slice and reproduces the pre-redesign engine bit for bit
//! (every equivalence pin in the workspace runs through it); the
//! model-backed `OnlineForecaster` in `datawa-predict` maintains rolling
//! per-cell occurrence series and re-forecasts on a refresh cadence — hand
//! it to a session exactly like the static bridge:
//!
//! ```text
//! let mut forecaster = OnlineForecaster::new(model, grid, spec, config);
//! let mut session = Session::open(&runner, &mut forecaster, EngineConfig::default());
//! // … ingest / advance_to: arrivals flow into the forecaster, planning
//! // instants re-query it, and Session::snapshot().forecast exposes the
//! // live observe/refresh counters.
//! ```
//!
//! (A compilable end-to-end example lives in the `datawa-predict` crate
//! docs, which own the model side.) The sharded engine keeps one provider
//! per shard — arrivals observe into the shard that owns their location —
//! and merges the per-shard counters deterministically in ascending shard
//! index into the aggregate `run.forecast`; [`run_workload_forecast`] and
//! [`StreamEngine::run_with_forecast`] are the batch conveniences over the
//! same API.
//!
//! ## Incremental replanning
//!
//! Every event the engine fires feeds the runner's
//! [`datawa_assign::DirtySet`]: arrivals, expirations, worker lifecycle
//! changes, replan ticks, dispatches and forecast refreshes are each
//! recorded as the kind of invalidation they cause, and
//! [`Session::dirty_set`] exposes the accumulated set between planning
//! instants (the sharded engine keeps one per shard, inside each shard's
//! session). The planner's plan cache uses content *verification* — not
//! this tracker — as its source of truth, so dirty sets are purely
//! diagnostic; the cache reuses a partition's previous plan only after
//! re-validating every member worker and its reachable tasks against the
//! live stores (see the "Incremental replanning" section of the
//! `datawa-assign` docs for the dirty-set rules and the fingerprint
//! definition). `DATAWA_INCREMENTAL=off` (or
//! [`IncrementalMode::Off`](datawa_assign::IncrementalMode) in the config)
//! disables reuse for A/B parity runs; output is bitwise identical either
//! way, which the `incremental_equivalence` workspace suite pins across
//! every policy, scenario generator and thread count.
//!
//! ## Observability
//!
//! Sessions record into a `datawa-obs` [`MetricsRegistry`]: ingest and
//! processed-event counters (`stream.ingested_events`,
//! `stream.events_processed`), emitted decisions (`stream.decisions`),
//! re-plan ticks (`stream.replan_ticks`) and a pending-queue depth gauge
//! whose high-water mark survives in every snapshot
//! (`stream.queue_depth`). [`Session::open`] inherits the runner's
//! registry — detached by default, attached when `DATAWA_OBS=on` is set or
//! the runner was built with
//! [`AdaptiveRunner::with_metrics`](datawa_assign::AdaptiveRunner::with_metrics)
//! — so one registry carries the assign-layer metrics (replan latency
//! histogram, partition gauges, search-node counters) and the stream-layer
//! metrics side by side; [`Session::obs_snapshot`] serialises all of it to
//! JSON. `Session::open_with_metrics` substitutes an explicit registry.
//! The sharded engine additionally publishes per-shard load gauges
//! (`shard.<i>.workers` / `.tasks` / `.assigned`) and an overall
//! `shard.load_skew_pct`. A detached registry makes every handle a no-op —
//! no atomics touched, no clocks read — which is what lets the
//! `obs_equivalence` workspace tests pin metrics-on runs bitwise against
//! metrics-off runs on all four policies.
//!
//! [`MetricsRegistry`]: datawa_obs::MetricsRegistry
//!
//! ## Replay compatibility
//!
//! [`EngineConfig::replay_compat`] reproduces the legacy
//! [`datawa_assign::AdaptiveRunner::run`] loop exactly (same planning
//! instants, no release-on-offline), so replaying a `datawa-sim` trace
//! through the engine yields the same assignment totals as the old driver —
//! that equivalence is what lets the experiment binaries run on the engine
//! without changing any reported number at `replan_every = 1`.
//!
//! ## Scenarios
//!
//! [`ScenarioGenerator`] abstracts workload construction; the four built-ins
//! ([`UniformBaseline`], [`RushHourBurst`], [`HotspotDrift`],
//! [`HeavyTailedChurn`]) cover uniform control, bursty rush hours, demand
//! drift and heavy-tailed worker churn. The Yueche/DiDi-style synthetic-trace
//! replay adapter lives in `datawa-sim` (`SyntheticTrace::workload`), which
//! depends on this crate.

pub mod engine;
pub mod event;
pub mod journal;
pub mod scenario;
pub mod session;
pub mod shard;

pub use engine::{
    run_workload, run_workload_forecast, EngineConfig, EngineOutcome, EngineStats, StreamEngine,
};
pub use event::{Event, EventQueue, ScheduledEvent};
pub use journal::{EventJournal, JournalError, JournalRecord, SkipSink};
pub use scenario::{
    builtin_scenarios, HeavyTailedChurn, HotspotDrift, RushHourBurst, ScenarioGenerator,
    ScenarioSpec, UniformBaseline, Workload,
};
pub use session::{
    ChannelSink, CollectingSink, Decision, DecisionSink, IngestError, NullSink, Session,
    SessionSnapshot,
};
pub use shard::{
    run_workload_sharded, ShardRouting, ShardedEngineConfig, ShardedOutcome, ShardedStreamEngine,
};

// The forecast API surface, re-exported from the consumer layer so session
// drivers need only this crate (the model-backed `OnlineForecaster` lives in
// `datawa-predict`).
pub use datawa_assign::{ForecastProvider, ForecastStats, StaticForecast};

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind};
    use datawa_core::{Location, Task, TaskId, Timestamp, Worker, WorkerId};

    fn worker(x: f64, y: f64, on: f64, off: f64, d: f64) -> Worker {
        Worker::new(
            WorkerId(0),
            Location::new(x, y),
            d,
            Timestamp(on),
            Timestamp(off),
        )
    }

    fn task(x: f64, y: f64, p: f64, e: f64) -> Task {
        Task::new(TaskId(0), Location::new(x, y), Timestamp(p), Timestamp(e))
    }

    fn runner(policy: PolicyKind) -> AdaptiveRunner {
        AdaptiveRunner::new(AssignConfig::unit_speed(), policy)
    }

    #[test]
    fn engine_serves_a_simple_stream_like_the_legacy_loop() {
        let workload = Workload {
            workers: vec![worker(0.0, 0.0, 0.0, 100.0, 5.0)],
            tasks: vec![task(1.0, 0.0, 1.0, 50.0), task(2.0, 0.0, 2.0, 60.0)],
        };
        let outcome = run_workload(
            &runner(PolicyKind::Dta),
            &workload,
            &[],
            EngineConfig::default(),
        );
        assert_eq!(outcome.run.assigned_tasks, 2);
        assert_eq!(outcome.run.events, 3, "arrival events only");
        assert_eq!(outcome.stats.arrivals, 3);
        // 3 arrivals + 1 offline + 2 expirations.
        assert_eq!(outcome.stats.events_processed, 6);
        assert!(outcome.stats.peak_queue_len >= 3);
    }

    #[test]
    fn task_expiring_before_any_replan_tick_is_never_assigned() {
        // Time-driven planning only: the tick fires at t=11 but the task
        // expired at t=3 — its expiration event must have scrubbed it from
        // the open view, so nothing is ever planned or dispatched.
        let workload = Workload {
            workers: vec![worker(0.0, 0.0, 0.0, 100.0, 5.0)],
            tasks: vec![task(0.5, 0.0, 1.0, 3.0)],
        };
        let outcome = run_workload(
            &runner(PolicyKind::Dta),
            &workload,
            &[],
            EngineConfig::ticked(11.0),
        );
        assert_eq!(outcome.run.assigned_tasks, 0);
        assert_eq!(outcome.stats.expirations, 1);
        assert_eq!(outcome.stats.expired_open, 1);
        assert!(outcome.stats.replan_ticks >= 1);
        assert_eq!(outcome.run.planning_calls, 0, "no open task at any tick");
    }

    #[test]
    fn same_task_is_assigned_when_a_tick_arrives_in_time() {
        let workload = Workload {
            workers: vec![worker(0.0, 0.0, 0.0, 100.0, 5.0)],
            tasks: vec![task(0.5, 0.0, 1.0, 30.0)],
        };
        let outcome = run_workload(
            &runner(PolicyKind::Dta),
            &workload,
            &[],
            EngineConfig::ticked(2.0),
        );
        assert_eq!(outcome.run.assigned_tasks, 1);
    }

    #[test]
    fn offline_worker_releases_its_fixed_plan_for_others() {
        // w0 comes online after both tasks are published, receives the FTA
        // fixed sequence [A, B] (both east of it), serves A, then goes
        // offline at t=4 with B still undone. With release-on-offline, B
        // returns to the pool and the late-arriving w1 gets it in its own
        // fixed plan; under replay-compat semantics B stays reserved forever
        // and is lost.
        let w0 = worker(0.0, 0.0, 1.0, 4.0, 10.0);
        let w1 = worker(2.5, 0.0, 50.0, 100.0, 10.0);
        let a = task(1.0, 0.0, 0.5, 90.0);
        let b = task(2.0, 0.0, 0.6, 95.0);
        let workload = Workload {
            workers: vec![w0, w1],
            tasks: vec![a, b],
        };
        let released = run_workload(
            &runner(PolicyKind::Fta),
            &workload,
            &[],
            EngineConfig::default(),
        );
        let compat = run_workload(
            &runner(PolicyKind::Fta),
            &workload,
            &[],
            EngineConfig::replay_compat(1),
        );
        assert_eq!(released.run.assigned_tasks, 2, "B released and re-served");
        assert_eq!(
            compat.run.assigned_tasks, 1,
            "B stays reserved by the dead worker"
        );
    }

    #[test]
    fn batched_replanning_plans_less_often_but_still_serves() {
        let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
        let workload = UniformBaseline::new(spec).generate();
        let per_arrival = run_workload(
            &runner(PolicyKind::Greedy),
            &workload,
            &[],
            EngineConfig::default(),
        );
        let batched = run_workload(
            &runner(PolicyKind::Greedy),
            &workload,
            &[],
            EngineConfig::batched(16),
        );
        assert!(batched.run.planning_calls < per_arrival.run.planning_calls);
        assert!(batched.run.assigned_tasks > 0);
        assert!(per_arrival.run.assigned_tasks > 0);
    }

    #[test]
    fn engine_runs_are_deterministic() {
        let spec = ScenarioSpec::small().with_tasks(120).with_workers(10);
        let workload = HeavyTailedChurn::new(spec).generate();
        let a = run_workload(
            &runner(PolicyKind::Dta),
            &workload,
            &[],
            EngineConfig::default(),
        );
        let b = run_workload(
            &runner(PolicyKind::Dta),
            &workload,
            &[],
            EngineConfig::default(),
        );
        assert_eq!(a.run.assigned_tasks, b.run.assigned_tasks);
        assert_eq!(a.run.per_worker, b.run.per_worker);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn infinite_windows_and_expirations_are_legal() {
        // An always-available worker and a never-expiring task are valid in
        // the core model; the engine must skip their death events instead of
        // panicking on a non-finite schedule time.
        let workload = Workload {
            workers: vec![worker(0.0, 0.0, 0.0, f64::INFINITY, 5.0)],
            tasks: vec![
                task(1.0, 0.0, 1.0, f64::INFINITY),
                task(2.0, 0.0, 2.0, 60.0),
            ],
        };
        let outcome = run_workload(
            &runner(PolicyKind::Dta),
            &workload,
            &[],
            EngineConfig::default(),
        );
        assert_eq!(outcome.run.assigned_tasks, 2);
        assert_eq!(outcome.stats.offline, 0, "no offline event scheduled");
        assert_eq!(outcome.stats.expirations, 1, "only the finite task expires");
    }

    #[test]
    #[should_panic(expected = "replan_interval")]
    fn zero_tick_interval_is_rejected() {
        // A tick that does not advance time would re-arm at the queue head
        // forever; the constructor must refuse it.
        let _ = StreamEngine::new(EngineConfig {
            replan_interval: Some(0.0),
            ..EngineConfig::default()
        });
    }

    #[test]
    fn peak_queue_len_resets_between_runs() {
        let big = UniformBaseline::new(ScenarioSpec::small().with_tasks(300)).generate();
        let tiny = Workload {
            workers: vec![worker(0.0, 0.0, 0.0, 100.0, 5.0)],
            tasks: vec![task(1.0, 0.0, 1.0, 50.0)],
        };
        let r = runner(PolicyKind::Greedy);
        let mut engine = StreamEngine::new(EngineConfig::default());
        engine.load(&big);
        let first = engine.run(&r, &[]);
        engine.load(&tiny);
        let second = engine.run(&r, &[]);
        assert!(first.stats.peak_queue_len >= 300);
        assert!(
            second.stats.peak_queue_len <= 4,
            "second run inherited the first run's peak: {}",
            second.stats.peak_queue_len
        );
    }

    #[test]
    fn all_scenarios_run_end_to_end_on_the_engine() {
        let spec = ScenarioSpec::small().with_tasks(150).with_workers(15);
        for scenario in builtin_scenarios(spec) {
            let workload = scenario.generate();
            let outcome = run_workload(
                &runner(PolicyKind::Greedy),
                &workload,
                &[],
                EngineConfig::default(),
            );
            assert!(
                outcome.run.assigned_tasks > 0,
                "{} served nothing",
                scenario.name()
            );
            assert_eq!(outcome.stats.arrivals, workload.arrival_count());
            assert!(outcome.run.assigned_tasks <= workload.tasks.len());
        }
    }
}
