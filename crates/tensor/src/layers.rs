//! Neural-network layers built on the autograd substrate.
//!
//! Only the layers needed by the paper's three predictors are provided:
//! dense (fully connected) layers, the gated dilated causal temporal
//! convolution of Eq. 7, and an LSTM cell for the baseline of §V-B.1.

use crate::autograd::Var;
use crate::init;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// A fully connected layer `y = x·W + b`.
#[derive(Clone)]
pub struct Dense {
    /// Weight matrix of shape `(in_features, out_features)`.
    pub w: Var,
    /// Bias row vector of shape `(1, out_features)`.
    pub b: Var,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialised weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Dense {
        Dense {
            w: Var::parameter(init::xavier_uniform(in_features, out_features, rng)),
            b: Var::parameter(init::zeros(1, out_features)),
        }
    }

    /// Applies the layer to a batch `x` of shape `(n, in_features)`.
    pub fn forward(&self, x: &Var) -> Var {
        x.matmul(&self.w).add_bias(&self.b)
    }

    /// The trainable parameters of the layer.
    pub fn parameters(&self) -> Vec<Var> {
        vec![self.w.clone(), self.b.clone()]
    }

    /// Number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        let (r, c) = self.w.shape();
        r * c + self.b.shape().1
    }
}

/// The gated dilated causal temporal convolution of Eq. 7:
///
/// `Z = tanh(Θ₁ ⋆ C + b₁) ⊙ σ(Θ₂ ⋆ C + b₂)`
///
/// where `⋆` is a dilated causal convolution along the time axis (rows of the
/// input). The convolution is realised by unfolding the `kernel` dilated taps
/// of every timestep into one row and applying a dense layer, which is exactly
/// equivalent to a 1-D convolution with kernel size `kernel` and dilation `d`.
#[derive(Clone)]
pub struct GatedTemporalConv {
    filter: Dense,
    gate: Dense,
    kernel: usize,
    dilation: usize,
}

impl GatedTemporalConv {
    /// Creates a gated temporal convolution mapping `in_features` per timestep
    /// to `out_features` per timestep.
    pub fn new(
        in_features: usize,
        out_features: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut StdRng,
    ) -> GatedTemporalConv {
        GatedTemporalConv {
            filter: Dense::new(in_features * kernel, out_features, rng),
            gate: Dense::new(in_features * kernel, out_features, rng),
            kernel,
            dilation,
        }
    }

    /// Applies the layer to a sequence `x` of shape `(timesteps, in_features)`.
    pub fn forward(&self, x: &Var) -> Var {
        let unfolded = x.unfold_causal(self.kernel, self.dilation);
        let f = self.filter.forward(&unfolded).tanh();
        let g = self.gate.forward(&unfolded).sigmoid();
        f.hadamard(&g)
    }

    /// The trainable parameters of the layer.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.filter.parameters();
        p.extend(self.gate.parameters());
        p
    }

    /// Kernel size (number of dilated taps).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Dilation factor.
    pub fn dilation(&self) -> usize {
        self.dilation
    }
}

/// A single LSTM cell (used by the LSTM baseline predictor).
///
/// The cell follows the standard formulation with separate input, forget,
/// cell and output gates; `forward` consumes one timestep for a batch of
/// sequences and returns the updated `(hidden, cell)` state.
#[derive(Clone)]
pub struct LstmCell {
    w_i: Dense,
    w_f: Dense,
    w_g: Dense,
    w_o: Dense,
    hidden_size: usize,
}

impl LstmCell {
    /// Creates an LSTM cell with the given input and hidden sizes.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut StdRng) -> LstmCell {
        let concat = input_size + hidden_size;
        LstmCell {
            w_i: Dense::new(concat, hidden_size, rng),
            w_f: Dense::new(concat, hidden_size, rng),
            w_g: Dense::new(concat, hidden_size, rng),
            w_o: Dense::new(concat, hidden_size, rng),
            hidden_size,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Zero initial `(hidden, cell)` state for a batch of `batch` sequences.
    pub fn zero_state(&self, batch: usize) -> (Var, Var) {
        (
            Var::constant(Matrix::zeros(batch, self.hidden_size)),
            Var::constant(Matrix::zeros(batch, self.hidden_size)),
        )
    }

    /// One step: `x` has shape `(batch, input_size)`; returns the new
    /// `(hidden, cell)` pair, each `(batch, hidden_size)`.
    pub fn forward(&self, x: &Var, hidden: &Var, cell: &Var) -> (Var, Var) {
        let xh = x.concat_cols(hidden);
        let i = self.w_i.forward(&xh).sigmoid();
        let f = self.w_f.forward(&xh).sigmoid();
        let g = self.w_g.forward(&xh).tanh();
        let o = self.w_o.forward(&xh).sigmoid();
        let new_cell = f.hadamard(cell).add(&i.hadamard(&g));
        let new_hidden = o.hadamard(&new_cell.tanh());
        (new_hidden, new_cell)
    }

    /// Runs the cell over a whole sequence (rows of `x` are timesteps of a
    /// single series) and returns the final hidden state of shape
    /// `(1, hidden_size)`.
    pub fn run_sequence(&self, x: &Var) -> Var {
        let (timesteps, _) = x.shape();
        let (mut h, mut c) = self.zero_state(1);
        for t in 0..timesteps {
            let xt = x.rows_slice(t, 1);
            let (nh, nc) = self.forward(&xt, &h, &c);
            h = nh;
            c = nc;
        }
        h
    }

    /// The trainable parameters of the cell.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.w_i.parameters();
        p.extend(self.w_f.parameters());
        p.extend(self.w_g.parameters());
        p.extend(self.w_o.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dense_shapes_and_parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(3, 5, &mut rng);
        let x = Var::constant(Matrix::zeros(7, 3));
        assert_eq!(layer.forward(&x).shape(), (7, 5));
        assert_eq!(layer.parameter_count(), 3 * 5 + 5);
        assert_eq!(layer.parameters().len(), 2);
    }

    #[test]
    fn dense_learns_a_linear_map() {
        use crate::optim::Adam;
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(2, 1, &mut rng);
        let mut opt = Adam::new(0.05, layer.parameters());
        // Target function y = 2*x0 - 3*x1 + 1.
        let xs = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[0.5, 0.25],
        ]);
        let ys = Matrix::from_rows(&[&[1.0], &[3.0], &[-2.0], &[0.0], &[1.25]]);
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            opt.zero_grad();
            let pred = layer.forward(&Var::constant(xs.clone()));
            let loss = pred.mse_loss(&ys);
            last = loss.value().get(0, 0);
            loss.backward();
            opt.step();
        }
        assert!(
            last < 1e-3,
            "dense layer failed to fit a linear map: loss={last}"
        );
    }

    #[test]
    fn gated_temporal_conv_preserves_timesteps() {
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GatedTemporalConv::new(4, 8, 3, 2, &mut rng);
        let x = Var::constant(Matrix::zeros(10, 4));
        assert_eq!(conv.forward(&x).shape(), (10, 8));
        assert_eq!(conv.parameters().len(), 4);
        assert_eq!(conv.kernel(), 3);
        assert_eq!(conv.dilation(), 2);
    }

    #[test]
    fn gated_conv_output_is_bounded_by_gate() {
        // tanh ⊙ sigmoid is always within (-1, 1).
        let mut rng = StdRng::seed_from_u64(3);
        let conv = GatedTemporalConv::new(2, 3, 3, 1, &mut rng);
        let x = Var::constant(Matrix::filled(6, 2, 100.0));
        let y = conv.forward(&x).value();
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_state_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let cell = LstmCell::new(3, 6, &mut rng);
        let (h, c) = cell.zero_state(2);
        let x = Var::constant(Matrix::zeros(2, 3));
        let (h2, c2) = cell.forward(&x, &h, &c);
        assert_eq!(h2.shape(), (2, 6));
        assert_eq!(c2.shape(), (2, 6));
        assert_eq!(cell.parameters().len(), 8);
        assert_eq!(cell.hidden_size(), 6);
    }

    #[test]
    fn lstm_learns_to_remember_the_first_input() {
        use crate::optim::Adam;
        // Toy memory task: output should match the first element of the
        // sequence regardless of what follows.
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(1, 8, &mut rng);
        let head = Dense::new(8, 1, &mut rng);
        let mut params = cell.parameters();
        params.extend(head.parameters());
        let mut opt = Adam::new(0.02, params);
        let sequences = [
            (vec![1.0, 0.3, -0.2, 0.8], 1.0),
            (vec![0.0, 0.9, 0.1, -0.5], 0.0),
            (vec![1.0, -0.7, 0.2, 0.4], 1.0),
            (vec![0.0, 0.5, -0.9, 0.6], 0.0),
        ];
        let mut last = f64::INFINITY;
        for _ in 0..150 {
            opt.zero_grad();
            let mut total: Option<Var> = None;
            for (seq, target) in &sequences {
                let rows: Vec<&[f64]> = seq.chunks(1).collect();
                let x = Var::constant(Matrix::from_rows(&rows));
                let h = cell.run_sequence(&x);
                let pred = head.forward(&h).sigmoid();
                let loss = pred.bce_loss(&Matrix::filled(1, 1, *target));
                total = Some(match total {
                    Some(acc) => acc.add(&loss),
                    None => loss,
                });
            }
            let loss = total
                .expect("non-empty batch")
                .scale(1.0 / sequences.len() as f64);
            last = loss.value().get(0, 0);
            loss.backward();
            opt.step();
        }
        assert!(
            last < 0.2,
            "LSTM failed to learn the memory task: loss={last}"
        );
    }
}
