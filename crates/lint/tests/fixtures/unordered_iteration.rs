// Fixture: unordered-iteration. Scanned with `--context assign`, so this
// file masquerades as production code of a deterministic crate. It is never
// compiled — the engine's workspace walk skips `tests/fixtures`.

fn positive() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    for (k, v) in m.iter() {
        push(k, v);
    }
}

fn negative_order_insensitive_sink() {
    let mut m = HashMap::new();
    let n = m.keys().count();
    let total: u64 = m.values().sum();
    drop((n, total));
}

fn negative_immediately_sorted() {
    let mut m = HashMap::new();
    let mut v: Vec<_> = m.keys().collect();
    v.sort_unstable();
}

fn suppressed_with_rationale() {
    let mut m = HashMap::new();
    // datawa-lint: allow(unordered-iteration) -- fixture: accumulation below is commutative
    for (_k, v) in m.iter() {
        total += v;
    }
}

fn positive_chain_continuation() {
    let mut m = HashMap::new();
    let v: Vec<_> = m
        .keys()
        .collect::<Vec<_>>();
    consume(v);
}

fn negative_chain_sorted_on_following_line() {
    let mut m = HashMap::new();
    let mut v: Vec<_> = m
        .keys()
        .collect::<Vec<_>>();
    v.sort_unstable();
}

fn negative_long_chain_ends_in_commutative_sink() {
    let mut m = HashMap::new();
    let total: usize = m
        .values()
        .map(|v| *v as usize)
        .filter(|n| *n > 0)
        .map(|n| n * 2)
        .map(|n| n + 1)
        .sum();
    consume(total);
}
