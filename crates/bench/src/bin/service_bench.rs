//! Transport-level throughput harness: binds a loopback [`NetServer`] and
//! drives many concurrent tenant clients through real TCP connections,
//! reporting ingest-latency percentiles (`net.ingest_seconds`) and streamed
//! decisions/sec into a `BENCH_<tag>.json` report.
//!
//! ```text
//! service_bench [--clients 8] [--tasks N] [--workers N] [--tag 9] [--out DIR] [--policy greedy] [--chaos SEED]
//! ```
//!
//! `--chaos SEED` appends one additional run driven through a
//! [`ChaosProxy`](datawa_net::ChaosProxy) with a seeded mid-stream
//! connection reset plus a pump kill, delivered by the retrying
//! [`ResilientClient`](datawa_net::ResilientClient) — it measures what
//! fault recovery costs end-to-end (retries re-ingest, so its ingest
//! histogram counts more frames than the clean rows). The row's scenario
//! name carries a `-chaos` suffix so it only ever gates against other
//! chaos rows.
//!
//! One run per benched scenario, every run at the full client count; the
//! `threads` field of a run row is the *client* count (the planner pool uses
//! its default width), and scenario names carry a `service-` prefix so the
//! rows never collide with the soak grid's — `bench_compare` then matches
//! nothing between a soak report and a service report and passes vacuously,
//! by design.
//!
//! Admission quotas are raised far above the offered load: this harness
//! measures the transport and engine under concurrency, so a refusal would
//! make the numbers silently lossy. The report asserts
//! `net.rejected_admission == 0`; admission behaviour itself is covered by
//! `crates/net/tests/admission.rs`.

use datawa_assign::PolicyKind;
use datawa_net::{NetClient, NetConfig, NetServer};
use datawa_obs::JsonValue;
use datawa_service::{IngestSource, SourcePoll, WorkloadSource};
use datawa_stream::{builtin_scenarios, ScenarioSpec};
use std::time::Instant;

const NS_PER_MS: f64 = 1_000_000.0;

/// Scenario indexes into [`builtin_scenarios`] this harness drives: the
/// steady-state and the bursty generator. The slow heavy-tailed generator is
/// a soak concern, not a transport one.
const SCENARIOS: [usize; 2] = [0, 1];

struct Args {
    clients: usize,
    tasks: usize,
    workers: usize,
    tag: String,
    out_dir: String,
    policy: PolicyKind,
    chaos: Option<u64>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            clients: 8,
            tasks: 3_000,
            workers: 150,
            tag: "service".to_string(),
            out_dir: ".".to_string(),
            policy: PolicyKind::Greedy,
            chaos: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--clients" => args.clients = value().parse().expect("--clients takes a number"),
                "--tasks" => args.tasks = value().parse().expect("--tasks takes a number"),
                "--workers" => args.workers = value().parse().expect("--workers takes a number"),
                "--tag" => args.tag = value(),
                "--out" => args.out_dir = value(),
                "--chaos" => args.chaos = Some(value().parse().expect("--chaos takes a seed")),
                "--policy" => {
                    let name = value().to_ascii_lowercase();
                    args.policy = PolicyKind::all()
                        .iter()
                        .copied()
                        .find(|p| p.name().to_ascii_lowercase() == name)
                        .unwrap_or_else(|| panic!("unknown policy {name}"));
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(args.clients > 0, "--clients must be positive");
        assert!(args.tasks > 0, "--tasks must be positive");
        args
    }
}

/// Per-tenant totals from the server's orderly `Closed` frame.
#[derive(Default)]
struct Totals {
    events: u64,
    assigned: u64,
    decisions: u64,
    planning_calls: u64,
}

/// Streams one reseeded workload of `scenario_index` through a fresh tenant
/// connection and returns the server-reported session totals.
fn drive_tenant(
    addr: std::net::SocketAddr,
    scenario_index: usize,
    tenant: String,
    spec: ScenarioSpec,
) -> Totals {
    let workload = builtin_scenarios(spec)
        .swap_remove(scenario_index)
        .generate();
    let mut client = NetClient::connect(addr, &tenant, "").expect("loopback handshake");
    let mut source = WorkloadSource::new(&workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event).expect("send event frame");
    }
    let outcome = client.close();
    assert!(
        outcome.errors.is_empty(),
        "{tenant}: server reported errors: {:?}",
        outcome.errors
    );
    assert!(
        outcome.retry_after.is_empty(),
        "{tenant}: admission refused {} events despite raised quotas",
        outcome.retry_after.len()
    );
    let closed = outcome.closed.expect("orderly Closed frame");
    Totals {
        events: closed.events,
        assigned: closed.assigned,
        decisions: closed.decisions,
        planning_calls: closed.planning_calls,
    }
}

fn histogram_ms(snapshot: &datawa_obs::MetricsSnapshot, name: &str) -> JsonValue {
    let summary = snapshot.histograms.get(name).copied().unwrap_or_default();
    let ms = |ns: u64| JsonValue::from_f64(ns as f64 / NS_PER_MS);
    JsonValue::object(vec![
        ("count".into(), JsonValue::from_u64(summary.count)),
        ("p50_ms".into(), ms(summary.p50)),
        ("p95_ms".into(), ms(summary.p95)),
        ("p99_ms".into(), ms(summary.p99)),
        ("max_ms".into(), ms(summary.max)),
        (
            "mean_ms".into(),
            JsonValue::from_f64(summary.mean() / NS_PER_MS),
        ),
    ])
}

fn counter(snapshot: &datawa_obs::MetricsSnapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

fn bench_scenario(args: &Args, scenario_index: usize) -> (String, JsonValue) {
    let scenario_name = builtin_scenarios(ScenarioSpec::small())[scenario_index].name();
    let scenario = format!("service-{scenario_name}");

    // Quotas far above the offered load: refusals would make throughput
    // numbers lossy (see module docs). A client's whole workload fits in its
    // pending quota even if its pump never wakes.
    let per_client_events = 2 * args.tasks + 2 * args.workers;
    let cfg = NetConfig {
        policy: args.policy,
        tenant_pending_quota: 4 * per_client_events,
        global_pending_cap: 8 * args.clients * per_client_events,
        max_connections: args.clients + 4,
        ..NetConfig::default()
    };
    let mut server = NetServer::bind(cfg).expect("bind 127.0.0.1:0");
    let addr = server.addr();

    #[allow(clippy::disallowed_methods)] // throughput measurement is this binary's purpose
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|i| {
            let spec = ScenarioSpec::small()
                .with_tasks(args.tasks)
                .with_workers(args.workers)
                .with_seed(9_000 + i as u64);
            let tenant = format!("bench-{i}");
            std::thread::spawn(move || drive_tenant(addr, scenario_index, tenant, spec))
        })
        .collect();
    let mut totals = Totals::default();
    for handle in handles {
        let t = handle.join().expect("client thread");
        totals.events += t.events;
        totals.assigned += t.assigned;
        totals.decisions += t.decisions;
        totals.planning_calls += t.planning_calls;
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    server.shutdown();
    let snapshot = server.metrics().snapshot();
    let rejected = counter(&snapshot, "net.rejected_admission");
    assert_eq!(
        rejected, 0,
        "admission refused events despite raised quotas"
    );
    assert!(totals.assigned > 0, "{scenario}: no tasks assigned");

    eprintln!(
        "service_bench: {scenario} clients={} events={} {:.0} decisions/sec",
        args.clients,
        totals.events,
        totals.decisions as f64 / wall_seconds.max(1e-9)
    );
    let row = JsonValue::object(vec![
        ("scenario".into(), JsonValue::string(&scenario)),
        ("threads".into(), JsonValue::from_u64(args.clients as u64)),
        ("clients".into(), JsonValue::from_u64(args.clients as u64)),
        ("events".into(), JsonValue::from_u64(totals.events)),
        (
            "assigned_tasks".into(),
            JsonValue::from_u64(totals.assigned),
        ),
        (
            "planning_calls".into(),
            JsonValue::from_u64(totals.planning_calls),
        ),
        ("decisions".into(), JsonValue::from_u64(totals.decisions)),
        ("wall_seconds".into(), JsonValue::from_f64(wall_seconds)),
        (
            "decisions_per_sec".into(),
            JsonValue::from_f64(totals.decisions as f64 / wall_seconds.max(1e-9)),
        ),
        (
            "events_per_sec".into(),
            JsonValue::from_f64(totals.events as f64 / wall_seconds.max(1e-9)),
        ),
        (
            "ingest".into(),
            histogram_ms(&snapshot, "net.ingest_seconds"),
        ),
        (
            "replan".into(),
            histogram_ms(&snapshot, "assign.replan_seconds"),
        ),
        (
            "frames_in".into(),
            JsonValue::from_u64(counter(&snapshot, "net.frames_in")),
        ),
        (
            "frames_out".into(),
            JsonValue::from_u64(counter(&snapshot, "net.frames_out")),
        ),
        ("rejected_admission".into(), JsonValue::from_u64(rejected)),
    ]);
    (scenario, row)
}

/// One faulted run: a single resilient tenant streamed through a
/// [`ChaosProxy`](datawa_net::ChaosProxy) that resets the first connection
/// mid-stream, against a server that kills the tenant's pump once —
/// measuring the end-to-end cost of journal replay plus reconnect/resume.
/// The decision stream itself is still required to arrive intact (count
/// check here; the bitwise pin lives in `chaos_smoke` and
/// `tests/chaos_recovery.rs`).
fn bench_chaos_scenario(args: &Args, seed: u64) -> (String, JsonValue) {
    use datawa_net::{ChaosPlan, ChaosProxy, Fault, ResilientClient, RetryOutcome, RetryPolicy};

    let scenario_name = builtin_scenarios(ScenarioSpec::small())[0].name();
    let scenario = format!("service-{scenario_name}-chaos");
    let spec = ScenarioSpec::small()
        .with_tasks(args.tasks)
        .with_workers(args.workers)
        .with_seed(9_000);
    let workload = builtin_scenarios(spec).swap_remove(0).generate();
    let mut total_events: u64 = 0;
    let mut counter_source = WorkloadSource::new(&workload);
    while let SourcePoll::Ready(..) = counter_source.poll() {
        total_events += 1;
    }

    // Retries re-send the un-acked tail, so the pending quota must absorb
    // several re-ingests of the same workload.
    let per_client_events = 2 * args.tasks + 2 * args.workers;
    let tenant = "bench-chaos".to_string();
    let cfg = NetConfig {
        policy: args.policy,
        tenant_pending_quota: 16 * per_client_events,
        global_pending_cap: 32 * per_client_events,
        max_connections: 16,
        pump_kills: vec![(tenant.clone(), total_events / 2)],
        ..NetConfig::default()
    };
    let mut server = NetServer::bind(cfg).expect("bind 127.0.0.1:0");
    let plan = ChaosPlan {
        conns: vec![Some(Fault::Reset {
            after_frames: (total_events / 3).max(2),
        })],
    };
    let mut proxy = ChaosProxy::spawn(server.addr(), plan).expect("bind chaos proxy");

    let mut client = ResilientClient::new(
        proxy.addr(),
        &tenant,
        "",
        RetryPolicy {
            jitter_seed: seed,
            ..RetryPolicy::default()
        },
    );
    let mut source = WorkloadSource::new(&workload);
    #[allow(clippy::disallowed_methods)] // throughput measurement is this binary's purpose
    let started = Instant::now();
    while let SourcePoll::Ready(time, event) = source.poll() {
        client.send_event(time, &event);
    }
    let (outcome, attempts) = match client.deliver() {
        RetryOutcome::Completed { outcome, attempts } => (outcome, attempts),
        RetryOutcome::GaveUp {
            attempts,
            last_error,
            // datawa-lint: allow(panic-in-service-path) -- bench harness assertion, not serving code
        } => panic!("chaos tenant gave up after {attempts} attempts: {last_error}"),
    };
    let wall_seconds = started.elapsed().as_secs_f64();
    assert!(attempts > 1, "the fault plan injected nothing");
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    let closed = outcome.closed.expect("orderly Closed frame");
    assert_eq!(
        closed.decisions as usize,
        outcome.decisions.len(),
        "client-visible decision stream diverged from the server count"
    );

    proxy.shutdown();
    server.shutdown();
    let snapshot = server.metrics().snapshot();
    let recoveries = counter(&snapshot, "net.pump_recoveries");
    assert!(recoveries >= 1, "the seeded pump kill never fired");
    assert!(closed.assigned > 0, "{scenario}: no tasks assigned");

    eprintln!(
        "service_bench: {scenario} seed={seed} attempts={attempts} recoveries={recoveries} \
         {:.0} decisions/sec",
        closed.decisions as f64 / wall_seconds.max(1e-9)
    );
    let row = JsonValue::object(vec![
        ("scenario".into(), JsonValue::string(&scenario)),
        ("threads".into(), JsonValue::from_u64(1)),
        ("clients".into(), JsonValue::from_u64(1)),
        ("events".into(), JsonValue::from_u64(closed.events)),
        (
            "assigned_tasks".into(),
            JsonValue::from_u64(closed.assigned),
        ),
        (
            "planning_calls".into(),
            JsonValue::from_u64(closed.planning_calls),
        ),
        ("decisions".into(), JsonValue::from_u64(closed.decisions)),
        ("wall_seconds".into(), JsonValue::from_f64(wall_seconds)),
        (
            "decisions_per_sec".into(),
            JsonValue::from_f64(closed.decisions as f64 / wall_seconds.max(1e-9)),
        ),
        (
            "events_per_sec".into(),
            JsonValue::from_f64(closed.events as f64 / wall_seconds.max(1e-9)),
        ),
        (
            "ingest".into(),
            histogram_ms(&snapshot, "net.ingest_seconds"),
        ),
        (
            "replan".into(),
            histogram_ms(&snapshot, "assign.replan_seconds"),
        ),
        (
            "recovery".into(),
            histogram_ms(&snapshot, "net.recovery_seconds"),
        ),
        (
            "chaos".into(),
            JsonValue::object(vec![
                ("seed".into(), JsonValue::from_u64(seed)),
                ("attempts".into(), JsonValue::from_u64(attempts as u64)),
                ("recoveries".into(), JsonValue::from_u64(recoveries)),
            ]),
        ),
        (
            "frames_in".into(),
            JsonValue::from_u64(counter(&snapshot, "net.frames_in")),
        ),
        (
            "frames_out".into(),
            JsonValue::from_u64(counter(&snapshot, "net.frames_out")),
        ),
        (
            "rejected_admission".into(),
            JsonValue::from_u64(counter(&snapshot, "net.rejected_admission")),
        ),
    ]);
    (scenario, row)
}

fn main() {
    let args = Args::parse();

    let mut scenarios = Vec::new();
    let mut runs = Vec::new();
    for scenario_index in SCENARIOS {
        let (scenario, row) = bench_scenario(&args, scenario_index);
        scenarios.push(JsonValue::string(&scenario));
        runs.push(row);
    }
    if let Some(seed) = args.chaos {
        let (scenario, row) = bench_chaos_scenario(&args, seed);
        scenarios.push(JsonValue::string(&scenario));
        runs.push(row);
    }

    let report = JsonValue::object(vec![
        ("bench".into(), JsonValue::string("service")),
        ("tag".into(), JsonValue::string(args.tag.clone())),
        ("policy".into(), JsonValue::string(args.policy.name())),
        ("clients".into(), JsonValue::from_u64(args.clients as u64)),
        (
            "tasks_per_client".into(),
            JsonValue::from_u64(args.tasks as u64),
        ),
        ("scenarios".into(), JsonValue::Arr(scenarios)),
        ("runs".into(), JsonValue::Arr(runs)),
    ]);

    let path = format!("{}/BENCH_{}.json", args.out_dir, args.tag);
    if let Err(e) = std::fs::write(&path, report.render()) {
        eprintln!("service_bench: cannot write {path}: {e}");
        std::process::exit(2);
    }

    // Self-validation: every row must satisfy bench_compare's `load_runs`
    // (`scenario`, numeric `threads`, `replan.p50_ms`, `assigned_tasks`,
    // `planning_calls`) and carry a populated ingest histogram, so a service
    // report sitting next to the soak history can never crash the gate.
    let reread = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("service_bench: cannot reread {path}: {e}");
        std::process::exit(2);
    });
    let parsed = JsonValue::parse(&reread).unwrap_or_else(|e| {
        eprintln!("service_bench: {path} failed to parse back ({e:?}) — renderer bug");
        std::process::exit(2);
    });
    let runs = parsed.get("runs").expect("report has a runs key").items();
    let expected_runs = SCENARIOS.len() + usize::from(args.chaos.is_some());
    assert_eq!(runs.len(), expected_runs, "one run per benched scenario");
    for run in runs {
        let scenario = run
            .get("scenario")
            .and_then(JsonValue::as_str)
            .expect("run has a scenario");
        assert!(
            scenario.starts_with("service-"),
            "service rows must never collide with soak scenario names"
        );
        for field in ["threads", "assigned_tasks", "planning_calls"] {
            assert!(
                run.get(field).and_then(JsonValue::as_u64).is_some(),
                "run missing numeric `{field}` required by bench_compare"
            );
        }
        let replan_p50 = run
            .get("replan")
            .and_then(|r| r.get("p50_ms"))
            .and_then(JsonValue::as_f64)
            .expect("replan p50 present");
        assert!(replan_p50.is_finite(), "replan p50 must be finite");
        let ingested = run
            .get("ingest")
            .and_then(|i| i.get("count"))
            .and_then(JsonValue::as_u64)
            .expect("ingest count present");
        assert!(ingested > 0, "ingest histogram must have observed frames");
    }
    println!("wrote {path} ({} runs)", runs.len());
    println!("service_bench_ok=1");
}
