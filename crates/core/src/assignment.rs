//! Spatial task assignments (Definition 5) and assignment statistics.

use crate::sequence::TaskSequence;
use crate::store::{TaskStore, WorkerStore};
use crate::task::TaskId;
use crate::time::Timestamp;
use crate::travel::TravelModel;
use crate::worker::WorkerId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A spatial task assignment `A`: a set of `(w, VR(S_w))` pairs (Definition 5).
///
/// The map is keyed by worker id; workers with no assigned sequence simply do
/// not appear. The single-task-assignment mode of the paper (each task served
/// by at most one worker) is enforced by [`Assignment::validate`] and by the
/// assignment algorithms themselves.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    sequences: BTreeMap<WorkerId, TaskSequence>,
}

/// Aggregate statistics about an assignment, used by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AssignmentStats {
    /// Total number of assigned tasks `|A.S|` — the paper's primary metric.
    pub assigned_tasks: usize,
    /// Number of workers with a non-empty sequence.
    pub active_workers: usize,
    /// Length of the longest per-worker sequence.
    pub max_sequence_len: usize,
    /// Mean sequence length over active workers (0 when none).
    pub mean_sequence_len: f64,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Sets (replaces) the sequence planned for `worker`. Empty sequences are
    /// removed from the map.
    pub fn set(&mut self, worker: WorkerId, sequence: TaskSequence) {
        if sequence.is_empty() {
            self.sequences.remove(&worker);
        } else {
            self.sequences.insert(worker, sequence);
        }
    }

    /// Removes the sequence planned for `worker`, returning it if present.
    pub fn remove(&mut self, worker: WorkerId) -> Option<TaskSequence> {
        self.sequences.remove(&worker)
    }

    /// The sequence currently planned for `worker`, if any.
    pub fn get(&self, worker: WorkerId) -> Option<&TaskSequence> {
        self.sequences.get(&worker)
    }

    /// Mutable access to the sequence planned for `worker`, if any.
    pub fn get_mut(&mut self, worker: WorkerId) -> Option<&mut TaskSequence> {
        self.sequences.get_mut(&worker)
    }

    /// Iterates over `(worker, sequence)` pairs in worker-id order.
    pub fn iter(&self) -> impl Iterator<Item = (WorkerId, &TaskSequence)> {
        self.sequences.iter().map(|(w, s)| (*w, s))
    }

    /// Number of workers with a planned sequence.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether no worker has a planned sequence.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// The set of all assigned tasks `A.S = ∪_w VR(S_w)`.
    pub fn assigned_tasks(&self) -> HashSet<TaskId> {
        self.sequences.values().flat_map(|s| s.iter()).collect()
    }

    /// `|A.S|`, the objective the ATA problem maximises. Counts distinct tasks.
    pub fn assigned_count(&self) -> usize {
        self.assigned_tasks().len()
    }

    /// The worker serving `task`, if any.
    pub fn worker_of(&self, task: TaskId) -> Option<WorkerId> {
        self.sequences
            .iter()
            .find(|(_, seq)| seq.contains(task))
            .map(|(w, _)| *w)
    }

    /// Merges another assignment into this one. Panics in debug builds if a
    /// worker appears in both (sub-problems produced by worker dependency
    /// separation are disjoint by construction).
    pub fn merge(&mut self, other: Assignment) {
        for (w, seq) in other.sequences {
            debug_assert!(
                !self.sequences.contains_key(&w),
                "worker {w} assigned by two sub-problems"
            );
            self.set(w, seq);
        }
    }

    /// Aggregate statistics for reporting.
    pub fn stats(&self) -> AssignmentStats {
        let assigned_tasks = self.assigned_count();
        let active_workers = self.sequences.len();
        let max_sequence_len = self.sequences.values().map(|s| s.len()).max().unwrap_or(0);
        let total_len: usize = self.sequences.values().map(|s| s.len()).sum();
        let mean_sequence_len = if active_workers == 0 {
            0.0
        } else {
            total_len as f64 / active_workers as f64
        };
        AssignmentStats {
            assigned_tasks,
            active_workers,
            max_sequence_len,
            mean_sequence_len,
        }
    }

    /// Full validation of the assignment at time `now`:
    ///
    /// * every per-worker sequence is a valid task sequence (Definition 4), and
    /// * no task is assigned to more than one worker (single task assignment
    ///   mode).
    ///
    /// Returns a list of human-readable violations (empty when valid).
    pub fn validate(
        &self,
        workers: &WorkerStore,
        tasks: &TaskStore,
        travel: &TravelModel,
        now: Timestamp,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        let mut seen: HashSet<TaskId> = HashSet::new();
        for (wid, seq) in self.iter() {
            let worker = match workers.try_get(wid) {
                Some(w) => w,
                None => {
                    violations.push(format!("unknown worker {wid}"));
                    continue;
                }
            };
            if let Some(v) = seq.check_validity(worker, tasks, travel, now) {
                violations.push(format!("worker {wid}: {v}"));
            }
            for tid in seq.iter() {
                if !seen.insert(tid) {
                    violations.push(format!("task {tid} assigned to multiple workers"));
                }
            }
        }
        violations
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Assignment ({} tasks):", self.assigned_count())?;
        for (w, seq) in self.iter() {
            writeln!(f, "  {w} -> {seq}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;
    use crate::task::Task;
    use crate::worker::Worker;

    fn fixture() -> (WorkerStore, TaskStore, TravelModel) {
        let mut workers = WorkerStore::new();
        workers.insert(Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            10.0,
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        workers.insert(Worker::new(
            WorkerId(0),
            Location::new(5.0, 0.0),
            10.0,
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        let mut tasks = TaskStore::new();
        for x in 1..=4 {
            tasks.insert(Task::new(
                TaskId(0),
                Location::new(x as f64, 0.0),
                Timestamp(0.0),
                Timestamp(50.0),
            ));
        }
        (workers, tasks, TravelModel::euclidean(1.0))
    }

    #[test]
    fn assigned_count_deduplicates() {
        let mut a = Assignment::new();
        a.set(WorkerId(0), TaskSequence::from_ids([TaskId(0), TaskId(1)]));
        a.set(WorkerId(1), TaskSequence::from_ids([TaskId(1), TaskId(2)]));
        // Task 1 counted once.
        assert_eq!(a.assigned_count(), 3);
        assert_eq!(a.stats().active_workers, 2);
    }

    #[test]
    fn empty_sequences_are_dropped() {
        let mut a = Assignment::new();
        a.set(WorkerId(0), TaskSequence::empty());
        assert!(a.is_empty());
        a.set(WorkerId(0), TaskSequence::from_ids([TaskId(0)]));
        assert_eq!(a.len(), 1);
        a.set(WorkerId(0), TaskSequence::empty());
        assert!(a.is_empty());
    }

    #[test]
    fn validate_accepts_a_feasible_assignment() {
        let (workers, tasks, travel) = fixture();
        let mut a = Assignment::new();
        a.set(WorkerId(0), TaskSequence::from_ids([TaskId(0), TaskId(1)]));
        a.set(WorkerId(1), TaskSequence::from_ids([TaskId(3)]));
        assert!(a
            .validate(&workers, &tasks, &travel, Timestamp(0.0))
            .is_empty());
    }

    #[test]
    fn validate_flags_double_assignment() {
        let (workers, tasks, travel) = fixture();
        let mut a = Assignment::new();
        a.set(WorkerId(0), TaskSequence::from_ids([TaskId(0)]));
        a.set(WorkerId(1), TaskSequence::from_ids([TaskId(0)]));
        let v = a.validate(&workers, &tasks, &travel, Timestamp(0.0));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("multiple workers"));
    }

    #[test]
    fn merge_combines_disjoint_assignments() {
        let mut a = Assignment::new();
        a.set(WorkerId(0), TaskSequence::from_ids([TaskId(0)]));
        let mut b = Assignment::new();
        b.set(WorkerId(1), TaskSequence::from_ids([TaskId(1)]));
        a.merge(b);
        assert_eq!(a.assigned_count(), 2);
        assert_eq!(a.worker_of(TaskId(1)), Some(WorkerId(1)));
    }

    #[test]
    fn stats_report_sequence_lengths() {
        let mut a = Assignment::new();
        a.set(
            WorkerId(0),
            TaskSequence::from_ids([TaskId(0), TaskId(1), TaskId(2)]),
        );
        a.set(WorkerId(1), TaskSequence::from_ids([TaskId(3)]));
        let s = a.stats();
        assert_eq!(s.assigned_tasks, 4);
        assert_eq!(s.max_sequence_len, 3);
        assert!((s.mean_sequence_len - 2.0).abs() < 1e-12);
    }
}
