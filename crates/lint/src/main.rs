//! `datawa-lint` CLI. See the crate docs and the top-level `LINTS.md`.
//!
//! ```text
//! datawa-lint --workspace [--root <dir>] [--format text|json]
//! datawa-lint [--context <crate>] <path>…
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed findings, `2` usage/I-O error.

use datawa_lint::{run, Options};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: datawa-lint (--workspace | <path>…) [--root <dir>] \
         [--format text|json] [--context <crate>] [--list]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = Options {
        root: PathBuf::from("."),
        ..Options::default()
    };
    let mut format_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => opts.root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--context" => {
                opts.context_crate = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                _ => usage(),
            },
            "--list" => {
                for (name, what) in datawa_lint::rules::RULES {
                    println!("{name}: {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        usage();
    }

    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("datawa-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "datawa-lint: {} error(s), {} warning(s), {} suppressed, {} file(s) scanned",
            report.errors(),
            report.warnings(),
            report.suppressed,
            report.files_scanned
        );
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
