//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`] (seedable, deterministic), [`Rng::gen_range`] over `f64`
//! and integer ranges, [`Rng::sample`] with user-defined
//! [`distributions::Distribution`]s, and the [`prelude`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — statistically solid for simulation
//! workloads, and fully deterministic for a fixed seed.

pub mod distributions;
pub mod rngs;

/// A source of raw randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open, as in rand 0.8).
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from an arbitrary distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        u64_to_unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
pub(crate) fn u64_to_unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One-stop imports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::{Distribution, StandardNormal};
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn f64_samples_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
