//! Maximal valid task sequence generation (§IV-A.1, Eq. 10).
//!
//! For every worker we enumerate valid task sequences over their reachable
//! task set and keep, for each distinct *set* of tasks, the ordering with the
//! earliest completion time (Eq. 10). The result `Q_w` is what both DFSearch
//! variants branch over.

use crate::config::AssignConfig;
use datawa_core::{TaskId, TaskSequence, TaskStore, Timestamp, Worker};
use std::collections::HashMap;

/// The candidate sequences `Q_w` of one worker.
#[derive(Debug, Clone, Default)]
pub struct SequenceSet {
    /// Candidate sequences, sorted by decreasing length then increasing
    /// completion time, so greedy consumers can take the front element.
    pub sequences: Vec<TaskSequence>,
}

impl SequenceSet {
    /// Number of candidate sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the worker has no candidate sequence.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// The longest candidate (first after sorting), if any.
    pub fn best(&self) -> Option<&TaskSequence> {
        self.sequences.first()
    }

    /// Iterates over the candidate sequences.
    pub fn iter(&self) -> impl Iterator<Item = &TaskSequence> {
        self.sequences.iter()
    }
}

/// Enumerates `Q_w` for `worker` over its reachable tasks.
///
/// Depth-first enumeration over orderings with pruning: a prefix that violates
/// any Definition 4 constraint cannot be extended into a valid sequence, so
/// the subtree is skipped. For every distinct task set the minimum-completion
/// ordering is kept (Eq. 10). When `config.include_subsets` is `false`, task
/// sets strictly contained in another surviving task set are dropped
/// ("maximal" sequences only).
pub fn generate_sequences(
    worker: &Worker,
    reachable: &[TaskId],
    tasks: &TaskStore,
    config: &AssignConfig,
    now: Timestamp,
) -> SequenceSet {
    // best completion time per task-set key (sorted ids).
    let mut best: HashMap<Vec<TaskId>, (TaskSequence, Timestamp)> = HashMap::new();
    let mut current: Vec<TaskId> = Vec::new();
    let max_len = config.max_sequence_len.min(reachable.len());
    dfs(
        worker,
        reachable,
        tasks,
        config,
        now,
        &mut current,
        max_len,
        &mut best,
    );
    let mut keys: Vec<Vec<TaskId>> = best.keys().cloned().collect();
    if !config.include_subsets {
        keys.retain(|k| {
            !best
                .keys()
                .any(|other| other.len() > k.len() && k.iter().all(|t| other.contains(t)))
        });
    }
    let mut sequences: Vec<(TaskSequence, Timestamp)> = keys
        .into_iter()
        .map(|k| best.get(&k).expect("key from map").clone())
        .collect();
    sequences.sort_by(|a, b| {
        b.0.len()
            .cmp(&a.0.len())
            .then_with(|| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            // Total order: without the lexicographic tiebreak, sequences tied
            // on (length, completion) would keep the HashMap's per-instance
            // random iteration order, and downstream tie-breaking ("first
            // best wins") would differ between otherwise identical planners —
            // the partitioned pool pins bitwise-equal plans per thread count,
            // which needs deterministic candidate order.
            .then_with(|| a.0.iter().cmp(b.0.iter()))
    });
    SequenceSet {
        sequences: sequences.into_iter().map(|(s, _)| s).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    worker: &Worker,
    reachable: &[TaskId],
    tasks: &TaskStore,
    config: &AssignConfig,
    now: Timestamp,
    current: &mut Vec<TaskId>,
    max_len: usize,
    best: &mut HashMap<Vec<TaskId>, (TaskSequence, Timestamp)>,
) {
    if current.len() >= max_len {
        return;
    }
    for &tid in reachable {
        if current.contains(&tid) {
            continue;
        }
        current.push(tid);
        let sequence = TaskSequence::from_ids(current.iter().copied());
        if sequence.is_valid(worker, tasks, &config.travel, now) {
            let completion = sequence.completion_time(worker, tasks, &config.travel, now);
            let mut key: Vec<TaskId> = current.clone();
            key.sort_unstable();
            let entry = best
                .entry(key)
                .or_insert_with(|| (sequence.clone(), completion));
            if completion < entry.1 {
                *entry = (sequence.clone(), completion);
            }
            dfs(
                worker, reachable, tasks, config, now, current, max_len, best,
            );
        }
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, Task, WorkerId};

    fn store(line: &[(f64, f64)]) -> TaskStore {
        let mut s = TaskStore::new();
        for &(x, e) in line {
            s.insert(Task::new(
                TaskId(0),
                Location::new(x, 0.0),
                Timestamp(0.0),
                Timestamp(e),
            ));
        }
        s
    }

    fn worker_at_origin(d: f64, off: f64) -> Worker {
        Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            d,
            Timestamp(0.0),
            Timestamp(off),
        )
    }

    #[test]
    fn keeps_minimum_completion_ordering_per_task_set() {
        // Tasks at x = 1 and x = 2: order (1, 2) completes at t=2, order (2, 1)
        // at t=3. Only the former must survive for the pair set (Eq. 10).
        let tasks = store(&[(1.0, 100.0), (2.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let config = AssignConfig::unit_speed();
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        let pair = qs
            .iter()
            .find(|s| s.len() == 2)
            .expect("the pair sequence must be generated");
        assert_eq!(pair.tasks(), &[TaskId(0), TaskId(1)]);
        // Singletons + the pair (include_subsets default true).
        assert_eq!(qs.len(), 3);
        assert_eq!(qs.best().unwrap().len(), 2);
    }

    #[test]
    fn invalid_prefixes_are_pruned() {
        // Second task expires too early to be reached after the first.
        let tasks = store(&[(1.0, 100.0), (2.0, 1.5)]);
        let worker = worker_at_origin(10.0, 100.0);
        let config = AssignConfig::unit_speed();
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        // (s1) alone is valid (reached at t=2 >= 1.5? no: travel 2.0 > 1.5 so
        // s1 alone is invalid too) — only (s0) and nothing containing s1.
        assert!(qs.iter().all(|s| !s.contains(TaskId(1))));
        assert_eq!(qs.len(), 1);
    }

    #[test]
    fn maximal_only_drops_subsets() {
        let tasks = store(&[(1.0, 100.0), (2.0, 100.0), (3.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let mut config = AssignConfig::unit_speed();
        config.include_subsets = false;
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1), TaskId(2)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        assert_eq!(qs.len(), 1);
        assert_eq!(qs.best().unwrap().len(), 3);
    }

    #[test]
    fn max_sequence_len_caps_candidates() {
        let tasks = store(&[(1.0, 100.0), (2.0, 100.0), (3.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let mut config = AssignConfig::unit_speed();
        config.max_sequence_len = 1;
        let qs = generate_sequences(
            &worker,
            &[TaskId(0), TaskId(1), TaskId(2)],
            &tasks,
            &config,
            Timestamp(0.0),
        );
        assert_eq!(qs.len(), 3);
        assert!(qs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn every_generated_sequence_is_valid() {
        let tasks = store(&[(0.5, 5.0), (1.5, 6.0), (2.5, 4.0), (0.8, 9.0)]);
        let worker = worker_at_origin(2.0, 7.0);
        let config = AssignConfig::unit_speed();
        let reachable: Vec<TaskId> = tasks.ids().collect();
        let qs = generate_sequences(&worker, &reachable, &tasks, &config, Timestamp(0.0));
        assert!(!qs.is_empty());
        for seq in qs.iter() {
            assert!(seq.is_valid(&worker, &tasks, &config.travel, Timestamp(0.0)));
        }
    }

    #[test]
    fn worker_with_no_reachable_tasks_has_empty_qw() {
        let tasks = store(&[(1.0, 100.0)]);
        let worker = worker_at_origin(10.0, 100.0);
        let config = AssignConfig::unit_speed();
        let qs = generate_sequences(&worker, &[], &tasks, &config, Timestamp(0.0));
        assert!(qs.is_empty());
        assert!(qs.best().is_none());
    }
}
