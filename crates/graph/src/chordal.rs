//! Chordal completion and maximal cliques via Maximum Cardinality Search.
//!
//! §IV-A.3 of the paper partitions the worker dependency graph by (i) adding
//! fill-in edges so the graph becomes chordal and (ii) enumerating the maximal
//! cliques of the chordal graph. Both steps follow the classical Tarjan &
//! Yannakakis construction: an MCS ordering, the elimination game along that
//! ordering (which adds the fill-in edges and yields a perfect elimination
//! ordering of the result), and the clique candidates `{v} ∪ N_later(v)`
//! collected during elimination, filtered down to the maximal ones.

use crate::undirected::UnGraph;
use std::collections::BTreeSet;

/// The result of chordal completion on a graph.
#[derive(Debug, Clone)]
pub struct ChordalDecomposition {
    /// The input graph plus fill-in edges (a chordal supergraph).
    pub chordal: UnGraph,
    /// A perfect elimination ordering of `chordal` (first element eliminated
    /// first).
    pub elimination_order: Vec<usize>,
    /// The fill-in edges that were added.
    pub fill_edges: Vec<(usize, usize)>,
    /// The maximal cliques of `chordal`, each sorted ascending.
    pub cliques: Vec<Vec<usize>>,
}

/// Computes an MCS vertex ordering: repeatedly pick the unnumbered vertex with
/// the largest number of numbered neighbours (ties broken by smallest index).
/// The returned vector lists vertices in *visit* order.
fn mcs_order(g: &UnGraph) -> Vec<usize> {
    let n = g.node_count();
    let mut weight = vec![0usize; n];
    let mut numbered = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for v in 0..n {
            if numbered[v] {
                continue;
            }
            match best {
                None => best = Some(v),
                Some(b) if weight[v] > weight[b] => best = Some(v),
                _ => {}
            }
        }
        let v = best.expect("graph has unnumbered vertices");
        numbered[v] = true;
        order.push(v);
        for u in g.neighbors(v) {
            if !numbered[u] {
                weight[u] += 1;
            }
        }
    }
    order
}

/// Chordal completion of `g` using the MCS ordering and the elimination game,
/// together with the maximal cliques of the completed graph (§IV-A.3 steps i
/// and ii).
pub fn mcs_fill_in(g: &UnGraph) -> ChordalDecomposition {
    let n = g.node_count();
    let visit = mcs_order(g);
    // Eliminate in reverse MCS order; this makes the visit order a reverse
    // perfect elimination ordering of the filled graph.
    let elimination_order: Vec<usize> = visit.into_iter().rev().collect();
    let mut chordal = g.clone();
    let mut fill_edges = Vec::new();
    let mut eliminated = vec![false; n];
    // Clique candidates gathered during elimination: {v} ∪ (uneliminated
    // neighbours of v at elimination time).
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(n);
    for &v in &elimination_order {
        let later: Vec<usize> = chordal.neighbors(v).filter(|&u| !eliminated[u]).collect();
        // Make the later-neighbourhood a clique (fill-in).
        for (i, &a) in later.iter().enumerate() {
            for &b in &later[i + 1..] {
                if !chordal.has_edge(a, b) {
                    chordal.add_edge(a, b);
                    fill_edges.push((a.min(b), a.max(b)));
                }
            }
        }
        let mut clique = later;
        clique.push(v);
        clique.sort_unstable();
        candidates.push(clique);
        eliminated[v] = true;
    }
    let cliques = keep_maximal(candidates);
    ChordalDecomposition {
        chordal,
        elimination_order,
        fill_edges,
        cliques,
    }
}

/// Enumerates the maximal cliques of an already-chordal graph given one of its
/// perfect elimination orderings.
pub fn maximal_cliques_chordal(chordal: &UnGraph, elimination_order: &[usize]) -> Vec<Vec<usize>> {
    let n = chordal.node_count();
    let mut eliminated = vec![false; n];
    let mut candidates = Vec::with_capacity(n);
    for &v in elimination_order {
        let mut clique: Vec<usize> = chordal.neighbors(v).filter(|&u| !eliminated[u]).collect();
        clique.push(v);
        clique.sort_unstable();
        candidates.push(clique);
        eliminated[v] = true;
    }
    keep_maximal(candidates)
}

/// Filters a list of vertex sets down to the inclusion-maximal ones,
/// deduplicating equal sets.
fn keep_maximal(mut candidates: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    // Sort by decreasing size so supersets are considered first.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut kept: Vec<BTreeSet<usize>> = Vec::new();
    for cand in candidates {
        let set: BTreeSet<usize> = cand.iter().copied().collect();
        if !kept.iter().any(|k| set.is_subset(k)) {
            kept.push(set);
        }
    }
    let mut out: Vec<Vec<usize>> = kept
        .into_iter()
        .map(|s| s.into_iter().collect::<Vec<_>>())
        .collect();
    out.sort();
    out
}

/// Whether `g` is chordal, verified by re-running the elimination game along
/// the given perfect elimination ordering and checking that no fill-in edge is
/// required. Exposed mainly for tests and debugging.
pub fn is_chordal_with_peo(g: &UnGraph, elimination_order: &[usize]) -> bool {
    let n = g.node_count();
    let mut eliminated = vec![false; n];
    for &v in elimination_order {
        let later: Vec<usize> = g.neighbors(v).filter(|&u| !eliminated[u]).collect();
        for (i, &a) in later.iter().enumerate() {
            for &b in &later[i + 1..] {
                if !g.has_edge(a, b) {
                    return false;
                }
            }
        }
        eliminated[v] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// C4 (a 4-cycle) is the canonical non-chordal graph: one chord is needed.
    #[test]
    fn four_cycle_gets_exactly_one_fill_edge() {
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let d = mcs_fill_in(&g);
        assert_eq!(d.fill_edges.len(), 1);
        assert!(is_chordal_with_peo(&d.chordal, &d.elimination_order));
        // A chorded 4-cycle decomposes into two triangles.
        assert_eq!(d.cliques.len(), 2);
        assert!(d.cliques.iter().all(|c| c.len() == 3));
        assert!(d.cliques.iter().all(|c| d.chordal.is_clique(c)));
    }

    #[test]
    fn tree_needs_no_fill_and_cliques_are_edges() {
        // A star K1,3 is already chordal; maximal cliques are its edges.
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let d = mcs_fill_in(&g);
        assert!(d.fill_edges.is_empty());
        assert_eq!(d.cliques.len(), 3);
        assert!(d.cliques.iter().all(|c| c.len() == 2 && c.contains(&0)));
    }

    #[test]
    fn complete_graph_is_a_single_clique() {
        let mut g = UnGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j);
            }
        }
        let d = mcs_fill_in(&g);
        assert!(d.fill_edges.is_empty());
        assert_eq!(d.cliques, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn isolated_nodes_become_singleton_cliques() {
        let g = UnGraph::new(3);
        let d = mcs_fill_in(&g);
        assert_eq!(d.cliques.len(), 3);
        assert!(d.cliques.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn cliques_cover_all_vertices_and_are_cliques() {
        // A 6-cycle plus one chord.
        let mut g = UnGraph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        g.add_edge(0, 3);
        let d = mcs_fill_in(&g);
        assert!(is_chordal_with_peo(&d.chordal, &d.elimination_order));
        let covered: BTreeSet<usize> = d.cliques.iter().flatten().copied().collect();
        assert_eq!(covered.len(), 6);
        for c in &d.cliques {
            assert!(d.chordal.is_clique(c));
        }
        // Original edges are preserved in the chordal supergraph.
        for u in g.nodes() {
            for v in g.neighbors(u) {
                assert!(d.chordal.has_edge(u, v));
            }
        }
    }

    #[test]
    fn maximal_cliques_chordal_matches_fill_in_output() {
        let mut g = UnGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let d = mcs_fill_in(&g);
        let again = maximal_cliques_chordal(&d.chordal, &d.elimination_order);
        assert_eq!(d.cliques, again);
        assert!(d.cliques.contains(&vec![0, 1, 2]));
        assert!(d.cliques.contains(&vec![2, 3]));
        assert!(d.cliques.contains(&vec![3, 4]));
    }

    #[test]
    fn elimination_order_is_a_permutation() {
        let mut g = UnGraph::new(7);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(4, 5);
        let d = mcs_fill_in(&g);
        let mut order = d.elimination_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..7).collect::<Vec<_>>());
    }
}
