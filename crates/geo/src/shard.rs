//! Spatial sharding of the uniform grid.
//!
//! A [`ShardMap`] partitions the grid's cells into contiguous row bands, one
//! band per shard. The sharded stream engine routes every arrival to the
//! shard owning its location and keeps one independent runner state per
//! shard, so the bands double as the unit of multi-core parallelism: two
//! entities in different shards can never interact (tasks are served by
//! their own shard's workers only).
//!
//! Row bands — rather than, say, space-filling-curve tiles — keep the
//! boundary geometry trivial: a worker's reachable disc straddles a shard
//! edge iff its row extent crosses a band edge, which
//! [`ShardMap::shards_within_radius`] answers with two point lookups.

use crate::grid::{CellId, UniformGrid};
use datawa_core::Location;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one shard (a contiguous band of grid rows).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ShardId(pub u32);

impl ShardId {
    /// Index form for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A partition of a [`UniformGrid`] into horizontal row bands.
///
/// Every cell belongs to exactly one shard (`shard = row · shards / rows`,
/// integer division, which is monotone in the row and onto `0..shards` when
/// `shards ≤ rows`); the requested shard count is clamped to the row count so
/// no shard is ever empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMap {
    grid: UniformGrid,
    shards: u32,
}

impl ShardMap {
    /// Builds a shard map over `grid` with (up to) `requested` shards.
    pub fn new(grid: UniformGrid, requested: u32) -> ShardMap {
        let shards = requested.clamp(1, grid.rows());
        ShardMap { grid, shards }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Number of shards (≥ 1, ≤ grid rows).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    #[inline]
    fn shard_of_row(&self, row: u32) -> ShardId {
        ShardId((row as u64 * self.shards as u64 / self.grid.rows() as u64) as u32)
    }

    /// The shard owning a grid cell.
    #[inline]
    pub fn shard_of_cell(&self, cell: CellId) -> ShardId {
        let (row, _) = self.grid.row_col(cell);
        self.shard_of_row(row)
    }

    /// The shard owning a location (out-of-area points clamp like
    /// [`UniformGrid::cell_of`]).
    #[inline]
    pub fn shard_of(&self, p: &Location) -> ShardId {
        self.shard_of_cell(self.grid.cell_of(p))
    }

    /// All shards whose band intersects the disc of `radius` around `p`,
    /// ascending. Always non-empty; a single element means the disc is
    /// entirely inside one shard.
    pub fn shards_within_radius(&self, p: &Location, radius: f64) -> Vec<ShardId> {
        debug_assert!(radius >= 0.0);
        let (low_row, _) = self
            .grid
            .row_col(self.grid.cell_of(&Location::new(p.x, p.y - radius)));
        let (high_row, _) = self
            .grid
            .row_col(self.grid.cell_of(&Location::new(p.x, p.y + radius)));
        let first = self.shard_of_row(low_row).0;
        let last = self.shard_of_row(high_row).0;
        (first..=last).map(ShardId).collect()
    }

    /// Whether the disc of `radius` around `p` straddles a shard boundary
    /// (such a worker is a *boundary worker* and is handed to exactly one
    /// owning shard at replan time).
    pub fn is_boundary(&self, p: &Location, radius: f64) -> bool {
        self.shards_within_radius(p, radius).len() > 1
    }

    /// All cells of one shard, in row-major order.
    pub fn cells_of(&self, shard: ShardId) -> Vec<CellId> {
        self.grid
            .cells()
            .filter(|&c| self.shard_of_cell(c) == shard)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use datawa_core::location::BoundingBox;

    fn map(rows: u32, cols: u32, shards: u32) -> ShardMap {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(10.0, 10.0));
        ShardMap::new(UniformGrid::new(GridSpec::new(area, rows, cols)), shards)
    }

    #[test]
    fn every_cell_belongs_to_exactly_one_shard() {
        let m = map(7, 5, 3);
        let mut counts = vec![0usize; m.shard_count()];
        for cell in m.grid().cells() {
            let s = m.shard_of_cell(cell);
            assert!(s.index() < m.shard_count());
            counts[s.index()] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), m.grid().cell_count());
        assert!(counts.iter().all(|&c| c > 0), "no shard may be empty");
        // cells_of() agrees with shard_of_cell().
        let total: usize = (0..m.shard_count())
            .map(|s| m.cells_of(ShardId(s as u32)).len())
            .sum();
        assert_eq!(total, m.grid().cell_count());
    }

    #[test]
    fn shard_count_is_clamped_to_rows() {
        assert_eq!(map(4, 4, 99).shard_count(), 4);
        assert_eq!(map(4, 4, 0).shard_count(), 1);
    }

    #[test]
    fn bands_are_monotone_in_y() {
        let m = map(8, 8, 4);
        let mut last = 0;
        for row in 0..8u32 {
            let y = 0.5 + row as f64 * 10.0 / 8.0;
            let s = m.shard_of(&Location::new(5.0, y)).0;
            assert!(s >= last, "bands must not interleave");
            last = s;
        }
        assert_eq!(last as usize + 1, m.shard_count());
    }

    #[test]
    fn boundary_detection_uses_the_disc_extent() {
        let m = map(8, 8, 4);
        // Deep inside the second band (rows 2–3 cover y ∈ [2.5, 5.0)).
        let interior = Location::new(5.0, 3.75);
        assert!(!m.is_boundary(&interior, 0.3));
        assert_eq!(m.shards_within_radius(&interior, 0.3), vec![ShardId(1)]);
        // A radius reaching across the band edge at y = 5.0.
        assert!(m.is_boundary(&interior, 2.0));
        assert_eq!(
            m.shards_within_radius(&interior, 2.0),
            vec![ShardId(0), ShardId(1), ShardId(2)]
        );
    }

    #[test]
    fn out_of_area_points_clamp_to_edge_shards() {
        let m = map(6, 6, 3);
        assert_eq!(m.shard_of(&Location::new(-50.0, -50.0)), ShardId(0));
        assert_eq!(m.shard_of(&Location::new(50.0, 50.0)), ShardId(2));
    }
}
