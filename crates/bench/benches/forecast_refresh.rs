//! Forecast-overhead benchmarks: session throughput with the fixed
//! [`StaticForecast`] oracle versus a live DDGNN-backed [`OnlineForecaster`]
//! at 10k and 100k arrivals, across two refresh cadences. The static path
//! is the pre-redesign baseline (the provider indirection must be free); the
//! online rows price model re-forecasting into the event loop, and the
//! cadence sweep shows that cost amortising as refreshes get rarer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast};
use datawa_core::Timestamp;
use datawa_geo::{GridSpec, UniformGrid};
use datawa_predict::{DdgnnPredictor, OnlineForecastConfig, OnlineForecaster, SeriesSpec};
use datawa_sim::{SyntheticTrace, TraceSpec};
use datawa_stream::{run_workload_forecast, EngineConfig, Workload};
use std::time::Duration;

/// A trace sized so that workers + tasks ≈ `arrivals`.
fn trace_with_arrivals(arrivals: usize) -> SyntheticTrace {
    let base = TraceSpec::yueche();
    let scale = arrivals as f64 / (base.workers + base.tasks) as f64;
    SyntheticTrace::generate(base.scaled(scale))
}

/// An untrained (but fully architected) DDGNN forecaster over the trace's
/// area — inference cost is what the bench prices, and it is independent of
/// the weights.
fn online_forecaster(trace: &SyntheticTrace, refresh_every: f64) -> OnlineForecaster {
    let grid = UniformGrid::new(GridSpec::new(trace.area, 4, 4));
    let spec = SeriesSpec::new(Timestamp(0.0), 10.0, 3, 4);
    OnlineForecaster::new(
        Box::new(DdgnnPredictor::with_defaults(grid.cell_count(), spec.k, 7)),
        grid,
        spec,
        OnlineForecastConfig {
            threshold: 0.85,
            valid_time: trace.spec.valid_time,
            refresh_every,
        },
    )
}

fn bench_forecast_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecast/events_per_sec");
    group.sample_size(3);
    for arrivals in [10_000usize, 100_000] {
        let trace = trace_with_arrivals(arrivals);
        let workload: Workload = trace.workload();
        let total_arrivals = workload.arrival_count() as u64;
        let mut runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::DtaTp);
        runner.replan_every = 64;
        let config = EngineConfig::replay_compat(64);
        group.measurement_time(Duration::from_millis(if arrivals > 10_000 {
            2_500
        } else {
            1_500
        }));
        group.throughput(Throughput::Elements(total_arrivals * 2));

        group.bench_with_input(
            BenchmarkId::new("static_oracle", arrivals),
            &arrivals,
            |bench, _| {
                bench.iter(|| {
                    let mut forecast = StaticForecast::default();
                    let outcome = run_workload_forecast(&runner, &workload, &mut forecast, config);
                    criterion::black_box(outcome.run.assigned_tasks)
                });
            },
        );

        for refresh in [30.0_f64, 300.0] {
            group.bench_with_input(
                BenchmarkId::new(format!("online_ddgnn_refresh_{refresh:.0}s"), arrivals),
                &arrivals,
                |bench, _| {
                    bench.iter(|| {
                        let mut forecast = online_forecaster(&trace, refresh);
                        let outcome =
                            run_workload_forecast(&runner, &workload, &mut forecast, config);
                        criterion::black_box((
                            outcome.run.assigned_tasks,
                            outcome.run.forecast.refreshes,
                        ))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_forecast_refresh);
criterion_main!(benches);
