//! Substrate micro-benchmarks: the building blocks every experiment relies on
//! (dense matmul, spatial range queries, chordal decomposition, recursive
//! tree construction, maximal-valid-sequence generation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datawa_assign::{generate_sequences, reachable_tasks, AssignConfig};
use datawa_bench::{small_trace, snapshot_at_mid};
use datawa_core::{BoundingBox, Location};
use datawa_geo::{GridSpec, SpatialIndex, UniformGrid};
use datawa_graph::{mcs_fill_in, ClusterTree, UnGraph};
use datawa_tensor::Matrix;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/matmul");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    for n in [32usize, 64, 128] {
        let a = Matrix::filled(n, n, 0.5);
        let b = Matrix::filled(n, n, 0.25);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_spatial_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/spatial_range_query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(10.0, 10.0));
    for points in [1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut index = SpatialIndex::new(UniformGrid::new(GridSpec::new(area, 20, 20)));
        for i in 0..points as u32 {
            index.insert(
                Location::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)),
                i,
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |bench, _| {
            bench.iter(|| {
                std::hint::black_box(index.within_radius(&Location::new(5.0, 5.0), 1.0).len())
            });
        });
    }
    group.finish();
}

fn bench_graph_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/worker_dependency_separation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    for n in [50usize, 150] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut graph = UnGraph::new(n);
        // Sparse random geometric-ish graph.
        for u in 0..n {
            for _ in 0..3 {
                let v = rng.gen_range(0..n);
                if u != v {
                    graph.add_edge(u, v);
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("mcs_fill_in", n), &graph, |bench, g| {
            bench.iter(|| std::hint::black_box(mcs_fill_in(g).cliques.len()));
        });
        group.bench_with_input(BenchmarkId::new("cluster_tree", n), &graph, |bench, g| {
            bench.iter(|| std::hint::black_box(ClusterTree::build(g).len()));
        });
    }
    group.finish();
}

fn bench_sequence_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/maximal_valid_sequences");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    let trace = small_trace(0.05);
    let (workers, tasks, now) = snapshot_at_mid(&trace);
    let config = AssignConfig::default();
    let reachable = reachable_tasks(&workers, &tasks, &trace.workers, &trace.tasks, &config, now);
    group.bench_function("all_available_workers", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for &w in &workers {
                total += generate_sequences(
                    trace.workers.get(w),
                    reachable.of(w),
                    &trace.tasks,
                    &config,
                    now,
                )
                .len();
            }
            std::hint::black_box(total)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spatial_index,
    bench_graph_partition,
    bench_sequence_generation
);
criterion_main!(benches);
