//! End-to-end coverage of every rule over the fixture corpus in
//! `tests/fixtures/` — true positives, true negatives and both suppression
//! paths — plus CLI-level exit-code and JSON checks against the built
//! binary.
//!
//! Fixtures are scanned with `context_crate = "assign"` so they masquerade
//! as production code of a deterministic, hot-path crate; the corpus itself
//! is never compiled (the engine's workspace walk skips `tests/fixtures`).

use datawa_lint::{run, Options, Report};
use std::path::PathBuf;
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn scan(file: &str) -> Report {
    scan_as(file, "assign")
}

/// Like [`scan`] but masquerading as a different crate — rules scoped to
/// the service path need a `service`/`net` context.
fn scan_as(file: &str, context: &str) -> Report {
    let opts = Options {
        root: fixtures_dir(),
        workspace: false,
        paths: vec![PathBuf::from(file)],
        context_crate: Some(context.to_string()),
    };
    run(&opts).expect("fixture scan")
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unordered_iteration_positive_negative_and_suppressed() {
    let report = scan("unordered_iteration.rs");
    assert_eq!(
        rules_of(&report),
        ["unordered-iteration", "unordered-iteration"],
        "{:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 8, "the bare `m.iter()` loop");
    assert_eq!(
        report.findings[1].line, 37,
        "the `.keys()` chain-continuation line"
    );
    assert_eq!(report.suppressed, 1, "the rationale-carrying loop");
    assert!(report.failed());
}

#[test]
fn wall_clock_positive_and_missing_reason_meta_lint() {
    let report = scan("wall_clock.rs");
    let rules = rules_of(&report);
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == "wall-clock-in-hot-path")
            .count(),
        2,
        "{:?}",
        report.findings
    );
    // The reasonless suppression silences the wall-clock finding but raises
    // the meta-lint, so it can never land silently.
    assert!(rules.contains(&"missing-suppression-reason"));
    assert_eq!(report.suppressed, 2);
}

#[test]
fn stray_env_read_flags_src_but_not_test_regions() {
    let report = scan("stray_env.rs");
    assert_eq!(
        rules_of(&report),
        ["stray-env-read"],
        "{:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 4);
}

#[test]
fn relaxed_atomic_positive_negative_and_suppressed() {
    let report = scan("relaxed_atomic.rs");
    assert_eq!(
        rules_of(&report),
        ["relaxed-atomic-audit"],
        "{:?}",
        report.findings
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn float_ordering_positive_negative_and_suppressed() {
    let report = scan("float_ordering.rs");
    assert_eq!(
        rules_of(&report),
        ["unchecked-float-ordering"],
        "{:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 5, "the partial_cmp sort key");
    assert_eq!(report.suppressed, 1);
}

#[test]
fn unwrap_in_hot_path_positive_negative_and_suppressed() {
    let report = scan("unwrap_hot.rs");
    assert_eq!(
        rules_of(&report),
        ["unwrap-in-hot-path", "unwrap-in-hot-path"],
        "{:?}",
        report.findings
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn blocking_sleep_warns_without_failing_the_run() {
    let report = scan("blocking_sleep.rs");
    assert_eq!(
        rules_of(&report),
        ["blocking-sleep"],
        "{:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 7, "the thread::sleep call");
    assert_eq!(report.findings[0].severity, datawa_lint::Severity::Warning);
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 1);
    assert!(!report.failed(), "warnings must not fail the run");
}

#[test]
fn panic_in_service_path_warns_without_failing_the_run() {
    let report = scan_as("panic_service.rs", "net");
    assert_eq!(
        rules_of(&report),
        [
            "panic-in-service-path",
            "panic-in-service-path",
            "panic-in-service-path"
        ],
        "{:?}",
        report.findings
    );
    assert_eq!(report.findings[0].line, 7, "the explicit panic!");
    assert_eq!(report.findings[1].line, 13, "the unreachable! arm");
    assert_eq!(report.findings[2].line, 18, "the todo! body");
    for f in &report.findings {
        assert_eq!(f.severity, datawa_lint::Severity::Warning);
    }
    assert_eq!(report.suppressed, 1, "the chaos-injection suppression");
    assert_eq!(report.errors(), 0);
    assert!(!report.failed(), "warnings must not fail the run");
    // Outside the service path the rule is silent entirely.
    assert!(
        !rules_of(&scan("panic_service.rs")).contains(&"panic-in-service-path"),
        "rule must be scoped to service/net"
    );
}

#[test]
fn cli_exits_zero_when_only_warnings_are_found() {
    let out = Command::new(env!("CARGO_BIN_EXE_datawa-lint"))
        .arg("--root")
        .arg(fixtures_dir())
        .arg("--context")
        .arg("assign")
        .arg("--format")
        .arg("json")
        .arg("blocking_sleep.rs")
        .output()
        .expect("run datawa-lint on the warning fixture");
    assert_eq!(
        out.status.code(),
        Some(0),
        "observe-only warnings must not affect the exit code: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\":\"blocking-sleep\""), "{stdout}");
    assert!(stdout.contains("\"severity\":\"warning\""), "{stdout}");
}

#[test]
fn invalid_suppressions_are_findings() {
    let report = scan("bad_suppression.rs");
    assert_eq!(
        rules_of(&report),
        ["invalid-suppression", "invalid-suppression"],
        "{:?}",
        report.findings
    );
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("unknown rule")));
    assert!(messages.iter().any(|m| m.contains("unparsable")));
}

#[test]
fn file_level_suppression_covers_every_line() {
    let report = scan("allow_file.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 2, "both Instant::now sites");
    assert!(!report.failed());
}

#[test]
fn cli_exits_nonzero_on_fixtures_and_emits_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_datawa-lint"))
        .arg("--root")
        .arg(fixtures_dir())
        .arg("--context")
        .arg("assign")
        .arg("--format")
        .arg("json")
        .arg("unordered_iteration.rs")
        .arg("wall_clock.rs")
        .output()
        .expect("run datawa-lint on fixtures");
    assert_eq!(out.status.code(), Some(1), "unsuppressed findings exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\": 1"), "{stdout}");
    assert!(
        stdout.contains("\"rule\":\"unordered-iteration\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"rule\":\"wall-clock-in-hot-path\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"rule\":\"missing-suppression-reason\""),
        "{stdout}"
    );
}

#[test]
fn cli_exits_cleanly_on_a_clean_file() {
    let out = Command::new(env!("CARGO_BIN_EXE_datawa-lint"))
        .arg("--root")
        .arg(fixtures_dir())
        .arg("--context")
        .arg("assign")
        .arg("allow_file.rs")
        .output()
        .expect("run datawa-lint on a clean fixture");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn cli_usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_datawa-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("run datawa-lint with a bad flag");
    assert_eq!(out.status.code(), Some(2));
}
