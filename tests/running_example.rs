//! Integration test reproducing the Fig. 1 running example end-to-end through
//! the public API: the fixed task assignment serves strictly fewer tasks than
//! the dynamic methods on the paper's hand-built scenario.

use datawa::prelude::*;

fn stream() -> Vec<ArrivalEvent> {
    let tasks: [(f64, f64, f64, f64); 9] = [
        (1.5, 1.2, 1.0, 4.0),
        (2.5, 2.0, 1.0, 6.0),
        (2.2, 1.5, 1.0, 4.0),
        (3.2, 1.7, 1.0, 6.0),
        (1.5, 2.5, 2.0, 8.0),
        (2.0, 3.2, 2.0, 8.0),
        (4.0, 1.0, 4.0, 9.0),
        (1.0, 3.0, 4.0, 8.0),
        (1.0, 1.7, 4.0, 9.0),
    ];
    let workers: [(f64, f64, f64); 3] = [(0.5, 1.0, 1.0), (2.5, 3.2, 1.0), (4.0, 2.2, 3.0)];
    let mut events = Vec::new();
    for &(x, y, on) in &workers {
        events.push(ArrivalEvent::Worker(Worker::new(
            WorkerId(0),
            Location::new(x, y),
            1.2,
            Timestamp(on),
            Timestamp(20.0),
        )));
    }
    for &(x, y, p, e) in &tasks {
        events.push(ArrivalEvent::Task(Task::new(
            TaskId(0),
            Location::new(x, y),
            Timestamp(p),
            Timestamp(e),
        )));
    }
    events
}

#[test]
fn dynamic_assignment_beats_fixed_assignment_on_fig1() {
    let config = AssignConfig::unit_speed();
    let fta = AdaptiveRunner::new(config, PolicyKind::Fta).run(&stream(), &[]);
    let dta = AdaptiveRunner::new(config, PolicyKind::Dta).run(&stream(), &[]);
    assert!(
        dta.assigned_tasks > fta.assigned_tasks,
        "DTA ({}) should beat FTA ({}) on the Fig. 1 scenario",
        dta.assigned_tasks,
        fta.assigned_tasks
    );
    assert!(dta.assigned_tasks <= 9);
    // The paper's adaptive method serves 8 of the 9 tasks; our streaming
    // re-implementation should serve a clear majority of them too.
    assert!(
        dta.assigned_tasks >= 6,
        "adaptive assignment only served {} tasks on the Fig. 1 scenario",
        dta.assigned_tasks
    );
}

#[test]
fn all_streaming_policies_stay_within_bounds_on_fig1() {
    // On a nine-task toy instance the streaming tie-breaks can let Greedy
    // match the search-based methods; the robust claims are the bounds and
    // that the fixed assignment is the weakest method.
    let config = AssignConfig::unit_speed();
    let fta = AdaptiveRunner::new(config, PolicyKind::Fta).run(&stream(), &[]);
    for policy in [PolicyKind::Greedy, PolicyKind::Dta] {
        let outcome = AdaptiveRunner::new(config, policy).run(&stream(), &[]);
        assert!(outcome.assigned_tasks <= 9);
        assert!(outcome.assigned_tasks >= fta.assigned_tasks);
    }
}

#[test]
fn per_worker_counts_sum_to_the_total() {
    let config = AssignConfig::unit_speed();
    let outcome = AdaptiveRunner::new(config, PolicyKind::Dta).run(&stream(), &[]);
    let sum: usize = outcome.per_worker.values().sum();
    assert_eq!(sum, outcome.assigned_tasks);
}
