// Fixture: unordered-iteration. Scanned with `--context assign`, so this
// file masquerades as production code of a deterministic crate. It is never
// compiled — the engine's workspace walk skips `tests/fixtures`.

fn positive() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    for (k, v) in m.iter() {
        push(k, v);
    }
}

fn negative_order_insensitive_sink() {
    let mut m = HashMap::new();
    let n = m.keys().count();
    let total: u64 = m.values().sum();
    drop((n, total));
}

fn negative_immediately_sorted() {
    let mut m = HashMap::new();
    let mut v: Vec<_> = m.keys().collect();
    v.sort_unstable();
}

fn suppressed_with_rationale() {
    let mut m = HashMap::new();
    // datawa-lint: allow(unordered-iteration) -- fixture: accumulation below is commutative
    for (_k, v) in m.iter() {
        total += v;
    }
}
