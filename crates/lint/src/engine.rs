//! File discovery, suppression filtering and report assembly.

use crate::diag::{json_escape, Finding, Severity};
use crate::rules::{self, is_known_rule};
use crate::source::{FileKind, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What to scan and how to classify it.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Workspace root. Findings report paths relative to it.
    pub root: PathBuf,
    /// Scan the whole workspace tree (`src`, `tests`, `examples`,
    /// `crates/**`), skipping `vendor`, `target` and fixture corpora.
    pub workspace: bool,
    /// Explicit files/directories to scan instead of (or in addition to)
    /// the workspace walk.
    pub paths: Vec<PathBuf>,
    /// Force the crate classification of explicitly-passed paths (used by
    /// the fixture tests: a bare fixture file has no `crates/<name>/`
    /// component to infer the crate from).
    pub context_crate: Option<String>,
}

/// The outcome of a run.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of findings silenced by a well-formed suppression.
    pub suppressed: usize,
}

impl Report {
    /// Whether the run should exit nonzero. Warnings (observe-only rules)
    /// never fail a run; see [`rules::severity_of`].
    pub fn failed(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Renders the report as a single deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&f.to_json());
            if i + 1 < self.findings.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"rules\": [",
            self.files_scanned, self.suppressed
        ));
        for (i, (name, _)) in rules::RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(name)));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Runs the lint pass described by `opts`.
pub fn run(opts: &Options) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    if opts.workspace {
        for top in ["src", "tests", "examples", "crates"] {
            let dir = opts.root.join(top);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut files)?;
            }
        }
    }
    for p in &opts.paths {
        let p = if p.is_absolute() {
            p.clone()
        } else {
            opts.root.join(p)
        };
        if p.is_dir() {
            collect_rs_files(&p, &mut files)?;
        } else {
            files.push(p);
        }
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for path in &files {
        let text = fs::read_to_string(path)?;
        let rel = rel_path(&opts.root, path);
        let inferred_crate = crate_of(&rel);
        let crate_name = opts
            .context_crate
            .as_deref()
            .filter(|_| inferred_crate.is_none())
            .or(inferred_crate);
        // `--context` exists so the fixture corpus can masquerade as
        // production code of a given crate; the path-based Test
        // classification would otherwise blank every rule.
        let kind = if opts.context_crate.is_some() {
            FileKind::Src
        } else {
            kind_of(&rel)
        };
        let file = SourceFile::parse(&rel, crate_name, kind, &text);
        let raw = rules::check_file(&file);
        // Suppression filtering + directive hygiene.
        for f in raw {
            let matching = file.suppressions.iter().find(|s| {
                s.well_formed
                    && s.rules.iter().any(|r| r == f.rule)
                    && (s.file_level || s.target_line == f.line)
            });
            if matching.is_some() {
                suppressed += 1;
            } else {
                findings.push(f);
            }
        }
        for s in &file.suppressions {
            if !s.well_formed {
                findings.push(Finding {
                    rule: "invalid-suppression",
                    severity: Severity::Error,
                    path: rel.clone(),
                    line: s.declared_line,
                    message: "unparsable datawa-lint directive; expected \
                              `datawa-lint: allow(<rule>[, <rule>…]) -- <reason>`"
                        .to_string(),
                });
                continue;
            }
            for r in &s.rules {
                if !is_known_rule(r) {
                    findings.push(Finding {
                        rule: "invalid-suppression",
                        severity: Severity::Error,
                        path: rel.clone(),
                        line: s.declared_line,
                        message: format!("suppression names unknown rule `{r}` (see LINTS.md)"),
                    });
                }
            }
            if !s.has_reason {
                findings.push(Finding {
                    rule: "missing-suppression-reason",
                    severity: Severity::Error,
                    path: rel.clone(),
                    line: s.declared_line,
                    message: "suppression without a rationale; append \
                              `-- <why this site is sound>`"
                        .to_string(),
                });
            }
        }
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(Report {
        findings,
        files_scanned: files.len(),
        suppressed,
    })
}

/// Recursively collects `.rs` files in deterministic (sorted) order,
/// skipping `vendor`, `target`, hidden directories and fixture corpora
/// (`tests/fixtures` — lint-fixture files are scanned only when passed
/// explicitly).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.file_name().and_then(|n| n.to_str()) == Some("tests") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// `crates/<name>/…` → `<name>`.
fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn kind_of(rel: &str) -> FileKind {
    let components: Vec<&str> = rel.split('/').collect();
    if components.contains(&"tests") {
        FileKind::Test
    } else if components.contains(&"benches") {
        FileKind::Bench
    } else if components.contains(&"examples") {
        FileKind::Example
    } else {
        FileKind::Src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_classification() {
        assert_eq!(crate_of("crates/assign/src/pool.rs"), Some("assign"));
        assert_eq!(crate_of("src/lib.rs"), None);
        assert_eq!(kind_of("crates/lint/tests/fixtures/x.rs"), FileKind::Test);
        assert_eq!(kind_of("crates/bench/benches/a.rs"), FileKind::Bench);
        assert_eq!(kind_of("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(kind_of("crates/assign/src/bin/tool.rs"), FileKind::Src);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let r = Report {
            findings: vec![],
            files_scanned: 3,
            suppressed: 1,
        };
        let json = r.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"unordered-iteration\""));
        assert!(!r.failed());
    }
}
