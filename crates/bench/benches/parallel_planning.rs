//! Multi-core planning throughput: the partition-pool and shard-level
//! parallelism introduced by the sharded planning refactor, swept over
//! 1/2/4/8 planner threads at 10k and 100k arrival events on the
//! uniform-baseline scenario (DTA policy, time-batched re-planning so each
//! planning instant is substantial).
//!
//! Two layers are measured separately:
//!
//! * `partition_pool/*` — one `StreamEngine`, partition-parallel planner
//!   (`AssignConfig::threads`);
//! * `sharded_engine/*` — four spatial shards on a `ShardedStreamEngine`,
//!   with shard steps fanned out at every replan tick.
//!
//! Throughput is reported in arrival events/sec so the speedup at each
//! thread count can be tracked in the BENCH output PR over PR. On a
//! single-core host the sweep degenerates to (slight) pool overhead — the
//! numbers are still recorded so multi-core hosts have a baseline to compare
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind};
use datawa_core::location::BoundingBox;
use datawa_core::Location;
use datawa_geo::{GridSpec, ShardMap, UniformGrid};
use datawa_stream::{
    run_workload, run_workload_sharded, EngineConfig, ScenarioGenerator, ScenarioSpec,
    ShardedEngineConfig, UniformBaseline, Workload,
};
use std::time::Duration;

/// A uniform-baseline workload sized so workers + tasks ≈ `arrivals`, with
/// the Yueche-like worker-to-task ratio.
///
/// The study-area side scales with √arrivals so spatial density — and with
/// it the size of the largest dependency component — stays constant: the
/// planning instant then splits into thousands of small partitions (measured
/// ~2.9k partitions, ≤60 workers each, at 100k arrivals), the regime where
/// partition-level parallelism pays off and the single-threaded planning
/// share of the run is ~50 %.
fn workload_with_arrivals(arrivals: usize) -> (ScenarioSpec, Workload) {
    let workers = (arrivals / 18).max(4);
    let mut spec = ScenarioSpec::small()
        .with_workers(workers)
        .with_tasks(arrivals - workers);
    spec.area_km = 20.0 * (arrivals as f64 / 100_000.0).sqrt();
    let workload = UniformBaseline::new(spec).generate();
    (spec, workload)
}

fn runner(threads: usize) -> AdaptiveRunner {
    AdaptiveRunner::new(
        AssignConfig {
            threads,
            ..AssignConfig::default()
        },
        PolicyKind::Dta,
    )
}

/// Time-batched re-planning keeps the planning instants few but heavy — the
/// regime partition parallelism targets.
const REPLAN_DT: f64 = 30.0;

fn bench_partition_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_planning/partition_pool");
    group.sample_size(1);
    for arrivals in [10_000usize, 100_000] {
        let (_, workload) = workload_with_arrivals(arrivals);
        group.measurement_time(Duration::from_millis(if arrivals > 10_000 {
            2_000
        } else {
            1_000
        }));
        group.throughput(Throughput::Elements(workload.arrival_count() as u64));
        for threads in [1usize, 2, 4, 8] {
            let r = runner(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), arrivals),
                &arrivals,
                |bench, _| {
                    bench.iter(|| {
                        let outcome =
                            run_workload(&r, &workload, &[], EngineConfig::ticked(REPLAN_DT));
                        criterion::black_box(outcome.run.assigned_tasks)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_sharded_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_planning/sharded_engine");
    group.sample_size(1);
    for arrivals in [10_000usize, 100_000] {
        let (spec, workload) = workload_with_arrivals(arrivals);
        let area = BoundingBox::new(
            Location::new(0.0, 0.0),
            Location::new(spec.area_km, spec.area_km),
        );
        group.measurement_time(Duration::from_millis(if arrivals > 10_000 {
            2_000
        } else {
            1_000
        }));
        group.throughput(Throughput::Elements(workload.arrival_count() as u64));
        for threads in [1usize, 4] {
            let r = runner(1); // shard-level parallelism only: one planner thread per shard
            let map = ShardMap::new(UniformGrid::new(GridSpec::new(area, 16, 16)), 4);
            group.bench_with_input(
                BenchmarkId::new(format!("shards4_threads{threads}"), arrivals),
                &arrivals,
                |bench, _| {
                    bench.iter(|| {
                        let outcome = run_workload_sharded(
                            &r,
                            &workload,
                            &[],
                            map.clone(),
                            ShardedEngineConfig {
                                engine: EngineConfig::ticked(REPLAN_DT),
                                threads,
                            },
                        );
                        criterion::black_box(outcome.run.assigned_tasks)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition_pool, bench_sharded_engine);
criterion_main!(benches);
