//! # datawa-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§V). Each binary under `src/bin/` prints the same rows
//! or series the paper reports; this library holds the shared sweep logic so
//! the Criterion benches in `datawa-bench` can reuse it.
//!
//! Run, for example:
//!
//! ```text
//! cargo run --release -p datawa-experiments --bin fig7_tasks
//! DATAWA_SCALE=0.1 cargo run --release -p datawa-experiments --bin fig8_workers
//! ```
//!
//! The `DATAWA_SCALE` environment variable scales the synthetic trace sizes
//! (1.0 = the full Table II sizes); the default keeps every binary laptop-
//! friendly while preserving the worker-to-task ratio and therefore the
//! relative ordering of the methods.

pub mod assignment;
pub mod forecast;
pub mod params;
pub mod prediction;
pub mod report;

pub use assignment::{assignment_sweep, AssignmentRow, SweepAxis};
pub use forecast::{
    scenario_online_forecaster, scenario_online_vs_blind, scenario_prediction_report,
    ForecastScenarioConfig, ScenarioAssignmentRow, ScenarioPredictionRow,
};
pub use params::{Dataset, ExperimentScale};
pub use prediction::{prediction_effect_of_delta_t, PredictionRow};
pub use report::{format_table, Table};
