//! The zero-overhead contract of the observability layer: attaching a
//! metrics registry must not change a single decision. Runs with metrics on
//! are pinned bitwise against runs with metrics off, for every policy
//! family, through both the batch driver and the live session path — and the
//! attached run must actually have recorded something, so the pin is not
//! vacuous.

use datawa::obs::parse_obs_toggle;
use datawa::prelude::*;

fn runner(policy: PolicyKind, registry: MetricsRegistry) -> AdaptiveRunner {
    let r = AdaptiveRunner::new(AssignConfig::default(), policy);
    let r = if policy == PolicyKind::DataWa {
        // Identical (seeded) TVF on both sides keeps the comparison exact.
        r.with_tvf(TaskValueFunction::new(8, 7))
    } else {
        r
    };
    r.with_metrics(registry)
}

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Greedy,
    PolicyKind::Fta,
    PolicyKind::Dta,
    PolicyKind::DataWa,
];

/// Batch driver: metrics-on equals metrics-off bitwise on every policy,
/// across every engine counter.
#[test]
fn batch_run_is_bitwise_identical_with_metrics_attached() {
    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    let workload = UniformBaseline::new(spec).generate();
    for policy in POLICIES {
        let observed = MetricsRegistry::new();
        let on = runner(policy, observed.clone());
        let off = runner(policy, MetricsRegistry::detached());
        let config = EngineConfig::batched(8);
        let with_metrics = run_workload(&on, &workload, &[], config);
        let without = run_workload(&off, &workload, &[], config);

        let label = policy.name();
        assert_eq!(
            with_metrics.run.assigned_tasks, without.run.assigned_tasks,
            "{label}: assigned totals diverged"
        );
        assert_eq!(
            with_metrics.run.per_worker, without.run.per_worker,
            "{label}: per-worker counts diverged"
        );
        assert_eq!(with_metrics.run.planning_calls, without.run.planning_calls);
        assert_eq!(with_metrics.run.events, without.run.events);
        assert_eq!(
            with_metrics.stats, without.stats,
            "{label}: engine counters"
        );

        // Not vacuous: the attached side recorded real measurements.
        let snapshot = observed.snapshot();
        assert_eq!(
            snapshot.counters.get("assign.planning_calls").copied(),
            Some(with_metrics.run.planning_calls as u64),
            "{label}: planning calls not mirrored into the registry"
        );
        let replans = snapshot
            .histograms
            .get("assign.replan_seconds")
            .expect("replan latency histogram registered");
        assert_eq!(replans.count as usize, with_metrics.run.planning_calls);
    }
}

/// Live session path: the stream-layer metrics are also decision-neutral.
#[test]
fn session_run_is_bitwise_identical_with_metrics_attached() {
    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        let run = |registry: MetricsRegistry| {
            let r = runner(PolicyKind::Dta, registry);
            let mut forecast = StaticForecast::default();
            let mut sink = CollectingSink::new();
            let mut session = Session::open(&r, &mut forecast, EngineConfig::batched(8));
            let mut source = WorkloadSource::new(&workload);
            while let SourcePoll::Ready(time, event) = source.poll() {
                session
                    .ingest(time, event)
                    .expect("replay times are finite");
                session.advance_to(time, &mut sink);
            }
            (session.close(&mut sink), sink)
        };
        let observed = MetricsRegistry::new();
        let (on, on_sink) = run(observed.clone());
        let (off, off_sink) = run(MetricsRegistry::detached());

        let label = scenario.name();
        assert_eq!(on.run.assigned_tasks, off.run.assigned_tasks, "{label}");
        assert_eq!(on.run.per_worker, off.run.per_worker, "{label}");
        assert_eq!(on.run.planning_calls, off.run.planning_calls, "{label}");
        assert_eq!(on.stats, off.stats, "{label}");
        assert_eq!(
            on_sink.decisions(),
            off_sink.decisions(),
            "{label}: streamed decisions diverged"
        );
        let snapshot = observed.snapshot();
        assert_eq!(
            snapshot.counters.get("stream.ingested_events").copied(),
            Some(workload.arrival_count() as u64),
            "{label}: ingest counter not recorded"
        );
    }
}

/// The `DATAWA_OBS` toggle accepts the same spellings as `DATAWA_THREADS`
/// accepts numbers: case-insensitive, whitespace-tolerant, off by default.
#[test]
fn obs_env_toggle_parses_like_the_threads_knob() {
    for on in ["on", "ON", " On ", "1", "true", "TRUE"] {
        assert!(parse_obs_toggle(on), "{on:?} should attach");
    }
    for off in ["off", "0", "false", "", "  ", "yes-please", "2"] {
        assert!(!parse_obs_toggle(off), "{off:?} should stay detached");
    }
}
