//! Distributions and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution over values of type `T` (the rand 0.8 shape, so downstream
/// crates can implement their own).
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`, sampled via Box–Muller.
///
/// Lives here (rather than in a `rand_distr` stand-in or per-crate helpers)
/// so every workload generator in the workspace shares one sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Uniform range sampling.
pub mod uniform {
    use super::*;
    use std::ops::Range;

    /// Types usable as the argument of [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl SampleRange<f64> for Range<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty f64 range");
            let u = crate::u64_to_unit_f64(rng.next_u64());
            // Clamp guards against `start + u * width` rounding up to `end`;
            // next_down steps toward start whatever end's sign is (a
            // bit-twiddled `to_bits() - 1` would break for end <= 0).
            let v = self.start + u * (self.end - self.start);
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    impl SampleRange<f32> for Range<f32> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            let wide = (self.start as f64)..(self.end as f64);
            wide.sample_single(rng) as f32
        }
    }

    macro_rules! int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Widen to 128 bits so the modulo bias is negligible for
                    // every span this workspace samples.
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (self.start as i128 + (wide % span) as i128) as $t
                }
            }
        )*};
    }

    int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = (0..5usize).sample_single(&mut rng);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_integer_ranges_work() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v: i32 = (-5..5).sample_single(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn f64_ranges_ending_at_or_below_zero_stay_in_bounds() {
        // The clamp must step toward the start even when `end` is 0.0 or
        // negative (a bit-decrement of the end would panic or produce NaN).
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = (-3600.0f64..0.0).sample_single(&mut rng);
            assert!((-3600.0..0.0).contains(&v), "{v} out of [-3600, 0)");
            let w = (-5.0f64..-2.0).sample_single(&mut rng);
            assert!((-5.0..-2.0).contains(&w), "{w} out of [-5, -2)");
        }
        // The clamp itself picks the largest value strictly below `end`.
        assert!(0.0f64.next_down() < 0.0);
        assert!((-2.0f64).next_down() < -2.0);
    }

    #[test]
    fn standard_normal_has_sane_moments() {
        use crate::distributions::{Distribution, StandardNormal};
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
