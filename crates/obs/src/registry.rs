//! The [`MetricsRegistry`]: a named collection of atomic counters, gauges and
//! histograms with a detached (no-op) mode.
//!
//! A registry is either *attached* — it owns a table of metric slots and
//! hands out live handles — or *detached*, in which case every handle it
//! produces is inert: `inc`/`set`/`record` compile down to a branch on a
//! `None` and nothing else, and [`Histogram::span`](crate::Histogram::span)
//! never reads the clock. Instrumented code therefore carries its metric
//! handles unconditionally and stays bitwise-identical in behaviour whether
//! or not anyone is observing (pinned by the workspace obs-equivalence
//! tests).
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a lock and is meant for
//! cold paths — do it once at construction time and keep the handles. The
//! handles themselves are lock-free `Arc`s over atomics; clones of the same
//! name share storage, which is how threads and shards aggregate without
//! coordination.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramCore, HistogramSummary};
use crate::json::JsonValue;

/// Name of the environment variable toggling default-registry attachment,
/// mirroring `DATAWA_THREADS`: `DATAWA_OBS=on|1|true` attaches,
/// `off|0|false` (or unset) detaches.
pub const OBS_ENV: &str = "DATAWA_OBS";

#[derive(Debug, Default)]
struct CounterCore {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCore {
    value: AtomicI64,
    high_water: AtomicI64,
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug, Default)]
struct RegistryInner {
    slots: Mutex<BTreeMap<String, Slot>>,
}

/// A monotonically increasing atomic counter handle (no-op when detached).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.core {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when detached).
    pub fn value(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }

    /// Whether the handle records anywhere.
    pub fn is_attached(&self) -> bool {
        self.core.is_some()
    }
}

/// A last-value gauge that also tracks its high-water mark (no-op when
/// detached).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    core: Option<Arc<GaugeCore>>,
}

impl Gauge {
    /// Sets the current value and folds it into the high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(core) = &self.core {
            core.value.store(v, Ordering::Relaxed);
            core.high_water.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Raises the high-water mark without touching the current value.
    #[inline]
    pub fn observe_peak(&self, v: i64) {
        if let Some(core) = &self.core {
            core.high_water.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Last value set (0 when detached).
    pub fn value(&self) -> i64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }

    /// Largest value ever set (0 when detached or never set above 0).
    pub fn high_water(&self) -> i64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.high_water.load(Ordering::Relaxed))
    }

    /// Whether the handle records anywhere.
    pub fn is_attached(&self) -> bool {
        self.core.is_some()
    }
}

/// Point-in-time value of one gauge inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSnapshot {
    /// Last value set.
    pub value: i64,
    /// Largest value ever set.
    pub high_water: i64,
}

/// A registry of named metrics, or a detached stand-in that makes every
/// handle a no-op. Cloning shares the underlying table.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// A live registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A detached registry: every handle it returns is inert.
    #[must_use]
    pub fn detached() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    /// Attached or detached per the [`OBS_ENV`] (`DATAWA_OBS`) environment
    /// variable: `on`/`1`/`true` (case-insensitive) attach, anything else —
    /// including unset — detaches. Reads the environment on every call (no
    /// caching) so tests can flip the toggle in-process; the read itself
    /// goes through the workspace's single env gateway,
    /// [`datawa_core::env_config`].
    #[must_use]
    pub fn from_env() -> MetricsRegistry {
        if datawa_core::env_config::obs_attached() {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::detached()
        }
    }

    /// Whether handles from this registry record anywhere.
    pub fn is_attached(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Handles for the same name share storage.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut slots = inner.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(CounterCore::default())));
        match slot {
            Slot::Counter(core) => Counter {
                core: Some(Arc::clone(core)),
            },
            _ => panic!("metric {name:?} already registered as a non-counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut slots = inner.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(GaugeCore::default())));
        match slot {
            Slot::Gauge(core) => Gauge {
                core: Some(Arc::clone(core)),
            },
            _ => panic!("metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::detached();
        };
        let mut slots = inner.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCore::new())));
        match slot {
            Slot::Histogram(core) => Histogram {
                core: Some(Arc::clone(core)),
            },
            _ => panic!("metric {name:?} already registered as a non-histogram"),
        }
    }

    /// A point-in-time copy of every registered metric. Detached registries
    /// snapshot empty.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let slots = inner.slots.lock().expect("metrics registry poisoned");
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(core) => {
                    snap.counters
                        .insert(name.clone(), core.value.load(Ordering::Relaxed));
                }
                Slot::Gauge(core) => {
                    snap.gauges.insert(
                        name.clone(),
                        GaugeSnapshot {
                            value: core.value.load(Ordering::Relaxed),
                            high_water: core.high_water.load(Ordering::Relaxed),
                        },
                    );
                }
                Slot::Histogram(core) => {
                    let h = Histogram {
                        core: Some(Arc::clone(core)),
                    };
                    snap.histograms.insert(name.clone(), h.summary());
                }
            }
        }
        snap
    }
}

/// Whether a `DATAWA_OBS` value means "attached" (delegates to the shared
/// toggle grammar in [`datawa_core::env_config`]).
pub fn parse_obs_toggle(value: &str) -> bool {
    datawa_core::env_config::toggle_is_on(value)
}

/// A point-in-time, serializable copy of a registry's metrics. Maps are
/// ordered (`BTreeMap`) so the JSON rendering is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object string (deterministic key
    /// order).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The snapshot as a [`JsonValue`] tree, for embedding inside a larger
    /// document (the soak harness nests one per run).
    pub fn to_json_value(&self) -> JsonValue {
        let mut counters = Vec::new();
        for (name, value) in &self.counters {
            counters.push((name.clone(), JsonValue::from_u64(*value)));
        }
        let mut gauges = Vec::new();
        for (name, g) in &self.gauges {
            gauges.push((
                name.clone(),
                JsonValue::object(vec![
                    ("value".to_string(), JsonValue::from_i64(g.value)),
                    ("high_water".to_string(), JsonValue::from_i64(g.high_water)),
                ]),
            ));
        }
        let mut histograms = Vec::new();
        for (name, h) in &self.histograms {
            histograms.push((
                name.clone(),
                JsonValue::object(vec![
                    ("count".to_string(), JsonValue::from_u64(h.count)),
                    ("sum".to_string(), JsonValue::from_u64(h.sum)),
                    ("min".to_string(), JsonValue::from_u64(h.min)),
                    ("max".to_string(), JsonValue::from_u64(h.max)),
                    ("p50".to_string(), JsonValue::from_u64(h.p50)),
                    ("p95".to_string(), JsonValue::from_u64(h.p95)),
                    ("p99".to_string(), JsonValue::from_u64(h.p99)),
                ]),
            ));
        }
        JsonValue::object(vec![
            ("counters".to_string(), JsonValue::object(counters)),
            ("gauges".to_string(), JsonValue::object(gauges)),
            ("histograms".to_string(), JsonValue::object(histograms)),
        ])
    }

    /// Parses a snapshot back from its [`Self::to_json`] rendering.
    ///
    /// # Errors
    /// When the text is not valid JSON or does not have the snapshot shape.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// Rebuilds a snapshot from a parsed [`JsonValue`].
    ///
    /// # Errors
    /// When the value does not have the snapshot shape.
    pub fn from_json_value(value: &JsonValue) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        for (name, v) in value.get("counters").map_or(&[][..], JsonValue::entries) {
            snap.counters.insert(
                name.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("counter {name}: not u64"))?,
            );
        }
        for (name, v) in value.get("gauges").map_or(&[][..], JsonValue::entries) {
            let field = |key: &str| {
                v.get(key)
                    .and_then(JsonValue::as_i64)
                    .ok_or_else(|| format!("gauge {name}: missing {key}"))
            };
            snap.gauges.insert(
                name.clone(),
                GaugeSnapshot {
                    value: field("value")?,
                    high_water: field("high_water")?,
                },
            );
        }
        for (name, v) in value.get("histograms").map_or(&[][..], JsonValue::entries) {
            let field = |key: &str| {
                v.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("histogram {name}: missing {key}"))
            };
            snap.histograms.insert(
                name.clone(),
                HistogramSummary {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    p50: field("p50")?,
                    p95: field("p95")?,
                    p99: field("p99")?,
                },
            );
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_registry_hands_out_inert_handles() {
        let reg = MetricsRegistry::detached();
        assert!(!reg.is_attached());
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        c.inc();
        g.set(7);
        h.record(9);
        assert!(!c.is_attached());
        assert_eq!(
            (c.value(), g.value(), g.high_water(), h.count()),
            (0, 0, 0, 0)
        );
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn same_name_handles_share_storage() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        assert_eq!(reg.snapshot().counters["hits"], 4);
    }

    #[test]
    fn gauge_tracks_high_water_across_sets() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.set(3);
        assert_eq!(g.value(), 3);
        assert_eq!(g.high_water(), 10);
        g.observe_peak(25);
        assert_eq!(g.value(), 3);
        assert_eq!(g.high_water(), 25);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("dual");
        let _ = reg.gauge("dual");
    }

    #[test]
    fn obs_toggle_parsing() {
        for v in ["on", "ON", "1", "true", " True "] {
            assert!(parse_obs_toggle(v), "{v:?} should attach");
        }
        for v in ["off", "0", "false", "", "yes", "2"] {
            assert!(!parse_obs_toggle(v), "{v:?} should detach");
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(42);
        reg.gauge("b.depth").set(-3);
        reg.gauge("b.depth").set(9);
        let h = reg.histogram("c.lat");
        for v in [5u64, 80, 3_000, 1_000_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("round trip parse");
        assert_eq!(back, snap);
    }
}
