//! The adaptive streaming algorithm (Algorithm 3) and the five evaluated
//! assignment policies (§V-B.2).
//!
//! The runner consumes a time-ordered stream of worker and task arrivals,
//! re-plans according to the selected policy, dispatches the first task of
//! each idle worker's planned sequence, and tracks the two metrics the paper
//! reports: the total number of assigned tasks and the CPU time spent planning
//! at each time instance.

use crate::cache::{DirtySet, IncrementalContext};
use crate::config::AssignConfig;
use crate::forecast::{ForecastProvider, ForecastStats, StaticForecast};
use crate::planner::{Planner, SearchMode};
use crate::tvf::{TaskValueFunction, TvfInference};
use datawa_core::{
    AvailableWorkerView, Duration, Location, OpenTaskView, Task, TaskId, TaskSequence, TaskStore,
    Timestamp, Worker, WorkerId, WorkerMode, WorkerStore,
};
use datawa_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::collections::{HashMap, HashSet};

/// The five task-assignment methods compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Greedy: each worker takes the maximal valid task set from the
    /// unassigned tasks, no search, no prediction.
    Greedy,
    /// Fixed Task Assignment: each worker receives a fixed sequence when they
    /// come online and never deviates from it.
    Fta,
    /// Dynamic Task Assignment: the sequence of every idle worker is
    /// re-planned at every time instance (no prediction).
    Dta,
    /// DTA plus task-demand prediction: predicted near-future tasks take part
    /// in planning.
    DtaTp,
    /// The full DATA-WA method: DTA+TP with the TVF-guided search instead of
    /// the exact DFSearch.
    DataWa,
}

impl PolicyKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Greedy => "Greedy",
            PolicyKind::Fta => "FTA",
            PolicyKind::Dta => "DTA",
            PolicyKind::DtaTp => "DTA+TP",
            PolicyKind::DataWa => "DATA-WA",
        }
    }

    /// Whether the policy plans over predicted tasks.
    pub fn uses_prediction(&self) -> bool {
        matches!(self, PolicyKind::DtaTp | PolicyKind::DataWa)
    }

    /// Whether the policy re-plans at every time instance (as opposed to
    /// fixing each worker's sequence on arrival).
    pub fn replans(&self) -> bool {
        !matches!(self, PolicyKind::Fta)
    }

    /// All five policies, in the order the paper lists them.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Greedy,
            PolicyKind::Fta,
            PolicyKind::Dta,
            PolicyKind::DtaTp,
            PolicyKind::DataWa,
        ]
    }
}

/// One arrival in the input stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalEvent {
    /// A worker comes online.
    Worker(Worker),
    /// A task is published.
    Task(Task),
}

impl ArrivalEvent {
    /// The time at which the arrival happens (worker online time or task
    /// publication time).
    pub fn time(&self) -> Timestamp {
        match self {
            ArrivalEvent::Worker(w) => w.on(),
            ArrivalEvent::Task(t) => t.publication,
        }
    }
}

/// A predicted near-future task fed to the prediction-aware policies.
///
/// This is the *planning-facing* prediction record: the minimum the planner
/// consumes (where and when demand is expected). The model-facing record —
/// `datawa_predict::PredictedTask`, which additionally carries the grid cell
/// and the model confidence — converts into this type through the `From`
/// impl provided by `datawa-predict`; that impl is the single sanctioned
/// conversion path between the two layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedTaskInput {
    /// Expected location.
    pub location: Location,
    /// Expected publication time.
    pub publication: Timestamp,
    /// Expected expiration time.
    pub expiration: Timestamp,
}

/// One dispatch performed by [`RunnerState::step`]: a worker departing for a
/// task at a time instance. The state machine appends every dispatch to an
/// internal log that drivers drain through [`RunnerState::take_dispatches`] —
/// this is what lets the `datawa-stream` session API emit assignment
/// decisions incrementally instead of only reporting end-of-run totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchRecord {
    /// The dispatched worker.
    pub worker: WorkerId,
    /// The real task it departs for.
    pub task: TaskId,
    /// The time instance at which the dispatch was decided.
    pub decided_at: Timestamp,
    /// When the worker reaches the task (its busy-until horizon).
    pub eta: Timestamp,
}

/// Aggregate outcome of one streaming run.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Total number of real tasks dispatched to (and therefore served by)
    /// workers — the paper's primary metric.
    pub assigned_tasks: usize,
    /// Number of arrival events processed.
    pub events: usize,
    /// Number of planning invocations.
    pub planning_calls: usize,
    /// Total wall-clock seconds spent planning.
    pub total_planning_seconds: f64,
    /// Mean planning seconds per planning call (the paper's "CPU time").
    pub mean_planning_seconds: f64,
    /// Tasks served per worker.
    pub per_worker: HashMap<WorkerId, usize>,
    /// Largest number of independent planning partitions any single planning
    /// instant split into.
    pub peak_partitions: usize,
    /// Workers in the largest partition observed across all instants (the
    /// pool's critical-path width).
    pub peak_partition_workers: usize,
    /// Largest number of pool threads any planning instant actually occupied.
    pub peak_pool_occupancy: usize,
    /// Activity counters of the run's [`ForecastProvider`] (observations,
    /// forecast queries, model refreshes).
    pub forecast: ForecastStats,
    /// Planning partitions whose plan was reused from the incremental plan
    /// cache (or trivially skipped) instead of searched, summed over the
    /// whole run. Zero when incremental replanning is off or inapplicable.
    pub partitions_reused: usize,
    /// Planning partitions actually searched, summed over the whole run.
    /// With incremental replanning off this counts every partition of every
    /// instant.
    pub partitions_recomputed: usize,
}

/// The streaming adaptive runner (Algorithm 3).
pub struct AdaptiveRunner {
    /// Assignment configuration shared with the planner.
    pub config: AssignConfig,
    /// Which of the five methods to run.
    pub policy: PolicyKind,
    /// Inference snapshot of the trained TVF (required by
    /// [`PolicyKind::DataWa`]; set through [`AdaptiveRunner::with_tvf`]).
    /// Stored as a snapshot so the runner is `Sync` and shard states that
    /// borrow it can be stepped on a thread pool.
    pub tvf: Option<TvfInference>,
    /// How far ahead of `now` predicted tasks are allowed to influence
    /// planning.
    pub prediction_lookahead: Duration,
    /// Re-plan every `replan_every` events (1 = every event, the paper's
    /// setting; larger values trade assignment quality for speed on large
    /// traces).
    pub replan_every: usize,
    /// Observability registry every run state records into. Defaults to
    /// [`MetricsRegistry::from_env`] (`DATAWA_OBS=on` attaches it, anything
    /// else leaves it detached and every recording a no-op); override with
    /// [`AdaptiveRunner::with_metrics`]. Private so the field cannot bypass
    /// the construction path — use [`AdaptiveRunner::metrics`] to read it.
    obs: MetricsRegistry,
}

#[derive(Debug, Clone)]
struct WorkerRuntime {
    busy_until: Timestamp,
    /// The worker's current planned sequence of *real* task ids (Algorithm 3
    /// keeps the planning assignment `PA` alive between planning instants, so
    /// idle workers can be dispatched even at events where no re-planning
    /// happened). For FTA this is the fixed sequence pinned once; for the
    /// adaptive policies it is overwritten at every planning instant.
    plan: TaskSequence,
    /// When the worker's latest planned sequence *starts* with a predicted
    /// (not yet published) task, the worker holds position for it until its
    /// expected publication instant — this is task-demand prediction's
    /// positioning mechanism: the planner reserved this worker for imminent
    /// demand at its location, so dispatching it elsewhere would squander
    /// the reservation. The hold is re-derived at every planning instant and
    /// expires on its own if the prediction never materialises.
    hold_until: Option<Timestamp>,
    /// Whether an FTA fixed plan has already been pinned for this worker (a
    /// worker receives its fixed sequence exactly once, at the first planning
    /// instant where it is idle and tasks are available).
    fixed_assigned: bool,
}

/// Pre-resolved handles into the runner's [`MetricsRegistry`] (resolving by
/// name locks the registry's table, so it happens once per run, in
/// [`AdaptiveRunner::start`], never on the per-event path). Every handle is
/// inert when the registry is detached.
struct AssignMetrics {
    /// `assign.replan_seconds`: wall-clock latency of each planning instant.
    replan_seconds: Histogram,
    /// `assign.planning_calls`: planning invocations.
    planning_calls: Counter,
    /// `assign.search_nodes`: search nodes expanded across all partitions.
    search_nodes: Counter,
    /// `assign.dispatches`: real tasks dispatched.
    dispatches: Counter,
    /// `assign.partitions`: independent partitions of the latest instant
    /// (high-water = the run's peak).
    partitions: Gauge,
    /// `assign.partition_workers`: workers in the instant's largest
    /// partition.
    partition_workers: Gauge,
    /// `assign.pool_occupancy`: threads the partition pool occupied.
    pool_occupancy: Gauge,
    /// `assign.open_tasks`: open unserved tasks at the latest time instance.
    open_tasks: Gauge,
    /// `assign.available_workers`: idle available workers at the latest time
    /// instance.
    available_workers: Gauge,
    /// `assign.partitions_reused`: partitions whose plan came from the
    /// incremental plan cache (or was trivially empty) instead of a search.
    partitions_reused: Counter,
    /// `assign.partitions_recomputed`: partitions actually searched.
    partitions_recomputed: Counter,
    /// `assign.cache_hit_pct`: cumulative share of partitions reused so far
    /// this run (0–100; the final value is the run-wide hit rate).
    cache_hit_pct: Gauge,
    /// `assign.dirty_fraction_pct`: per-instant share of partitions that
    /// had to be recomputed (0–100) — the distribution of how dirty each
    /// planning instant actually was.
    dirty_fraction_pct: Histogram,
    /// `forecast.observed` / `forecast.queries` / `forecast.refreshes`:
    /// activity counters of the run's forecast provider (mirrored into
    /// gauges after each planning instant).
    forecast_observed: Gauge,
    forecast_queries: Gauge,
    forecast_refreshes: Gauge,
}

impl AssignMetrics {
    fn register(registry: &MetricsRegistry) -> AssignMetrics {
        AssignMetrics {
            replan_seconds: registry.histogram("assign.replan_seconds"),
            planning_calls: registry.counter("assign.planning_calls"),
            search_nodes: registry.counter("assign.search_nodes"),
            dispatches: registry.counter("assign.dispatches"),
            partitions: registry.gauge("assign.partitions"),
            partition_workers: registry.gauge("assign.partition_workers"),
            pool_occupancy: registry.gauge("assign.pool_occupancy"),
            open_tasks: registry.gauge("assign.open_tasks"),
            available_workers: registry.gauge("assign.available_workers"),
            partitions_reused: registry.counter("assign.partitions_reused"),
            partitions_recomputed: registry.counter("assign.partitions_recomputed"),
            cache_hit_pct: registry.gauge("assign.cache_hit_pct"),
            dirty_fraction_pct: registry.histogram("assign.dirty_fraction_pct"),
            forecast_observed: registry.gauge("forecast.observed"),
            forecast_queries: registry.gauge("forecast.queries"),
            forecast_refreshes: registry.gauge("forecast.refreshes"),
        }
    }
}

impl AdaptiveRunner {
    /// Creates a runner with the paper's defaults.
    pub fn new(config: AssignConfig, policy: PolicyKind) -> AdaptiveRunner {
        AdaptiveRunner {
            config,
            policy,
            tvf: None,
            prediction_lookahead: Duration::from_secs(60.0),
            replan_every: 1,
            obs: MetricsRegistry::from_env(),
        }
    }

    /// Attaches a trained TVF (required for DATA-WA); the runner keeps a
    /// thread-safe inference snapshot of its weights.
    pub fn with_tvf(mut self, tvf: TaskValueFunction) -> AdaptiveRunner {
        self.tvf = Some(tvf.inference());
        self
    }

    /// Replaces the runner's observability registry (e.g. with
    /// [`MetricsRegistry::new`] to force metrics on regardless of
    /// `DATAWA_OBS`, or [`MetricsRegistry::detached`] to force them off).
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> AdaptiveRunner {
        self.obs = registry;
        self
    }

    /// The runner's observability registry (detached unless `DATAWA_OBS=on`
    /// or [`AdaptiveRunner::with_metrics`] attached one). Drivers that layer
    /// their own metrics on top — the stream session, the dispatch service —
    /// register into this same registry so one snapshot covers the stack.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs
    }

    fn planner(&self) -> Planner {
        match self.policy {
            PolicyKind::Greedy => Planner::new(self.config, SearchMode::Greedy),
            PolicyKind::Fta | PolicyKind::Dta | PolicyKind::DtaTp => {
                Planner::new(self.config, SearchMode::Exact)
            }
            PolicyKind::DataWa => {
                // DATA-WA plans through `Planner::plan_guided`, which borrows
                // the snapshot owned by the runner; fail fast if it is
                // missing.
                assert!(
                    self.tvf.is_some(),
                    "PolicyKind::DataWa requires a trained TVF (use with_tvf)"
                );
                Planner::new(self.config, SearchMode::Exact)
            }
        }
    }

    /// Opens a stepwise run: the caller feeds arrivals and time instances
    /// itself (this is the entry point the `datawa-stream` discrete-event
    /// engine drives; [`AdaptiveRunner::run`] is a thin synchronous loop over
    /// the same state machine).
    ///
    /// `forecast` is the run's demand-prediction source: every inserted task
    /// is routed into it through [`ForecastProvider::observe`], and the
    /// prediction-aware policies re-query [`ForecastProvider::forecast`] at
    /// every planning instant. Wrap a precomputed slice in
    /// [`StaticForecast`] to reproduce the pre-redesign fixed-oracle
    /// behaviour bit for bit.
    ///
    /// The state is generic over the provider so `Send` providers yield
    /// `Send` states (the sharded engine steps those on a thread pool);
    /// `F = dyn ForecastProvider` (the default) erases the type for drivers
    /// that do not care.
    pub fn start<'a, F: ForecastProvider + ?Sized>(
        &'a self,
        forecast: &'a mut F,
    ) -> RunnerState<'a, F> {
        RunnerState {
            runner: self,
            forecast,
            planner: self.planner(),
            workers: WorkerStore::new(),
            tasks: TaskStore::new(),
            open_view: OpenTaskView::new(),
            available_view: AvailableWorkerView::new(),
            runtime: Vec::new(),
            served: HashSet::new(),
            reserved_by_fta: HashSet::new(),
            dispatch_log: Vec::new(),
            outcome: RunOutcome::default(),
            metrics: AssignMetrics::register(&self.obs),
            dirty: DirtySet::default(),
        }
    }

    /// Runs the policy over a time-ordered arrival stream (the legacy
    /// synchronous driver: one time instance per arrival).
    ///
    /// `predicted` holds the output of the demand-prediction component
    /// (wrapped in a [`StaticForecast`] internally); it is ignored by the
    /// policies that do not use prediction.
    pub fn run(&self, events: &[ArrivalEvent], predicted: &[PredictedTaskInput]) -> RunOutcome {
        let mut events: Vec<ArrivalEvent> = events.to_vec();
        events.sort_by(|a, b| datawa_core::time::cmp_timestamps(a.time(), b.time()));

        let mut forecast = StaticForecast::from_slice(predicted);
        let mut state = self.start(&mut forecast);
        for (event_index, event) in events.iter().enumerate() {
            let now = event.time();
            state.record_event();
            match event {
                ArrivalEvent::Worker(w) => {
                    state.insert_worker(*w);
                }
                ArrivalEvent::Task(t) => {
                    state.insert_task(*t);
                }
            }
            state.step(now, event_index % self.replan_every.max(1) == 0);
        }
        state.finish()
    }

    /// Builds the temporary planning store of open real tasks plus (for the
    /// prediction-aware policies) predicted tasks inside the lookahead window.
    /// Returns the store and a mapping from planning task id to what it
    /// stands for (a real task, or a predicted one with its expected
    /// publication).
    fn build_planning_store(
        &self,
        tasks: &TaskStore,
        open_tasks: &[TaskId],
        predicted: &[PredictedTaskInput],
        now: Timestamp,
    ) -> (TaskStore, Vec<PlanningEntry>) {
        let mut store = TaskStore::new();
        let mut mapping = Vec::new();
        for &tid in open_tasks {
            store.insert(*tasks.get(tid));
            mapping.push(PlanningEntry::Real(tid));
        }
        if self.policy.uses_prediction() {
            let horizon = now + self.prediction_lookahead;
            for p in predicted {
                if p.publication.0 > now.0 && p.publication.0 <= horizon.0 && p.expiration.0 > now.0
                {
                    store.insert_with_location(p.location, p.publication, p.expiration);
                    mapping.push(PlanningEntry::Predicted {
                        publication: p.publication,
                    });
                }
            }
        }
        (store, mapping)
    }
}

/// What a planning-store task id stands for once the plan is mapped back to
/// the live world: an open real task, or a predicted (not yet published)
/// task that can steer sequences but never be dispatched.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PlanningEntry {
    /// An open real task (dense id in the run's task store).
    Real(TaskId),
    /// A predicted task expected to publish at the carried instant.
    Predicted {
        /// Expected publication time of the predicted task.
        publication: Timestamp,
    },
}

/// The live state of one streaming run, exposed stepwise so that external
/// drivers (the synchronous [`AdaptiveRunner::run`] loop and the
/// `datawa-stream` discrete-event engine) share one implementation of
/// Algorithm 3.
///
/// A driver feeds the state machine three kinds of inputs:
///
/// * **arrivals** — [`RunnerState::insert_worker`] / [`RunnerState::insert_task`];
/// * **retirements** — [`RunnerState::expire_task`] /
///   [`RunnerState::retire_worker`], which maintain the incremental open-task
///   and available-worker views in `O(log n)` (drivers without such events may
///   skip them: the views also prune lazily);
/// * **time instances** — [`RunnerState::step`], which optionally re-plans
///   (the batched-replan entry point) and then dispatches idle workers.
pub struct RunnerState<'a, F: ForecastProvider + ?Sized = dyn ForecastProvider + 'a> {
    runner: &'a AdaptiveRunner,
    forecast: &'a mut F,
    planner: Planner,
    workers: WorkerStore,
    tasks: TaskStore,
    open_view: OpenTaskView,
    available_view: AvailableWorkerView,
    runtime: Vec<WorkerRuntime>,
    served: HashSet<TaskId>,
    reserved_by_fta: HashSet<TaskId>,
    dispatch_log: Vec<DispatchRecord>,
    outcome: RunOutcome,
    metrics: AssignMetrics,
    /// Events recorded since the last planning instant (see
    /// [`DirtySet`]): the diagnostic view of *why* the next incremental
    /// plan will recompute whatever it recomputes. Cleared after every
    /// planning call.
    dirty: DirtySet,
}

impl<F: ForecastProvider + ?Sized> RunnerState<'_, F> {
    /// Counts one arrival event in the outcome (drivers call this once per
    /// worker/task arrival so [`RunOutcome::events`] matches the legacy loop).
    #[inline]
    pub fn record_event(&mut self) {
        self.outcome.events += 1;
    }

    /// Number of candidate open tasks currently tracked by the incremental
    /// view (may include lazily prunable entries). The sharded engine uses
    /// this as the demand signal when handing boundary workers to a shard.
    #[inline]
    pub fn open_candidates(&self) -> usize {
        self.open_view.len()
    }

    /// Number of candidate available workers currently tracked by the
    /// incremental view.
    #[inline]
    pub fn available_candidates(&self) -> usize {
        self.available_view.len()
    }

    /// Total real tasks dispatched so far (the running value of
    /// [`RunOutcome::assigned_tasks`]).
    #[inline]
    pub fn assigned_so_far(&self) -> usize {
        self.outcome.assigned_tasks
    }

    /// Drains the dispatches performed since the previous call (or since the
    /// run started), in decision order. Drivers that surface incremental
    /// decisions (the `datawa-stream` session) call this after every
    /// [`RunnerState::step`]; drivers that only need totals may ignore the
    /// log entirely — it is dropped at [`RunnerState::finish`].
    #[inline]
    pub fn take_dispatches(&mut self) -> Vec<DispatchRecord> {
        std::mem::take(&mut self.dispatch_log)
    }

    /// Events recorded since the last planning instant (diagnostics; see
    /// [`DirtySet`]).
    #[inline]
    pub fn dirty_set(&self) -> &DirtySet {
        &self.dirty
    }

    /// Inserts an arriving worker and returns its dense id.
    pub fn insert_worker(&mut self, worker: Worker) -> WorkerId {
        let id = self.workers.insert(worker);
        self.runtime.push(WorkerRuntime {
            busy_until: Timestamp(f64::NEG_INFINITY),
            plan: TaskSequence::empty(),
            hold_until: None,
            fixed_assigned: false,
        });
        self.available_view.insert(id);
        self.dirty.note_worker_online(id);
        id
    }

    /// Inserts an arriving task and returns its dense id. The arrival is
    /// also routed into the run's [`ForecastProvider`] so an online
    /// forecaster's occurrence history tracks the live stream (a no-op
    /// beyond counting for [`StaticForecast`]).
    pub fn insert_task(&mut self, task: Task) -> TaskId {
        self.forecast.observe(task.publication, &task);
        let id = self.tasks.insert(task);
        self.open_view.insert(id);
        self.dirty.note_task_arrival(id);
        id
    }

    /// Activity counters of the run's forecast provider so far.
    #[inline]
    pub fn forecast_stats(&self) -> ForecastStats {
        self.forecast.stats()
    }

    /// Removes an expired task from the open view (`O(log n)`; called by
    /// event-driven drivers when the expiration event fires). Returns whether
    /// the task was still in the view.
    pub fn expire_task(&mut self, id: TaskId) -> bool {
        self.dirty.note_task_expiration(id);
        self.open_view.remove(id)
    }

    /// Takes a worker offline (`O(log n)` view update; called by event-driven
    /// drivers when the offline event fires).
    ///
    /// With `release_plan`, the worker's undone planned tasks are released:
    /// its remaining sequence is cleared and, under FTA, the tasks return to
    /// the unreserved pool so later fixed plans may claim them. The legacy
    /// synchronous driver never releases (FTA reservations are permanent
    /// there), which is why this is a flag and not the default behaviour of
    /// going offline.
    pub fn retire_worker(&mut self, id: WorkerId, release_plan: bool) {
        self.dirty.note_worker_offline(id);
        self.available_view.remove(id);
        self.workers.get_mut(id).mode = WorkerMode::Offline;
        if release_plan {
            let plan = std::mem::replace(&mut self.runtime[id.index()].plan, TaskSequence::empty());
            for tid in plan.iter() {
                self.reserved_by_fta.remove(&tid);
            }
        }
    }

    /// One time instance of Algorithm 3: plan (if the batching policy asks
    /// for it via `replan`, or unconditionally for FTA workers still waiting
    /// for their fixed sequence) and dispatch every idle worker to the first
    /// still-servable task of its plan.
    pub fn step(&mut self, now: Timestamp, replan: bool) {
        let policy = self.runner.policy;
        if replan {
            self.dirty.note_replan_tick();
        }

        // Idle, available workers at this instant (ascending id order, like
        // the full scans the incremental views replace).
        let idle_workers: Vec<WorkerId> = self
            .available_view
            .available_at(&self.workers, now)
            .into_iter()
            .filter(|w| self.runtime[w.index()].busy_until.0 <= now.0)
            .collect();

        // Open, unserved real tasks (served tasks leave the view eagerly at
        // dispatch time, expired ones lazily here or eagerly via
        // `expire_task`).
        let open_tasks: Vec<TaskId> = self.open_view.open_at(&self.tasks, now);

        self.metrics.open_tasks.set(open_tasks.len() as i64);
        self.metrics
            .available_workers
            .set(idle_workers.len() as i64);

        // Planning (Algorithm 3, lines 3–9). FTA plans only for workers that
        // have never received their fixed sequence; the adaptive policies
        // re-plan when the driver's batching policy says so.
        let unfixed_idle: Vec<WorkerId> = idle_workers
            .iter()
            .copied()
            .filter(|w| !self.runtime[w.index()].fixed_assigned)
            .collect();
        let should_plan = match policy {
            PolicyKind::Fta => !unfixed_idle.is_empty(),
            _ => replan,
        };
        if should_plan && !open_tasks.is_empty() {
            // Re-query the forecast at this planning instant (only the
            // prediction-aware policies pay for it); the lookahead filtering
            // below is unchanged from the fixed-slice era.
            let (planning_store, mapping) = {
                let predicted: &[PredictedTaskInput] = if policy.uses_prediction() {
                    self.forecast
                        .forecast(now, self.runner.prediction_lookahead)
                } else {
                    &[]
                };
                self.runner
                    .build_planning_store(&self.tasks, &open_tasks, predicted, now)
            };
            let planning_task_ids: Vec<TaskId> = planning_store.ids().collect();
            let planning_workers: Vec<WorkerId> = match policy {
                PolicyKind::Fta => unfixed_idle.clone(),
                _ => idle_workers.clone(),
            };
            if !planning_workers.is_empty() {
                // Incremental replanning context: only meaningful when the
                // planning store holds exactly the open real tasks (no
                // predicted phantoms — their planning ids are not stable
                // across instants). `open_at` returns ascending dense ids,
                // which is the order the cache's id translation relies on.
                let epoch = self.forecast.stats().refreshes as u64;
                self.dirty.note_forecast_epoch(epoch);
                let all_real = mapping.len() == open_tasks.len();
                let ctx = if all_real {
                    debug_assert!(open_tasks.windows(2).all(|p| p[0].0 < p[1].0));
                    Some(IncrementalContext {
                        real_ids: &open_tasks,
                        forecast_epoch: epoch,
                    })
                } else {
                    None
                };
                let (assignment, report) = if policy == PolicyKind::DataWa {
                    let tvf = self
                        .runner
                        .tvf
                        .as_ref()
                        // datawa-lint: allow(unwrap-in-hot-path) -- construction invariant: a DataWa runner is only built via with_tvf, which sets this
                        .expect("PolicyKind::DataWa requires a trained TVF (use with_tvf)");
                    self.planner.plan_guided(
                        &planning_workers,
                        &planning_task_ids,
                        &self.workers,
                        &planning_store,
                        now,
                        tvf,
                    )
                } else {
                    self.planner.plan_incremental(
                        &planning_workers,
                        &planning_task_ids,
                        &self.workers,
                        &planning_store,
                        now,
                        ctx.as_ref(),
                    )
                };
                self.dirty.clear();
                self.outcome.planning_calls += 1;
                self.outcome.total_planning_seconds += report.elapsed_seconds;
                self.outcome.peak_partitions = self.outcome.peak_partitions.max(report.partitions);
                self.outcome.peak_partition_workers = self
                    .outcome
                    .peak_partition_workers
                    .max(report.max_partition_workers);
                self.outcome.peak_pool_occupancy =
                    self.outcome.peak_pool_occupancy.max(report.threads_used);
                self.outcome.partitions_reused += report.partitions_reused;
                self.outcome.partitions_recomputed += report.partitions_recomputed;
                self.metrics
                    .partitions_reused
                    .add(report.partitions_reused as u64);
                self.metrics
                    .partitions_recomputed
                    .add(report.partitions_recomputed as u64);
                let cumulative =
                    self.outcome.partitions_reused + self.outcome.partitions_recomputed;
                if let Some(pct) = (100 * self.outcome.partitions_reused).checked_div(cumulative) {
                    self.metrics.cache_hit_pct.set(pct as i64);
                }
                let instant_total = report.partitions_reused + report.partitions_recomputed;
                if let Some(pct) = (100 * report.partitions_recomputed).checked_div(instant_total) {
                    self.metrics.dirty_fraction_pct.record(pct as u64);
                }
                self.metrics
                    .replan_seconds
                    .record_seconds(report.elapsed_seconds);
                self.metrics.planning_calls.inc();
                self.metrics.search_nodes.add(report.nodes_expanded as u64);
                self.metrics.partitions.set(report.partitions as i64);
                self.metrics
                    .partition_workers
                    .set(report.max_partition_workers as i64);
                self.metrics.pool_occupancy.set(report.threads_used as i64);
                if self.metrics.forecast_observed.is_attached() {
                    let stats = self.forecast.stats();
                    self.metrics.forecast_observed.set(stats.observed as i64);
                    self.metrics.forecast_queries.set(stats.queries as i64);
                    self.metrics.forecast_refreshes.set(stats.refreshes as i64);
                }
                if policy == PolicyKind::Fta {
                    // Pin the fixed plans of the planned workers, mapped back
                    // to real task ids, skipping tasks already reserved by
                    // earlier fixed plans. A worker is only marked as "fixed"
                    // once it receives a non-empty sequence, matching the
                    // paper's notion that every worker gets exactly one
                    // predetermined sequence.
                    for &wid in &unfixed_idle {
                        if let Some(seq) = assignment.get(wid) {
                            let mut fixed = TaskSequence::empty();
                            for planning_tid in seq.iter() {
                                if let PlanningEntry::Real(real) = mapping[planning_tid.index()] {
                                    if !self.reserved_by_fta.contains(&real) {
                                        self.reserved_by_fta.insert(real);
                                        fixed.push(real);
                                    }
                                }
                            }
                            if !fixed.is_empty() {
                                self.runtime[wid.index()].plan = fixed;
                                self.runtime[wid.index()].fixed_assigned = true;
                            }
                        }
                    }
                } else {
                    // Refresh the persistent plan of every planned worker
                    // with the real tasks of its new sequence. Predicted
                    // tasks guide the search but cannot be dispatched — they
                    // are filtered out of the plan, except that a sequence
                    // *starting* with a predicted task pins a positioning
                    // hold: the planner reserved this worker for demand
                    // expected imminently at its location, so the worker
                    // stays put until that expected publication instead of
                    // being dispatched to whatever real task comes next in
                    // the filtered plan.
                    for &wid in &planning_workers {
                        let mut hold: Option<Timestamp> = None;
                        let mapped = assignment
                            .get(wid)
                            .map(|seq| {
                                let mapped =
                                    TaskSequence::from_ids(seq.iter().filter_map(
                                        |tid| match mapping[tid.index()] {
                                            PlanningEntry::Real(real) => Some(real),
                                            PlanningEntry::Predicted { .. } => None,
                                        },
                                    ));
                                // A *pure-phantom* plan reserves the worker
                                // for imminent demand at its position: hold
                                // it until the first expected publication.
                                // Plans containing any real task dispatch
                                // immediately — the weighted search already
                                // guarantees predicted demand never displaced
                                // real work in them.
                                if mapped.is_empty() {
                                    if let Some(first) = seq.first() {
                                        if let PlanningEntry::Predicted { publication } =
                                            mapping[first.index()]
                                        {
                                            hold = Some(publication);
                                        }
                                    }
                                }
                                mapped
                            })
                            .unwrap_or_else(TaskSequence::empty);
                        self.runtime[wid.index()].plan = mapped;
                        self.runtime[wid.index()].hold_until = hold;
                    }
                }
            }
        }

        // Dispatch (Algorithm 3, lines 10–14): every idle worker departs for
        // the first still-servable task of its current plan.
        for &wid in &idle_workers {
            // A positioning hold keeps the worker in place for imminent
            // predicted demand; it expires on its own at the expected
            // publication (the next planning instant then re-plans the
            // worker over whatever actually arrived).
            if let Some(hold) = self.runtime[wid.index()].hold_until {
                if now.0 < hold.0 {
                    continue;
                }
                self.runtime[wid.index()].hold_until = None;
            }
            // Drop plan entries that were served by someone else or have
            // already expired.
            let mut dispatch_target: Option<TaskId> = None;
            while let Some(candidate) = self.runtime[wid.index()].plan.first() {
                let task = self.tasks.get(candidate);
                if self.served.contains(&candidate) || task.is_expired_at(now) {
                    self.runtime[wid.index()].plan.pop_front();
                    continue;
                }
                dispatch_target = Some(candidate);
                break;
            }
            if let Some(tid) = dispatch_target {
                let task = *self.tasks.get(tid);
                let travel_time = {
                    let w = self.workers.get(wid);
                    self.runner
                        .config
                        .travel
                        .travel_time(&w.location, &task.location)
                };
                // The worker must still be able to reach it before expiry and
                // before going offline.
                let arrival = now + travel_time;
                let w = self.workers.get(wid);
                if arrival.0 < task.expiration.0 && arrival.0 < w.off().0 {
                    self.served.insert(tid);
                    self.open_view.remove(tid);
                    self.runtime[wid.index()].plan.pop_front();
                    self.outcome.assigned_tasks += 1;
                    *self.outcome.per_worker.entry(wid).or_insert(0) += 1;
                    self.runtime[wid.index()].busy_until = arrival;
                    self.workers.get_mut(wid).location = task.location;
                    self.dirty.note_task_served(tid);
                    self.dirty.note_worker_moved(wid);
                    self.metrics.dispatches.inc();
                    self.dispatch_log.push(DispatchRecord {
                        worker: wid,
                        task: tid,
                        decided_at: now,
                        eta: arrival,
                    });
                } else if policy != PolicyKind::Fta {
                    // An adaptive plan whose head became unreachable is stale;
                    // drop the head so the next planning instant can replace
                    // it. FTA keeps its fixed sequence.
                    self.runtime[wid.index()].plan.pop_front();
                }
            }
        }
    }

    /// Closes the run and returns the aggregated outcome.
    pub fn finish(self) -> RunOutcome {
        let mut outcome = self.outcome;
        outcome.forecast = self.forecast.stats();
        if self.metrics.forecast_observed.is_attached() {
            self.metrics
                .forecast_observed
                .set(outcome.forecast.observed as i64);
            self.metrics
                .forecast_queries
                .set(outcome.forecast.queries as i64);
            self.metrics
                .forecast_refreshes
                .set(outcome.forecast.refreshes as i64);
        }
        outcome.mean_planning_seconds = if outcome.planning_calls == 0 {
            0.0
        } else {
            outcome.total_planning_seconds / outcome.planning_calls as f64
        };
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(x: f64, y: f64, on: f64, off: f64, d: f64) -> ArrivalEvent {
        ArrivalEvent::Worker(Worker::new(
            WorkerId(0),
            Location::new(x, y),
            d,
            Timestamp(on),
            Timestamp(off),
        ))
    }

    fn task(x: f64, y: f64, p: f64, e: f64) -> ArrivalEvent {
        ArrivalEvent::Task(Task::new(
            TaskId(0),
            Location::new(x, y),
            Timestamp(p),
            Timestamp(e),
        ))
    }

    /// A compact stream where a single worker can serve two nearby tasks.
    fn simple_stream() -> Vec<ArrivalEvent> {
        vec![
            worker(0.0, 0.0, 0.0, 100.0, 5.0),
            task(1.0, 0.0, 1.0, 50.0),
            task(2.0, 0.0, 2.0, 60.0),
        ]
    }

    fn runner(policy: PolicyKind) -> AdaptiveRunner {
        AdaptiveRunner::new(AssignConfig::unit_speed(), policy)
    }

    #[test]
    fn greedy_serves_reachable_tasks() {
        let outcome = runner(PolicyKind::Greedy).run(&simple_stream(), &[]);
        assert_eq!(outcome.assigned_tasks, 2);
        assert_eq!(outcome.events, 3);
        assert!(outcome.planning_calls > 0);
        assert!(outcome.mean_planning_seconds >= 0.0);
    }

    #[test]
    fn dta_serves_at_least_as_many_as_greedy_here() {
        let g = runner(PolicyKind::Greedy).run(&simple_stream(), &[]);
        let d = runner(PolicyKind::Dta).run(&simple_stream(), &[]);
        assert!(d.assigned_tasks >= g.assigned_tasks);
    }

    #[test]
    fn fta_pins_a_single_fixed_sequence_per_worker() {
        // The worker receives its fixed plan at the first instant tasks are
        // available and then serves them in order.
        let outcome = runner(PolicyKind::Fta).run(&simple_stream(), &[]);
        assert!(outcome.assigned_tasks >= 1);
        // The fixed plan is never revised: a task published *after* the plan
        // was pinned (and not in it) is missed even though the worker could
        // reach it, which is exactly FTA's weakness versus DTA.
        let stream = vec![
            worker(0.0, 0.0, 0.0, 100.0, 5.0),
            task(1.0, 0.0, 1.0, 50.0),
            task(-1.0, 0.0, 30.0, 90.0),
        ];
        let fta = runner(PolicyKind::Fta).run(&stream, &[]);
        let dta = runner(PolicyKind::Dta).run(&stream, &[]);
        assert!(dta.assigned_tasks >= fta.assigned_tasks);
    }

    #[test]
    fn expired_tasks_are_never_served() {
        let stream = vec![
            worker(0.0, 0.0, 0.0, 100.0, 5.0),
            task(4.0, 0.0, 1.0, 2.0), // expires before the worker can arrive
        ];
        let outcome = runner(PolicyKind::Dta).run(&stream, &[]);
        assert_eq!(outcome.assigned_tasks, 0);
    }

    #[test]
    fn workers_respect_their_availability_window() {
        let stream = vec![
            worker(0.0, 0.0, 0.0, 1.5, 5.0), // goes offline at t=1.5
            task(3.0, 0.0, 1.0, 50.0),       // 3 s away
        ];
        let outcome = runner(PolicyKind::Dta).run(&stream, &[]);
        assert_eq!(outcome.assigned_tasks, 0);
    }

    #[test]
    fn prediction_lets_dta_tp_position_for_future_tasks() {
        // One worker, one real task to the east, and a predicted task further
        // east. Prediction does not change the count here (only one real task
        // exists), but the run must remain feasible and count only real tasks.
        let stream = vec![
            worker(0.0, 0.0, 0.0, 100.0, 10.0),
            task(1.0, 0.0, 1.0, 50.0),
        ];
        let predicted = vec![PredictedTaskInput {
            location: Location::new(2.0, 0.0),
            publication: Timestamp(5.0),
            expiration: Timestamp(80.0),
        }];
        let outcome = runner(PolicyKind::DtaTp).run(&stream, &predicted);
        assert_eq!(outcome.assigned_tasks, 1, "only real tasks count");
    }

    #[test]
    fn data_wa_runs_with_a_trained_tvf() {
        let tvf = TaskValueFunction::new(8, 0);
        let r = runner(PolicyKind::DataWa).with_tvf(tvf);
        let outcome = r.run(&simple_stream(), &[]);
        // Even an untrained TVF must yield a feasible (if suboptimal) run.
        assert!(outcome.assigned_tasks <= 2);
        assert!(outcome.planning_calls > 0);
    }

    #[test]
    #[should_panic(expected = "requires a trained TVF")]
    fn data_wa_without_tvf_panics() {
        let _ = runner(PolicyKind::DataWa).run(&simple_stream(), &[]);
    }

    #[test]
    fn policy_kind_metadata() {
        assert_eq!(PolicyKind::all().len(), 5);
        assert!(PolicyKind::DataWa.uses_prediction());
        assert!(!PolicyKind::Dta.uses_prediction());
        assert!(!PolicyKind::Fta.replans());
        assert!(PolicyKind::Greedy.replans());
        assert_eq!(PolicyKind::DtaTp.name(), "DTA+TP");
    }
}
