//! Grid-bucketed spatial index for range queries.
//!
//! The assignment component repeatedly asks "which open tasks lie within a
//! worker's reachable distance?" (§IV-A.1). A uniform-grid bucket index makes
//! that query proportional to the number of candidate cells instead of the
//! total task count, which is what keeps the per-instance CPU cost of the
//! adaptive algorithm flat as |S| grows (Fig. 7b/7d).

use crate::grid::{CellId, UniformGrid};
use datawa_core::Location;

/// A point index over items of type `T` keyed by their location.
///
/// Items are bucketed by grid cell; queries return item references after an
/// exact distance check. Items can be added and lazily removed (tombstoned)
/// which matches the streaming simulator's task lifecycle.
#[derive(Debug, Clone)]
pub struct SpatialIndex<T> {
    grid: UniformGrid,
    buckets: Vec<Vec<Entry<T>>>,
    live: usize,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    location: Location,
    item: T,
    alive: bool,
}

impl<T: Clone + PartialEq> SpatialIndex<T> {
    /// Creates an empty index over `grid`.
    pub fn new(grid: UniformGrid) -> SpatialIndex<T> {
        let buckets = vec![Vec::new(); grid.cell_count()];
        SpatialIndex {
            grid,
            buckets,
            live: 0,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the index holds no live items.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts an item at `location`, returning the cell it was bucketed into.
    pub fn insert(&mut self, location: Location, item: T) -> CellId {
        let cell = self.grid.cell_of(&location);
        self.buckets[cell.index()].push(Entry {
            location,
            item,
            alive: true,
        });
        self.live += 1;
        cell
    }

    /// Removes (tombstones) the first live occurrence of `item` located at
    /// `location`. Returns whether something was removed.
    pub fn remove(&mut self, location: &Location, item: &T) -> bool {
        let cell = self.grid.cell_of(location);
        for entry in &mut self.buckets[cell.index()] {
            if entry.alive && &entry.item == item {
                entry.alive = false;
                self.live -= 1;
                return true;
            }
        }
        false
    }

    /// Compacts the buckets, dropping tombstoned entries. Useful after a burst
    /// of expirations so later queries do not skip dead entries.
    pub fn compact(&mut self) {
        for bucket in &mut self.buckets {
            bucket.retain(|e| e.alive);
        }
    }

    /// All live items within Euclidean distance `radius` of `center`.
    pub fn within_radius(&self, center: &Location, radius: f64) -> Vec<&T> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        for cell in self.grid.cells_within_radius(center, radius) {
            for entry in &self.buckets[cell.index()] {
                if entry.alive && entry.location.euclidean_sq(center) <= r2 {
                    out.push(&entry.item);
                }
            }
        }
        out
    }

    /// All live items within `radius` of `center`, together with their exact
    /// distances, sorted by ascending distance.
    pub fn nearest_within(&self, center: &Location, radius: f64) -> Vec<(&T, f64)> {
        let mut out: Vec<(&T, f64)> = Vec::new();
        let r2 = radius * radius;
        for cell in self.grid.cells_within_radius(center, radius) {
            for entry in &self.buckets[cell.index()] {
                if !entry.alive {
                    continue;
                }
                let d2 = entry.location.euclidean_sq(center);
                if d2 <= r2 {
                    out.push((&entry.item, d2.sqrt()));
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }

    /// All live items in a given cell.
    pub fn items_in_cell(&self, cell: CellId) -> Vec<&T> {
        self.buckets[cell.index()]
            .iter()
            .filter(|e| e.alive)
            .map(|e| &e.item)
            .collect()
    }

    /// Iterates over all live `(location, item)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Location, &T)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter())
            .filter(|e| e.alive)
            .map(|e| (&e.location, &e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use datawa_core::location::BoundingBox;

    fn index() -> SpatialIndex<u32> {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(10.0, 10.0));
        SpatialIndex::new(UniformGrid::new(GridSpec::new(area, 10, 10)))
    }

    #[test]
    fn insert_and_query_within_radius() {
        let mut idx = index();
        idx.insert(Location::new(1.0, 1.0), 1);
        idx.insert(Location::new(2.0, 2.0), 2);
        idx.insert(Location::new(9.0, 9.0), 3);
        let near = idx.within_radius(&Location::new(1.5, 1.5), 1.0);
        assert_eq!(near.len(), 2);
        assert!(near.contains(&&1) && near.contains(&&2));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn remove_tombstones_items() {
        let mut idx = index();
        idx.insert(Location::new(1.0, 1.0), 7);
        assert!(idx.remove(&Location::new(1.0, 1.0), &7));
        assert!(!idx.remove(&Location::new(1.0, 1.0), &7));
        assert!(idx.within_radius(&Location::new(1.0, 1.0), 0.5).is_empty());
        assert!(idx.is_empty());
        idx.compact();
        assert_eq!(
            idx.items_in_cell(idx.grid().cell_of(&Location::new(1.0, 1.0)))
                .len(),
            0
        );
    }

    #[test]
    fn nearest_within_sorts_by_distance() {
        let mut idx = index();
        idx.insert(Location::new(5.0, 5.0), 0);
        idx.insert(Location::new(6.0, 5.0), 1);
        idx.insert(Location::new(7.5, 5.0), 2);
        let res = idx.nearest_within(&Location::new(5.0, 5.0), 3.0);
        let ids: Vec<u32> = res.iter().map(|(i, _)| **i).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(res[1].1 > res[0].1 && res[2].1 > res[1].1);
    }

    #[test]
    fn radius_query_matches_brute_force() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = index();
        let mut points = Vec::new();
        for i in 0..500u32 {
            let p = Location::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
            points.push((p, i));
            idx.insert(p, i);
        }
        for _ in 0..20 {
            let center = Location::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
            let radius = rng.gen_range(0.1..4.0);
            let mut expected: Vec<u32> = points
                .iter()
                .filter(|(p, _)| p.euclidean(&center) <= radius)
                .map(|(_, i)| *i)
                .collect();
            let mut got: Vec<u32> = idx
                .within_radius(&center, radius)
                .into_iter()
                .copied()
                .collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(expected, got);
        }
    }

    #[test]
    fn items_in_cell_only_returns_that_cell() {
        let mut idx = index();
        idx.insert(Location::new(0.5, 0.5), 1);
        idx.insert(Location::new(9.5, 9.5), 2);
        let cell = idx.grid().cell_of(&Location::new(0.5, 0.5));
        assert_eq!(idx.items_in_cell(cell), vec![&1]);
    }
}
