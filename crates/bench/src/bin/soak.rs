//! Million-event soak harness: drives live sessions over every built-in
//! scenario generator at several planner thread counts, with the
//! observability layer attached, and writes a `BENCH_<tag>.json` report.
//!
//! Each (scenario × thread-count) combination repeatedly generates a
//! reseeded workload and pumps it through a fresh [`Session`] until the
//! cumulative processed-event count reaches the per-run target, so memory
//! stays bounded no matter how large the target is. Metrics accumulate in
//! one registry per combination: replan latency percentiles come from the
//! `assign.replan_seconds` histogram, partition stats from the assign-layer
//! gauges, queue depth from the stream-layer gauge, and the memory
//! high-water from a counting global allocator.
//!
//! ```text
//! soak [--events N] [--threads 1,2,4,8] [--tag 6] [--out DIR] [--policy dta]
//! ```
//!
//! The report is self-validated before the final `soak_ok=1` line: the file
//! is parsed back and every run must show a finite, nonzero replan p99.

use datawa_assign::{AdaptiveRunner, AssignConfig, ForecastProvider, PolicyKind, StaticForecast};
use datawa_core::{BoundingBox, Location, Timestamp};
use datawa_geo::{GridSpec, UniformGrid};
use datawa_obs::{CountingAlloc, JsonValue, MetricsRegistry};
use datawa_predict::{DdgnnPredictor, OnlineForecastConfig, OnlineForecaster, SeriesSpec};
use datawa_service::{IngestSource, SourcePoll, WorkloadSource};
use datawa_stream::{builtin_scenarios, EngineConfig, NullSink, ScenarioSpec, Session};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const NS_PER_MS: f64 = 1_000_000.0;

struct Args {
    /// Processed-event target per (scenario × threads) run.
    events: usize,
    threads: Vec<usize>,
    tag: String,
    out_dir: String,
    policy: PolicyKind,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            events: 1_000_000,
            threads: vec![1, 2, 4, 8],
            tag: "soak".to_string(),
            out_dir: ".".to_string(),
            policy: PolicyKind::Dta,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--events" => args.events = value().parse().expect("--events takes a number"),
                "--threads" => {
                    args.threads = value()
                        .split(',')
                        .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4"))
                        .collect();
                }
                "--tag" => args.tag = value(),
                "--out" => args.out_dir = value(),
                "--policy" => {
                    let name = value().to_ascii_lowercase();
                    args.policy = PolicyKind::all()
                        .iter()
                        .copied()
                        .find(|p| p.name().to_ascii_lowercase() == name)
                        .unwrap_or_else(|| panic!("unknown policy {name}"));
                }
                other => panic!("unknown flag {other}"),
            }
        }
        assert!(args.events > 0, "--events must be positive");
        assert!(!args.threads.is_empty(), "--threads must not be empty");
        args
    }
}

/// Per-session workload shape: small enough that open tasks and available
/// workers stay in the low hundreds (keeping per-event cost flat on one
/// core), large enough that a session is ~50k processed events.
fn session_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::small()
        .with_tasks(20_000)
        .with_workers(1_500)
        .with_horizon(40_000.0)
        .with_seed(seed)
}

struct ComboOutcome {
    sessions: usize,
    events: usize,
    arrivals: usize,
    assigned_tasks: usize,
    planning_calls: usize,
    wall_seconds: f64,
}

/// Pumps reseeded sessions of `scenario_index` through `runner` until
/// `target_events` lifecycle events have been processed. Each session gets
/// a fresh forecast provider from `make_forecast` (seeded like the
/// workload), so online providers start cold per session just like the
/// session's own state does.
fn soak_combo<F: ForecastProvider>(
    scenario_index: usize,
    runner: &AdaptiveRunner,
    target_events: usize,
    make_forecast: impl Fn(u64) -> F,
) -> ComboOutcome {
    let mut outcome = ComboOutcome {
        sessions: 0,
        events: 0,
        arrivals: 0,
        assigned_tasks: 0,
        planning_calls: 0,
        wall_seconds: 0.0,
    };
    while outcome.events < target_events {
        let seed = 1000 + outcome.sessions as u64;
        let workload = builtin_scenarios(session_spec(seed))
            .swap_remove(scenario_index)
            .generate();
        let mut forecast = make_forecast(seed);
        let mut sink = NullSink;
        #[allow(clippy::disallowed_methods)] // throughput measurement is this binary's purpose
        let started = Instant::now();
        let mut session = Session::open(runner, &mut forecast, EngineConfig::batched(64));
        let mut source = WorkloadSource::new(&workload);
        while let SourcePoll::Ready(time, event) = source.poll() {
            session
                .ingest(time, event)
                .expect("replay times are finite");
            session.advance_to(time, &mut sink);
        }
        let closed = session.close(&mut sink);
        outcome.wall_seconds += started.elapsed().as_secs_f64();
        outcome.sessions += 1;
        outcome.events += closed.stats.events_processed;
        outcome.arrivals += closed.stats.arrivals;
        outcome.assigned_tasks += closed.run.assigned_tasks;
        outcome.planning_calls += closed.run.planning_calls;
    }
    outcome
}

fn histogram_ms(snapshot: &datawa_obs::MetricsSnapshot, name: &str) -> JsonValue {
    let summary = snapshot.histograms.get(name).copied().unwrap_or_default();
    let ms = |ns: u64| JsonValue::from_f64(ns as f64 / NS_PER_MS);
    JsonValue::object(vec![
        ("count".into(), JsonValue::from_u64(summary.count)),
        ("p50_ms".into(), ms(summary.p50)),
        ("p95_ms".into(), ms(summary.p95)),
        ("p99_ms".into(), ms(summary.p99)),
        ("max_ms".into(), ms(summary.max)),
        (
            "mean_ms".into(),
            JsonValue::from_f64(summary.mean() / NS_PER_MS),
        ),
    ])
}

fn gauge_high_water(snapshot: &datawa_obs::MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .gauges
        .get(name)
        .map(|g| g.high_water.max(0) as u64)
        .unwrap_or(0)
}

fn counter(snapshot: &datawa_obs::MetricsSnapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

/// One `runs[]` entry of the report. `forecast_kind` is `"static"` for the
/// grid runs and `"online"` for the DDGNN-backed extra run; comparison
/// tooling keys on it to avoid mixing the two populations.
fn run_row(
    scenario: &str,
    threads: usize,
    forecast_kind: &str,
    outcome: &ComboOutcome,
    snapshot: &datawa_obs::MetricsSnapshot,
    allocations_before: usize,
) -> JsonValue {
    let events_per_sec = outcome.events as f64 / outcome.wall_seconds.max(1e-9);
    let reused = counter(snapshot, "assign.partitions_reused");
    let recomputed = counter(snapshot, "assign.partitions_recomputed");
    let cache_hit_pct = if reused + recomputed > 0 {
        100.0 * reused as f64 / (reused + recomputed) as f64
    } else {
        0.0
    };
    JsonValue::object(vec![
        ("scenario".into(), JsonValue::string(scenario)),
        ("threads".into(), JsonValue::from_u64(threads as u64)),
        ("forecast".into(), JsonValue::string(forecast_kind)),
        (
            "sessions".into(),
            JsonValue::from_u64(outcome.sessions as u64),
        ),
        ("events".into(), JsonValue::from_u64(outcome.events as u64)),
        (
            "arrivals".into(),
            JsonValue::from_u64(outcome.arrivals as u64),
        ),
        (
            "assigned_tasks".into(),
            JsonValue::from_u64(outcome.assigned_tasks as u64),
        ),
        (
            "planning_calls".into(),
            JsonValue::from_u64(outcome.planning_calls as u64),
        ),
        (
            "wall_seconds".into(),
            JsonValue::from_f64(outcome.wall_seconds),
        ),
        ("events_per_sec".into(), JsonValue::from_f64(events_per_sec)),
        (
            "replan".into(),
            histogram_ms(snapshot, "assign.replan_seconds"),
        ),
        ("partitions_reused".into(), JsonValue::from_u64(reused)),
        (
            "partitions_recomputed".into(),
            JsonValue::from_u64(recomputed),
        ),
        ("cache_hit_pct".into(), JsonValue::from_f64(cache_hit_pct)),
        (
            "forecast_queries".into(),
            JsonValue::from_u64(gauge_high_water(snapshot, "forecast.queries")),
        ),
        (
            "forecast_refreshes".into(),
            JsonValue::from_u64(gauge_high_water(snapshot, "forecast.refreshes")),
        ),
        (
            "partitions_peak".into(),
            JsonValue::from_u64(gauge_high_water(snapshot, "assign.partitions")),
        ),
        (
            "max_partition_workers".into(),
            JsonValue::from_u64(gauge_high_water(snapshot, "assign.partition_workers")),
        ),
        (
            "pool_occupancy_peak".into(),
            JsonValue::from_u64(gauge_high_water(snapshot, "assign.pool_occupancy")),
        ),
        (
            "search_nodes".into(),
            JsonValue::from_u64(counter(snapshot, "assign.search_nodes")),
        ),
        (
            "queue_depth_high_water".into(),
            JsonValue::from_u64(gauge_high_water(snapshot, "stream.queue_depth")),
        ),
        (
            "mem_high_water_bytes".into(),
            JsonValue::from_u64(ALLOC.high_water_bytes() as u64),
        ),
        (
            "allocations".into(),
            JsonValue::from_u64((ALLOC.allocation_count() - allocations_before) as u64),
        ),
        ("metrics".into(), snapshot.to_json_value()),
    ])
}

/// A cold, untrained DDGNN-backed [`OnlineForecaster`] over a 4x4 grid of
/// the session area. The model learns nothing useful at soak scale — that
/// is fine: the point is to exercise the query/refresh path (and the plan
/// cache's forecast-epoch invalidation) end to end, not to predict well.
fn online_forecaster(seed: u64) -> OnlineForecaster {
    let spec = session_spec(seed);
    let grid = UniformGrid::new(GridSpec::new(
        BoundingBox::new(
            Location::new(0.0, 0.0),
            Location::new(spec.area_km, spec.area_km),
        ),
        4,
        4,
    ));
    let model = DdgnnPredictor::with_defaults(grid.cell_count(), 3, seed);
    OnlineForecaster::new(
        Box::new(model),
        grid,
        SeriesSpec::new(Timestamp(0.0), 10.0, 3, 4),
        OnlineForecastConfig {
            threshold: 0.6,
            valid_time: spec.valid_time,
            refresh_every: 30.0,
        },
    )
}

fn main() {
    let args = Args::parse();
    let scenario_names: Vec<&'static str> = builtin_scenarios(ScenarioSpec::small())
        .iter()
        .map(|s| s.name())
        .collect();

    let mut runs = Vec::new();
    for (scenario_index, scenario) in scenario_names.iter().enumerate() {
        for &threads in &args.threads {
            ALLOC.reset_high_water();
            let allocations_before = ALLOC.allocation_count();
            let registry = MetricsRegistry::new();
            let config = AssignConfig {
                threads,
                ..AssignConfig::default()
            };
            let runner = AdaptiveRunner::new(config, args.policy).with_metrics(registry.clone());
            let outcome = soak_combo(scenario_index, &runner, args.events, |_| {
                StaticForecast::default()
            });
            let snapshot = registry.snapshot();
            eprintln!(
                "soak: {scenario} threads={threads} events={} sessions={} \
                 {:.0} events/sec",
                outcome.events,
                outcome.sessions,
                outcome.events as f64 / outcome.wall_seconds.max(1e-9)
            );
            runs.push(run_row(
                scenario,
                threads,
                "static",
                &outcome,
                &snapshot,
                allocations_before,
            ));
        }
    }

    // One extra run through a live [`OnlineForecaster`]: BENCH_6 showed
    // `forecast.queries = 0` across the whole grid (the static provider is
    // never asked anything by the blind DTA policy), so the plan cache's
    // forecast-epoch invalidation was a soak blind spot. DTA+TP over a cold
    // DDGNN on hotspot-drift queries and refreshes the model for real. The
    // event target is a tenth of the grid runs' — the online model makes
    // this path ~10x slower per event and the point is coverage, not
    // throughput numbers (comparison tooling skips `forecast: "online"`
    // rows).
    {
        let scenario_index = scenario_names
            .iter()
            .position(|s| *s == "hotspot-drift")
            .expect("hotspot-drift is a built-in scenario");
        let threads = args.threads[0];
        let online_events = (args.events / 10).max(10_000);
        ALLOC.reset_high_water();
        let allocations_before = ALLOC.allocation_count();
        let registry = MetricsRegistry::new();
        let config = AssignConfig {
            threads,
            ..AssignConfig::default()
        };
        let runner = AdaptiveRunner::new(config, PolicyKind::DtaTp).with_metrics(registry.clone());
        let outcome = soak_combo(scenario_index, &runner, online_events, online_forecaster);
        let snapshot = registry.snapshot();
        eprintln!(
            "soak: hotspot-drift threads={threads} forecast=online events={} sessions={} \
             {:.0} events/sec",
            outcome.events,
            outcome.sessions,
            outcome.events as f64 / outcome.wall_seconds.max(1e-9)
        );
        runs.push(run_row(
            "hotspot-drift",
            threads,
            "online",
            &outcome,
            &snapshot,
            allocations_before,
        ));
    }

    let report = JsonValue::object(vec![
        ("bench".into(), JsonValue::string("soak")),
        ("tag".into(), JsonValue::string(args.tag.clone())),
        ("policy".into(), JsonValue::string(args.policy.name())),
        (
            "target_events_per_run".into(),
            JsonValue::from_u64(args.events as u64),
        ),
        (
            "threads".into(),
            JsonValue::Arr(
                args.threads
                    .iter()
                    .map(|&t| JsonValue::from_u64(t as u64))
                    .collect(),
            ),
        ),
        (
            "scenarios".into(),
            JsonValue::Arr(
                scenario_names
                    .iter()
                    .map(|s| JsonValue::string(*s))
                    .collect(),
            ),
        ),
        ("runs".into(), JsonValue::Arr(runs)),
    ]);

    let path = format!("{}/BENCH_{}.json", args.out_dir, args.tag);
    if let Err(e) = std::fs::write(&path, report.render()) {
        eprintln!("soak: cannot write {path}: {e} (does --out-dir exist and allow writes?)");
        std::process::exit(2);
    }

    // Self-validation: parse the file back and check the invariants the CI
    // smoke job greps for.
    let reread = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("soak: cannot reread {path}: {e}");
        std::process::exit(2);
    });
    let parsed = JsonValue::parse(&reread).unwrap_or_else(|e| {
        eprintln!("soak: {path} failed to parse back ({e:?}) — report renderer bug");
        std::process::exit(2);
    });
    let runs = parsed
        .get("runs")
        .unwrap_or_else(|| {
            eprintln!("soak: {path} has no `runs` key — report renderer bug");
            std::process::exit(2);
        })
        .items();
    assert_eq!(
        runs.len(),
        scenario_names.len() * args.threads.len() + 1,
        "one run per scenario x thread count, plus the online-forecast run"
    );
    for run in runs {
        let online = run.get("forecast").and_then(JsonValue::as_str) == Some("online");
        let target = if online {
            (args.events / 10).max(10_000)
        } else {
            args.events
        };
        let events = run
            .get("events")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| {
                eprintln!("soak: {path}: run missing numeric `events` — report renderer bug");
                std::process::exit(2);
            });
        assert!(events as usize >= target, "run under event target");
        let p99 = run
            .get("replan")
            .and_then(|r| r.get("p99_ms"))
            .and_then(JsonValue::as_f64)
            .expect("replan p99 present");
        assert!(
            p99.is_finite() && p99 > 0.0,
            "replan p99 must be finite and nonzero"
        );
        if online {
            let missing = |name: &str| -> u64 {
                eprintln!(
                    "soak: {path}: online run missing numeric `{name}` — report renderer bug"
                );
                std::process::exit(2);
            };
            let queries = run
                .get("forecast_queries")
                .and_then(JsonValue::as_u64)
                .unwrap_or_else(|| missing("forecast_queries"));
            let refreshes = run
                .get("forecast_refreshes")
                .and_then(JsonValue::as_u64)
                .unwrap_or_else(|| missing("forecast_refreshes"));
            assert!(queries > 0, "online run must query the forecaster");
            assert!(refreshes > 0, "online run must re-forecast");
        }
    }
    println!("wrote {path} ({} runs)", runs.len());
    println!("soak_ok=1");
}
