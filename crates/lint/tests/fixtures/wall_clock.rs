// Fixture: wall-clock-in-hot-path plus the missing-suppression-reason
// meta-lint. Scanned with `--context assign` (not a wall-clock-exempt
// crate); never compiled.

fn positive_instant() {
    let start = Instant::now();
    drop(start);
}

fn positive_system_time() {
    let t = SystemTime::now();
    drop(t);
}

fn suppressed_with_reason() {
    // datawa-lint: allow(wall-clock-in-hot-path) -- fixture: feeds a report metric only
    let start = Instant::now();
    drop(start);
}

fn suppressed_without_reason() {
    // datawa-lint: allow(wall-clock-in-hot-path)
    let start = Instant::now();
    drop(start);
}
