//! Planar locations and distance metrics.
//!
//! The paper works over a city-scale study area (Chengdu) which it partitions
//! into uniform grid cells; workers have a reachable distance expressed in
//! kilometres. We model locations as points in a planar coordinate system
//! whose unit is the kilometre (the running example of Fig. 1 uses abstract
//! units, which is also fine — all algorithms are unit-agnostic as long as
//! locations, reachable distances and travel speeds agree).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the planar study area. Coordinates are kilometres by convention.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Location {
    /// East–west coordinate.
    pub x: f64,
    /// North–south coordinate.
    pub y: f64,
}

impl Location {
    /// The origin of the study area.
    pub const ORIGIN: Location = Location { x: 0.0, y: 0.0 };

    /// Creates a location from its two coordinates.
    #[inline]
    pub fn new(x: f64, y: f64) -> Location {
        Location { x, y }
    }

    /// Euclidean (L2) distance to `other`.
    #[inline]
    pub fn euclidean(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Manhattan (L1) distance to `other`. Useful as a crude road-network
    /// proxy for grid-like street layouts.
    #[inline]
    pub fn manhattan(&self, other: &Location) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Squared Euclidean distance; avoids the square root when only comparing
    /// distances (e.g. nearest-neighbour pruning in the spatial grid).
    #[inline]
    pub fn euclidean_sq(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance to `other`.
    #[inline]
    pub fn chebyshev(&self, other: &Location) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Location) -> Location {
        Location::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// Used by the simulator to place a worker part-way through a leg when a
    /// re-planning event interrupts travel.
    #[inline]
    pub fn lerp(&self, other: &Location, t: f64) -> Location {
        Location::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Whether both coordinates are finite (not NaN / infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// An axis-aligned rectangle describing the study area.
///
/// The grid substrate (`datawa-geo`) partitions a bounding box into uniform
/// cells; workload generators sample task and worker locations inside one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner (south-west).
    pub min: Location,
    /// Maximum corner (north-east).
    pub max: Location,
}

impl BoundingBox {
    /// Creates a bounding box from two opposite corners, normalising the
    /// corner order.
    pub fn new(a: Location, b: Location) -> BoundingBox {
        BoundingBox {
            min: Location::new(a.x.min(b.x), a.y.min(b.y)),
            max: Location::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Width (x extent) of the box.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent) of the box.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether the point lies inside the box (inclusive on all edges).
    #[inline]
    pub fn contains(&self, p: &Location) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point into the box.
    pub fn clamp(&self, p: &Location) -> Location {
        Location::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Centre of the box.
    #[inline]
    pub fn center(&self) -> Location {
        self.min.midpoint(&self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance_matches_hand_computation() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert!((a.euclidean(&b) - 5.0).abs() < 1e-12);
        assert!((a.euclidean_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = Location::new(1.0, 2.0);
        let b = Location::new(4.0, -2.0);
        assert!((a.manhattan(&b) - 7.0).abs() < 1e-12);
        assert!((a.chebyshev(&b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), a.midpoint(&b));
    }

    #[test]
    fn bounding_box_normalises_corners_and_contains() {
        let bb = BoundingBox::new(Location::new(5.0, 1.0), Location::new(1.0, 5.0));
        assert_eq!(bb.min, Location::new(1.0, 1.0));
        assert_eq!(bb.max, Location::new(5.0, 5.0));
        assert!(bb.contains(&Location::new(3.0, 3.0)));
        assert!(!bb.contains(&Location::new(0.0, 3.0)));
        assert_eq!(bb.clamp(&Location::new(0.0, 10.0)), Location::new(1.0, 5.0));
        assert!((bb.area() - 16.0).abs() < 1e-12);
    }
}
