//! Regenerates Fig. 9: task assignment vs reachable distance d (km) — number of assigned
//! tasks and CPU time per time instance for Greedy, FTA, DTA, DTA+TP and
//! DATA-WA, on both datasets. The sweep is driven by the `datawa-stream`
//! discrete-event engine in replay-compatible mode (`DATAWA_REPLAN` /
//! `DATAWA_REPLAN_DT` select event- or time-batched re-planning).

use datawa_experiments::{
    assignment_sweep, format_table, Dataset, ExperimentScale, SweepAxis, Table,
};

fn main() {
    let scale = ExperimentScale::from_env();
    let config = datawa_experiments::params::pipeline_config_from_env();
    for dataset in [Dataset::Yueche, Dataset::Didi] {
        let axis = SweepAxis::ReachableDistance(
            datawa_experiments::params::REACHABLE_DISTANCE_SWEEP.to_vec(),
        );
        let rows = assignment_sweep(dataset, axis, scale, &config);
        let mut table = Table::new(vec![
            "reachable distance d (km)",
            "Method",
            "Assigned tasks",
            "CPU time (s)",
            "Events",
        ]);
        for r in &rows {
            table.push_row(vec![
                r.value.clone(),
                r.policy.clone(),
                r.assigned_tasks.to_string(),
                format!("{:.4}", r.cpu_seconds),
                r.events.to_string(),
            ]);
        }
        println!("Fig. 9 — effect of reachable distance d (km) on {} (scale {:.3}, datawa-stream engine)\n", dataset.name(), scale.factor);
        println!("{}", format_table(&table));
    }
}
