//! The threaded TCP acceptor: many concurrent client connections, one
//! dispatch session per tenant, admission control in front of the pump.
//!
//! ## Threads
//!
//! * **Acceptor** — blocks on `accept`, enforces the global connection cap
//!   (over-cap connections get a [`Frame::RetryAfter`] and are closed), and
//!   spawns one *connection* thread per accepted socket.
//! * **Connection (reader)** — performs the `Hello` handshake, registers
//!   the tenant (one live connection per tenant name), then decodes frames
//!   and applies admission control before pushing events into the tenant's
//!   [`NetSource`]. Protocol violations answer with a typed
//!   [`Frame::Error`] and close *this* connection only — a misbehaving
//!   client can never stall another tenant's session.
//! * **Pump** — one per tenant connection: owns the tenant's
//!   [`AdaptiveRunner`] and [`DispatchService`] and blocks on the
//!   `NetSource` channel, streaming every [`Decision`] back to the owning
//!   socket through a routing `FrameSink`. Ends by writing the session
//!   totals as a [`Frame::Closed`].
//!
//! ## Admission control
//!
//! Three layers, all answering with retry-after frames instead of silently
//! dropping (the refused event is *not* ingested; the client owns the
//! retry):
//!
//! 1. **Connection cap** (`max_connections`) at accept time.
//! 2. **Global backlog cap** (`global_pending_cap`): when the sum of all
//!    tenants' un-pumped backlogs exceeds it, the *stalest* tenant (oldest
//!    live connection) is shed — its ingests are refused with
//!    [`RetryReason::GlobalOverload`] until pressure clears.
//! 3. **Per-tenant quota** (`tenant_pending_quota`): a tenant whose own
//!    backlog exceeds its quota is refused with
//!    [`RetryReason::TenantQuota`].
//!
//! Below all of that, each session still runs the service layer's bounded
//! backlog (`ServiceConfig::max_pending`), so an admitted burst drains
//! through the engine exactly like any other `DispatchService` run.

use crate::wire::{read_frame, write_frame, ErrorCode, Frame, RetryReason, WireError};
use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast, TaskValueFunction};
use datawa_obs::{Counter, Histogram, MetricsRegistry};
use datawa_service::{DispatchService, NetSource, NetSourceHandle, ServiceConfig};
use datawa_stream::{Decision, DecisionSink};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration: which policy tenants run, and where the admission
/// limits sit.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Assignment policy every tenant session runs.
    pub policy: PolicyKind,
    /// Planner configuration (thread pool, travel model, …).
    pub assign: AssignConfig,
    /// Per-session service behaviour (engine config, bounded backlog).
    pub service: ServiceConfig,
    /// Shared-secret token `Hello` frames must carry; `None` disables auth.
    pub auth_token: Option<String>,
    /// Global cap on concurrently served connections.
    pub max_connections: usize,
    /// Per-tenant bound on events pushed but not yet pumped.
    pub tenant_pending_quota: usize,
    /// Server-wide bound on the summed backlog before the stalest tenant is
    /// shed.
    pub global_pending_cap: usize,
    /// Backoff carried in retry-after frames, in seconds.
    pub retry_after_secs: f64,
    /// Hidden width of the per-tenant Task Value Function (DATA-WA only).
    pub tvf_hidden: usize,
    /// Seed for the per-tenant TVF weights. Every tenant pump builds its TVF
    /// from `(tvf_hidden, tvf_seed)`, so a direct run constructed with
    /// `TaskValueFunction::new(tvf_hidden, tvf_seed)` is bit-identical.
    pub tvf_seed: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            policy: PolicyKind::Greedy,
            assign: AssignConfig::default(),
            service: ServiceConfig::default(),
            auth_token: None,
            max_connections: 64,
            tenant_pending_quota: 1024,
            global_pending_cap: 8192,
            retry_after_secs: 0.05,
            tvf_hidden: 8,
            tvf_seed: 0,
        }
    }
}

/// Admission-control state of one live tenant connection.
struct TenantSlot {
    /// A clone of the tenant's source handle — `pending()` is the tenant's
    /// un-pumped backlog, which the global-pressure sum reads.
    handle: NetSourceHandle,
    /// Set when the global cap shed this tenant; cleared by its own reader
    /// once pressure drops back under the cap.
    shed: Arc<AtomicBool>,
    /// Connection sequence number — lower = older = first to be shed.
    seq: u64,
}

/// State shared by the acceptor and every connection/pump thread.
struct Shared {
    cfg: NetConfig,
    obs: MetricsRegistry,
    live_connections: AtomicUsize,
    conn_seq: AtomicU64,
    tenants: Mutex<BTreeMap<String, TenantSlot>>,
    stop: AtomicBool,
}

impl Shared {
    /// Summed un-pumped backlog across every live tenant.
    fn global_pending(&self) -> usize {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        tenants.values().map(|t| t.handle.pending()).sum()
    }

    /// Marks the stalest (oldest-connection) un-shed tenant for shedding.
    fn shed_stalest(&self) {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        if tenants.values().any(|t| t.shed.load(Ordering::SeqCst)) {
            return; // one sacrifice at a time; re-evaluated as pressure persists
        }
        if let Some(stalest) = tenants.values().min_by_key(|t| t.seq) {
            stalest.shed.store(true, Ordering::SeqCst);
        }
    }
}

/// Handles to the obs counters a connection touches per frame.
struct ConnMetrics {
    frames_in: Counter,
    frames_out: Counter,
    rejected: Counter,
    ingest_seconds: Histogram,
    tenant_frames_in: Counter,
    tenant_rejected: Counter,
}

impl ConnMetrics {
    fn for_tenant(obs: &MetricsRegistry, tenant: &str) -> ConnMetrics {
        ConnMetrics {
            frames_in: obs.counter("net.frames_in"),
            frames_out: obs.counter("net.frames_out"),
            rejected: obs.counter("net.rejected_admission"),
            ingest_seconds: obs.histogram("net.ingest_seconds"),
            tenant_frames_in: obs.counter(&format!("net.tenant.{tenant}.frames_in")),
            tenant_rejected: obs.counter(&format!("net.tenant.{tenant}.rejected")),
        }
    }
}

/// The socket's write half, shared between the reader (errors, retry-afters)
/// and the pump's sink (decisions), so frames never interleave mid-frame.
type SharedWriter = Arc<Mutex<TcpStream>>;

/// Every spawned connection thread plus a clone of its socket's read half,
/// kept so [`NetServer::shutdown`] can unblock a parked reader and join it.
type WorkerList = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// Writes one frame, counting it; write failures (client already gone) are
/// reported but must not kill the session — the pump still drains and the
/// totals still land in the obs registry.
fn send(writer: &SharedWriter, frames_out: &Counter, frame: &Frame) -> bool {
    let mut stream = writer.lock().expect("connection writer poisoned");
    let ok = write_frame(&mut *stream, frame).is_ok();
    if ok {
        frames_out.inc();
    }
    ok
}

/// The routing [`DecisionSink`]: encodes every decision of one tenant's
/// session as a frame on that tenant's own connection.
struct FrameSink {
    writer: SharedWriter,
    frames_out: Counter,
    tenant_decisions: Counter,
    emitted: u64,
    undeliverable: u64,
}

impl DecisionSink for FrameSink {
    fn emit(&mut self, decision: Decision) {
        self.emitted += 1;
        self.tenant_decisions.inc();
        if !send(
            &self.writer,
            &self.frames_out,
            &Frame::from_decision(&decision),
        ) {
            self.undeliverable += 1;
        }
    }
}

/// A running TCP front-end. Bound to a loopback address; dropped or
/// [`shutdown`](NetServer::shutdown) servers join every thread they spawned.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: WorkerList,
}

impl NetServer {
    /// Binds `127.0.0.1:0` (an ephemeral loopback port — this front-end is
    /// CI-testable without real network access) and starts the acceptor.
    pub fn bind(cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            obs: MetricsRegistry::new(),
            live_connections: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
            tenants: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
        });
        let workers: WorkerList = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || accept_loop(&listener, &shared, &workers))
        };
        Ok(NetServer {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability registry (`net.*` counters, per-tenant
    /// counters, the ingest-latency histogram, plus every session's engine
    /// and planner metrics).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.obs
    }

    /// Live connections being served right now.
    pub fn connections(&self) -> usize {
        self.shared.live_connections.load(Ordering::SeqCst)
    }

    /// Stops accepting, unblocks and joins every connection thread, and
    /// joins the acceptor. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for (handle, stream) in workers {
            // Unblocks a reader parked in `read_exact` on a live client.
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, workers: &WorkerList) {
    let connections_gauge = shared.obs.gauge("net.connections");
    let frames_out = shared.obs.counter("net.frames_out");
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.live_connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            // Graceful degradation at the cap: tell the client when to come
            // back instead of silently resetting the connection.
            shared.obs.counter("net.rejected_admission").inc();
            let mut stream = stream;
            if write_frame(
                &mut stream,
                &Frame::RetryAfter {
                    seconds: shared.cfg.retry_after_secs,
                    reason: RetryReason::ConnectionCap,
                },
            )
            .is_ok()
            {
                frames_out.inc();
            }
            // Closing outright can race the client's in-flight Hello: its
            // unread bytes would turn the close into an RST, which may
            // discard the buffered RetryAfter before the client reads it.
            // Instead FIN the write half and drain the client briefly off
            // the acceptor thread, so the frame stays deliverable.
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(1)));
            let _ = stream.shutdown(Shutdown::Write);
            std::thread::spawn(move || {
                let mut sink = [0u8; 256];
                while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
            });
            continue;
        }
        let n = shared.live_connections.fetch_add(1, Ordering::SeqCst) + 1;
        connections_gauge.set(n as i64);
        let read_half = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
        };
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                connection_main(&shared, stream);
                let left = shared.live_connections.fetch_sub(1, Ordering::SeqCst) - 1;
                shared.obs.gauge("net.connections").set(left as i64);
            })
        };
        workers
            .lock()
            .expect("worker list poisoned")
            .push((handle, read_half));
    }
}

/// Reads and validates the handshake. Answers on the socket itself on
/// failure and returns `None` (the connection is then closed).
fn handshake(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &SharedWriter,
    frames_out: &Counter,
) -> Option<String> {
    let refuse = |code, message: &str| {
        send(
            writer,
            frames_out,
            &Frame::Error {
                code,
                message: message.to_string(),
            },
        );
        None
    };
    let frame = match read_frame(reader) {
        Ok(frame) => frame,
        Err(e) if e.is_clean_eof() => return None, // probe connection, no Hello
        Err(_) => return refuse(ErrorCode::BadHello, "first frame was not a Hello"),
    };
    let Frame::Hello {
        version,
        tenant,
        token,
    } = frame
    else {
        return refuse(ErrorCode::BadHello, "first frame was not a Hello");
    };
    if version != crate::wire::PROTOCOL_VERSION {
        return refuse(
            ErrorCode::VersionMismatch,
            &format!(
                "protocol version {version} unsupported (server speaks {})",
                crate::wire::PROTOCOL_VERSION
            ),
        );
    }
    if tenant.is_empty() || tenant.len() > 64 || !tenant.bytes().all(|b| b.is_ascii_graphic()) {
        return refuse(
            ErrorCode::BadHello,
            "tenant name must be 1..=64 printable ASCII bytes",
        );
    }
    if let Some(expected) = &shared.cfg.auth_token {
        if &token != expected {
            return refuse(ErrorCode::AuthFailed, "bad auth token");
        }
    }
    Some(tenant)
}

fn connection_main(shared: &Arc<Shared>, stream: TcpStream) {
    let frames_out = shared.obs.counter("net.frames_out");
    let writer: SharedWriter = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    let Some(tenant) = handshake(shared, &mut reader, &writer, &frames_out) else {
        return;
    };

    // Register the tenant: one live connection per tenant name.
    let (handle, source) = NetSource::channel();
    let seq = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    let shed = Arc::new(AtomicBool::new(false));
    {
        let mut tenants = shared.tenants.lock().expect("tenant registry poisoned");
        if tenants.contains_key(&tenant) {
            send(
                &writer,
                &frames_out,
                &Frame::Error {
                    code: ErrorCode::TenantBusy,
                    message: format!("tenant {tenant} already has a live connection"),
                },
            );
            return;
        }
        tenants.insert(
            tenant.clone(),
            TenantSlot {
                handle: handle.clone(),
                shed: Arc::clone(&shed),
                seq,
            },
        );
    }
    let metrics = ConnMetrics::for_tenant(&shared.obs, &tenant);
    send(
        &writer,
        &frames_out,
        &Frame::HelloAck {
            version: crate::wire::PROTOCOL_VERSION,
        },
    );

    // The pump: this tenant's whole dispatch stack, fed by the channel.
    let pump = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(&writer);
        let sink = FrameSink {
            writer: Arc::clone(&writer),
            frames_out: shared.obs.counter("net.frames_out"),
            tenant_decisions: shared
                .obs
                .counter(&format!("net.tenant.{tenant}.decisions")),
            emitted: 0,
            undeliverable: 0,
        };
        std::thread::spawn(move || {
            let mut runner = AdaptiveRunner::new(shared.cfg.assign, shared.cfg.policy)
                .with_metrics(shared.obs.clone());
            if shared.cfg.policy == PolicyKind::DataWa {
                // with_tvf consumes the TVF and the type is not Clone, so
                // every pump rebuilds it from the shared (hidden, seed) pair
                // — deterministic, hence still bit-equal to a direct run.
                runner = runner.with_tvf(TaskValueFunction::new(
                    shared.cfg.tvf_hidden,
                    shared.cfg.tvf_seed,
                ));
            }
            let mut forecast = StaticForecast::default();
            let service =
                DispatchService::open(&runner, &mut forecast, source, sink, shared.cfg.service);
            let (outcome, _stats, sink) = service.run();
            send(
                &writer,
                &shared.obs.counter("net.frames_out"),
                &Frame::Closed {
                    assigned: outcome.run.assigned_tasks as u64,
                    decisions: sink.emitted,
                    events: outcome.stats.events_processed as u64,
                    planning_calls: outcome.run.planning_calls as u64,
                },
            );
        })
    };

    read_loop(shared, &mut reader, &writer, &handle, &shed, &metrics);

    // End of stream (orderly Close, protocol violation, or disconnect):
    // deregister first — the registry slot holds a sender clone, so the
    // source only exhausts once both it and the reader's handle are gone —
    // then let the pump drain the session and report totals.
    shared
        .tenants
        .lock()
        .expect("tenant registry poisoned")
        .remove(&tenant);
    handle.close();
    let _ = pump.join();
}

/// Decodes frames and applies admission until the stream ends.
fn read_loop(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &SharedWriter,
    handle: &NetSourceHandle,
    shed: &Arc<AtomicBool>,
    metrics: &ConnMetrics,
) {
    // Times must be non-decreasing per connection; an AdvanceTo moves the
    // session watermark, so a later event below it would panic the pump.
    let mut watermark = f64::NEG_INFINITY;
    let protocol_error = |writer: &SharedWriter, code, message: String| {
        send(writer, &metrics.frames_out, &Frame::Error { code, message });
    };
    loop {
        let frame = match read_frame(reader) {
            Ok(frame) => frame,
            Err(WireError::Io(_)) => return, // disconnect (mid-frame or clean)
            Err(e) => {
                // Junk bytes, oversized prefix, unknown type: answer with a
                // typed error, then close this connection only.
                protocol_error(writer, ErrorCode::Protocol, e.to_string());
                return;
            }
        };
        metrics.frames_in.inc();
        metrics.tenant_frames_in.inc();
        match frame {
            Frame::Close => return,
            Frame::AdvanceTo { time } => {
                if time.0 < watermark {
                    protocol_error(
                        writer,
                        ErrorCode::BadEvent,
                        format!("AdvanceTo {} is behind watermark {watermark}", time.0),
                    );
                    return;
                }
                watermark = time.0;
                if handle.push_advance(time).is_err() {
                    return; // pump is gone; nothing more to ingest
                }
            }
            event_frame @ (Frame::TaskArrival { .. }
            | Frame::WorkerOnline { .. }
            | Frame::TaskExpiration { .. }
            | Frame::WorkerOffline { .. }
            | Frame::ReplanTick { .. }) => {
                let _ingest_span = metrics.ingest_seconds.span();
                if let Frame::TaskArrival { task, .. } = &event_frame {
                    if !task.is_well_formed() {
                        protocol_error(
                            writer,
                            ErrorCode::BadEvent,
                            format!("malformed task {}", task.id),
                        );
                        return;
                    }
                }
                if let Frame::WorkerOnline { worker, .. } = &event_frame {
                    if !worker.is_well_formed() {
                        protocol_error(
                            writer,
                            ErrorCode::BadEvent,
                            format!("malformed worker {}", worker.id),
                        );
                        return;
                    }
                }
                let (time, event) = event_frame.into_event().expect("matched an event frame");
                if time.0 < watermark {
                    protocol_error(
                        writer,
                        ErrorCode::BadEvent,
                        format!("event at {} is behind watermark {watermark}", time.0),
                    );
                    return;
                }
                // Admission, global first: under server-wide pressure the
                // stalest tenant is shed, and a shed tenant stays refused
                // until the total backlog is back under the cap.
                if shared.global_pending() >= shared.cfg.global_pending_cap {
                    shared.shed_stalest();
                } else {
                    shed.store(false, Ordering::SeqCst);
                }
                let reason = if shed.load(Ordering::SeqCst) {
                    Some(RetryReason::GlobalOverload)
                } else if handle.pending() >= shared.cfg.tenant_pending_quota {
                    Some(RetryReason::TenantQuota)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    metrics.rejected.inc();
                    metrics.tenant_rejected.inc();
                    send(
                        writer,
                        &metrics.frames_out,
                        &Frame::RetryAfter {
                            seconds: shared.cfg.retry_after_secs,
                            reason,
                        },
                    );
                    continue;
                }
                watermark = time.0;
                if handle.push_event(time, event).is_err() {
                    return;
                }
            }
            Frame::Hello { .. } => {
                protocol_error(
                    writer,
                    ErrorCode::Protocol,
                    "Hello after handshake".to_string(),
                );
                return;
            }
            _server_only => {
                protocol_error(
                    writer,
                    ErrorCode::Protocol,
                    "client sent a server-only frame".to_string(),
                );
                return;
            }
        }
    }
}
