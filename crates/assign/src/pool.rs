//! A dependency-free scoped worker pool for partition-parallel planning.
//!
//! Built on `std::thread::scope` only (the container has no crates.io
//! access, so no rayon): callers hand over an immutable slice of work items
//! and get one result per item back **in item order**, regardless of which
//! thread finished when. Work is distributed through a shared atomic cursor
//! so a straggler partition cannot starve the pool the way static chunking
//! would.
//!
//! Thread-count resolution is shared by every layer of the stack
//! ([`effective_threads`]): an explicit `AssignConfig::threads` wins,
//! otherwise the `DATAWA_THREADS` environment variable, otherwise 1. The
//! single-threaded path never spawns — it is the exact serial loop — so
//! `threads = 1` has zero overhead over the pre-pool planner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a configured thread count: positive values are taken as-is, `0`
/// defers to `DATAWA_THREADS` (default 1). The environment read goes through
/// [`datawa_core::env_config`], which caches it per process — the hot replan
/// path resolves this on every planning instant.
pub fn effective_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        datawa_core::env_config::threads_override().unwrap_or(1)
    }
}

/// Runs `f` over every item of `items`, fanning out to at most `threads`
/// OS threads, and returns the results in item order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or fewer than two
/// items) everything runs inline on the caller's thread. Panics in `f`
/// propagate to the caller when the scope joins.
pub fn run_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // datawa-lint: allow(relaxed-atomic-audit) -- pure monotonic claim cursor; each index is claimed exactly once and results are slotted by index, so claim order is irrelevant
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                // datawa-lint: allow(unwrap-in-hot-path) -- lock poisoning means a worker already panicked; propagating is the only sane response
                results.lock().expect("pool results poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        // datawa-lint: allow(unwrap-in-hot-path) -- lock poisoning means a worker already panicked; propagating is the only sane response
        .expect("pool results poisoned")
        .into_iter()
        // datawa-lint: allow(unwrap-in-hot-path) -- the claim cursor covers 0..items.len(), so every slot is written before scope join
        .map(|r| r.expect("pool worker skipped an item"))
        .collect()
}

/// Runs `f` over every item of `items` with mutable access, fanning the
/// slice out across at most `threads` OS threads in contiguous chunks.
///
/// Used by the sharded stream engine to step independent per-shard runner
/// states at a replan tick. `f` receives `(index, &mut item)`; each item is
/// visited exactly once.
pub fn scatter_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    std::thread::scope(|scope| {
        for (c, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (offset, item) in chunk_items.iter_mut().enumerate() {
                    f(c * chunk + offset, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let got = run_indexed(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_never_spawn() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(8, &empty, |_, &x| x).is_empty());
        assert_eq!(run_indexed(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn scatter_mut_visits_every_item_exactly_once() {
        for threads in [1, 3, 16] {
            let mut items: Vec<usize> = vec![0; 23];
            scatter_mut(threads, &mut items, |i, slot| *slot += i + 1);
            let expected: Vec<usize> = (0..23).map(|i| i + 1).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
    }

    #[test]
    fn explicit_thread_count_wins_over_the_environment() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
