//! Regenerates Table III: the experiment parameter grid (defaults marked *).

use datawa_experiments::params::{
    AVAILABLE_TIME_SWEEP, DELTA_T_SWEEP, REACHABLE_DISTANCE_SWEEP, VALID_TIME_SWEEP,
};
use datawa_experiments::{format_table, Dataset, Table};

fn fmt_sweep(values: &[f64], default: f64) -> String {
    values
        .iter()
        .map(|v| {
            if (*v - default).abs() < 1e-9 {
                format!("{v}*")
            } else {
                format!("{v}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_usize_sweep(values: &[usize], default: usize) -> String {
    values
        .iter()
        .map(|v| {
            if *v == default {
                format!("{v}*")
            } else {
                format!("{v}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let mut table = Table::new(vec!["Parameter", "Values (default *)"]);
    table.push_row(vec![
        "Time interval ΔT (s)".to_string(),
        fmt_sweep(&DELTA_T_SWEEP, 5.0),
    ]);
    table.push_row(vec![
        "Number of tasks |S| (Yueche)".to_string(),
        fmt_usize_sweep(&Dataset::Yueche.task_sweep(), 11_000),
    ]);
    table.push_row(vec![
        "Number of tasks |S| (DiDi)".to_string(),
        fmt_usize_sweep(&Dataset::Didi.task_sweep(), 9_000),
    ]);
    table.push_row(vec![
        "Number of workers |W| (Yueche)".to_string(),
        fmt_usize_sweep(&Dataset::Yueche.worker_sweep(), 600),
    ]);
    table.push_row(vec![
        "Number of workers |W| (DiDi)".to_string(),
        fmt_usize_sweep(&Dataset::Didi.worker_sweep(), 700),
    ]);
    table.push_row(vec![
        "Reachable distance d (km)".to_string(),
        fmt_sweep(&REACHABLE_DISTANCE_SWEEP, 1.0),
    ]);
    table.push_row(vec![
        "Available time off-on (h)".to_string(),
        fmt_sweep(&AVAILABLE_TIME_SWEEP, 1.0),
    ]);
    table.push_row(vec![
        "Valid time of tasks e-p (s)".to_string(),
        fmt_sweep(&VALID_TIME_SWEEP, 40.0),
    ]);
    println!("Table III — experiment parameters\n");
    println!("{}", format_table(&table));
}
