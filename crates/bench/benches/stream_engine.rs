//! Event-throughput benchmarks for the `datawa-stream` migration: the legacy
//! synchronous loop-over-sorted-arrivals driver versus the discrete-event
//! engine on identical replayed traces at 10k and 100k events, with batched
//! re-planning so the measurement is dominated by the event path rather than
//! by planning cost. Throughput is reported in events/sec so future PRs have
//! a perf trajectory to compare against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datawa_assign::{AdaptiveRunner, ArrivalEvent, AssignConfig, PolicyKind};
use datawa_sim::{SyntheticTrace, TraceSpec};
use datawa_stream::{run_workload, EngineConfig, Workload};
use std::time::Duration;

/// A trace sized so that workers + tasks ≈ `arrivals`.
fn trace_with_arrivals(arrivals: usize) -> SyntheticTrace {
    let base = TraceSpec::yueche();
    let scale = arrivals as f64 / (base.workers + base.tasks) as f64;
    SyntheticTrace::generate(base.scaled(scale))
}

fn bench_drivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream/events_per_sec");
    group.sample_size(10);
    for arrivals in [10_000usize, 100_000] {
        let trace = trace_with_arrivals(arrivals);
        let events: Vec<ArrivalEvent> = trace.events();
        let workload: Workload = trace.workload();
        let total_arrivals = (workload.workers.len() + workload.tasks.len()) as u64;
        // Batched planning (every 64 arrivals) keeps planning cost from
        // drowning the per-event overhead this bench is about.
        let mut runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Greedy);
        runner.replan_every = 64;
        // The big workload gets a longer budget so at least a few full runs
        // fit inside it; the small one stays snappy.
        group.measurement_time(Duration::from_millis(if arrivals > 10_000 {
            2_500
        } else {
            1_500
        }));

        group.throughput(Throughput::Elements(total_arrivals));
        group.bench_with_input(
            BenchmarkId::new("legacy_loop", arrivals),
            &arrivals,
            |bench, _| {
                bench.iter(|| {
                    let outcome = runner.run(&events, &[]);
                    criterion::black_box(outcome.assigned_tasks)
                });
            },
        );
        // The engine also processes one expiration/offline event per arrival.
        group.throughput(Throughput::Elements(total_arrivals * 2));
        group.bench_with_input(
            BenchmarkId::new("stream_engine", arrivals),
            &arrivals,
            |bench, _| {
                bench.iter(|| {
                    let outcome =
                        run_workload(&runner, &workload, &[], EngineConfig::replay_compat(64));
                    criterion::black_box(outcome.run.assigned_tasks)
                });
            },
        );
        // The ticked variant processes a different event count (lifecycle
        // events plus dt-dependent replan ticks); measure it once so the
        // reported events/sec uses the real total.
        let ticked_events = run_workload(&runner, &workload, &[], EngineConfig::ticked(30.0))
            .stats
            .events_processed as u64;
        group.throughput(Throughput::Elements(ticked_events));
        group.bench_with_input(
            BenchmarkId::new("stream_engine_ticked_30s", arrivals),
            &arrivals,
            |bench, _| {
                bench.iter(|| {
                    let outcome = run_workload(&runner, &workload, &[], EngineConfig::ticked(30.0));
                    criterion::black_box(outcome.run.assigned_tasks)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_drivers);
criterion_main!(benches);
