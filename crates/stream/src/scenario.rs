//! Workloads and scenario generators.
//!
//! A [`Workload`] is the engine's input: bare workers and tasks, scheduled by
//! the engine at their online/publication times. [`ScenarioGenerator`]s
//! produce workloads procedurally; four built-ins cover qualitatively
//! different demand/supply regimes beyond the Yueche/DiDi-style synthetic
//! traces (whose replay adapter lives in `datawa-sim`, which depends on this
//! crate):
//!
//! * [`UniformBaseline`] — spatially and temporally uniform; the control.
//! * [`RushHourBurst`] — demand concentrated in Gaussian bursts (morning and
//!   evening peaks) around a few hotspots.
//! * [`HotspotDrift`] — a single demand hotspot whose centre migrates across
//!   the study area over the horizon (the distribution shift the paper's
//!   DDGNN dependency modelling targets).
//! * [`HeavyTailedChurn`] — worker sessions with Pareto-distributed lengths:
//!   many short online stints, a few marathon shifts, per-driver churn.

use datawa_core::{Location, Task, TaskId, Timestamp, Worker, WorkerId};
use rand::prelude::*;

/// A schedulable batch of workers and tasks (ids are placeholders; the
/// engine's stores assign dense ids in insertion order).
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Workers, scheduled at their online times.
    pub workers: Vec<Worker>,
    /// Tasks, scheduled at their publication times.
    pub tasks: Vec<Task>,
}

impl Workload {
    /// Total number of arrival events this workload schedules.
    pub fn arrival_count(&self) -> usize {
        self.workers.len() + self.tasks.len()
    }

    /// Latest timestamp any entity in the workload touches (offline or
    /// expiration), or `t=0` for an empty workload.
    pub fn end_time(&self) -> Timestamp {
        let mut end: f64 = 0.0;
        for w in &self.workers {
            end = end.max(w.off().0);
        }
        for t in &self.tasks {
            end = end.max(t.expiration.0);
        }
        Timestamp(end)
    }
}

/// A procedural workload generator.
pub trait ScenarioGenerator {
    /// Display name of the scenario.
    fn name(&self) -> &'static str;

    /// Generates the workload (deterministic for a fixed spec/seed).
    fn generate(&self) -> Workload;
}

/// Shared sizing knobs for the built-in scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Number of workers (sessions, for the churn scenario's base count).
    pub workers: usize,
    /// Number of tasks.
    pub tasks: usize,
    /// Horizon in seconds; all arrivals happen in `[0, horizon)`.
    pub horizon: f64,
    /// Side length of the square study area, in kilometres.
    pub area_km: f64,
    /// Worker reachable distance, in kilometres.
    pub reachable_distance: f64,
    /// Task valid time `e − p`, in seconds.
    pub valid_time: f64,
    /// Worker availability-window length, in seconds (scenarios with churn
    /// use it as the scale of their session-length distribution).
    pub available_time: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A laptop-sized default: 40 workers, 600 tasks, a 30-minute horizon on
    /// a 10 km box with the paper's Table III defaults for the rest.
    pub fn small() -> ScenarioSpec {
        ScenarioSpec {
            workers: 40,
            tasks: 600,
            horizon: 1800.0,
            area_km: 10.0,
            reachable_distance: 1.0,
            valid_time: 40.0,
            available_time: 900.0,
            seed: 7,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> ScenarioSpec {
        self.workers = workers;
        self
    }

    /// Overrides the task count.
    pub fn with_tasks(mut self, tasks: usize) -> ScenarioSpec {
        self.tasks = tasks;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = seed;
        self
    }

    /// Overrides the horizon (seconds).
    pub fn with_horizon(mut self, horizon: f64) -> ScenarioSpec {
        self.horizon = horizon;
        self
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    fn uniform_location(&self, rng: &mut StdRng) -> Location {
        Location::new(
            rng.gen_range(0.0..self.area_km),
            rng.gen_range(0.0..self.area_km),
        )
    }

    fn clamp(&self, l: Location) -> Location {
        Location::new(l.x.clamp(0.0, self.area_km), l.y.clamp(0.0, self.area_km))
    }

    fn task_at(&self, location: Location, publication: f64) -> Task {
        let p = Timestamp(publication);
        Task::new(
            TaskId(0),
            location,
            p,
            Timestamp(publication + self.valid_time),
        )
    }

    fn worker_at(&self, location: Location, on: f64, window: f64) -> Worker {
        Worker::new(
            WorkerId(0),
            location,
            self.reachable_distance,
            Timestamp(on),
            Timestamp(on + window),
        )
    }
}

/// Standard-normal sample (shared Box–Muller sampler from the rand stub).
fn normal(rng: &mut StdRng) -> f64 {
    rng.sample::<f64, _>(StandardNormal)
}

/// Uniform demand in space and time — the control scenario every other one
/// is compared against.
#[derive(Debug, Clone, Copy)]
pub struct UniformBaseline {
    /// Sizing knobs.
    pub spec: ScenarioSpec,
}

impl UniformBaseline {
    /// Creates the scenario.
    pub fn new(spec: ScenarioSpec) -> UniformBaseline {
        UniformBaseline { spec }
    }
}

impl ScenarioGenerator for UniformBaseline {
    fn name(&self) -> &'static str {
        "uniform-baseline"
    }

    fn generate(&self) -> Workload {
        let spec = self.spec;
        let mut rng = spec.rng();
        let mut workload = Workload::default();
        for _ in 0..spec.workers {
            let on = rng.gen_range(0.0..spec.horizon * 0.5);
            let location = spec.uniform_location(&mut rng);
            workload
                .workers
                .push(spec.worker_at(location, on, spec.available_time));
        }
        for _ in 0..spec.tasks {
            let publication = rng.gen_range(0.0..spec.horizon);
            let location = spec.uniform_location(&mut rng);
            workload.tasks.push(spec.task_at(location, publication));
        }
        workload
    }
}

/// Demand concentrated in Gaussian bursts around a few hotspots: a morning
/// and an evening rush with a quiet valley in between. Workers come online
/// shortly before the bursts they serve.
#[derive(Debug, Clone)]
pub struct RushHourBurst {
    /// Sizing knobs.
    pub spec: ScenarioSpec,
    /// Burst centres as fractions of the horizon, with their temporal σ in
    /// seconds. Defaults to two peaks at 25 % and 75 % with σ = horizon/12.
    pub peaks: Vec<(f64, f64)>,
    /// Number of spatial hotspots tasks cluster around.
    pub hotspots: usize,
    /// Spatial σ of each hotspot, in kilometres.
    pub hotspot_sigma: f64,
}

impl RushHourBurst {
    /// Creates the scenario with the default two-peak shape.
    pub fn new(spec: ScenarioSpec) -> RushHourBurst {
        let sigma = spec.horizon / 12.0;
        RushHourBurst {
            spec,
            peaks: vec![(0.25, sigma), (0.75, sigma)],
            hotspots: 4,
            hotspot_sigma: 0.7,
        }
    }
}

impl ScenarioGenerator for RushHourBurst {
    fn name(&self) -> &'static str {
        "rush-hour-burst"
    }

    fn generate(&self) -> Workload {
        let spec = self.spec;
        assert!(!self.peaks.is_empty(), "rush-hour scenario needs ≥1 peak");
        let mut rng = spec.rng();
        let centres: Vec<Location> = (0..self.hotspots.max(1))
            .map(|_| spec.uniform_location(&mut rng))
            .collect();
        let sample_instant = |rng: &mut StdRng| -> f64 {
            let (frac, sigma) = self.peaks[rng.gen_range(0..self.peaks.len())];
            (frac * spec.horizon + normal(rng) * sigma).clamp(0.0, spec.horizon * 0.999)
        };
        let mut workload = Workload::default();
        for _ in 0..spec.workers {
            // Come online roughly one σ before a burst, so supply meets the
            // ramp of demand.
            let (frac, sigma) = self.peaks[rng.gen_range(0..self.peaks.len())];
            let on = (frac * spec.horizon - sigma + normal(&mut rng) * sigma * 0.5)
                .clamp(0.0, spec.horizon * 0.9);
            let centre = centres[rng.gen_range(0..centres.len())];
            let location = spec.clamp(Location::new(
                centre.x + normal(&mut rng) * self.hotspot_sigma,
                centre.y + normal(&mut rng) * self.hotspot_sigma,
            ));
            workload
                .workers
                .push(spec.worker_at(location, on, spec.available_time));
        }
        for _ in 0..spec.tasks {
            let publication = sample_instant(&mut rng);
            let centre = centres[rng.gen_range(0..centres.len())];
            let location = spec.clamp(Location::new(
                centre.x + normal(&mut rng) * self.hotspot_sigma,
                centre.y + normal(&mut rng) * self.hotspot_sigma,
            ));
            workload.tasks.push(spec.task_at(location, publication));
        }
        workload
    }
}

/// A single demand hotspot migrating across the study area over the horizon
/// (left edge to right edge along a sine-wave vertical path): the
/// distribution at the end of the run looks nothing like the beginning.
#[derive(Debug, Clone, Copy)]
pub struct HotspotDrift {
    /// Sizing knobs.
    pub spec: ScenarioSpec,
    /// Spatial σ of the moving hotspot, in kilometres.
    pub sigma_km: f64,
}

impl HotspotDrift {
    /// Creates the scenario.
    pub fn new(spec: ScenarioSpec) -> HotspotDrift {
        HotspotDrift {
            spec,
            sigma_km: 0.8,
        }
    }

    /// Hotspot centre at time `t`.
    pub fn centre_at(&self, t: f64) -> Location {
        let spec = self.spec;
        let progress = (t / spec.horizon).clamp(0.0, 1.0);
        let x = progress * spec.area_km;
        let y = spec.area_km * (0.5 + 0.35 * (progress * std::f64::consts::TAU).sin());
        Location::new(x, y)
    }
}

impl ScenarioGenerator for HotspotDrift {
    fn name(&self) -> &'static str {
        "hotspot-drift"
    }

    fn generate(&self) -> Workload {
        let spec = self.spec;
        let mut rng = spec.rng();
        let mut workload = Workload::default();
        for _ in 0..spec.workers {
            let on = rng.gen_range(0.0..spec.horizon * 0.5);
            // Drivers position themselves where demand currently is.
            let centre = self.centre_at(on);
            let location = spec.clamp(Location::new(
                centre.x + normal(&mut rng) * self.sigma_km * 2.0,
                centre.y + normal(&mut rng) * self.sigma_km * 2.0,
            ));
            workload
                .workers
                .push(spec.worker_at(location, on, spec.available_time));
        }
        for _ in 0..spec.tasks {
            let publication = rng.gen_range(0.0..spec.horizon);
            let centre = self.centre_at(publication);
            let location = spec.clamp(Location::new(
                centre.x + normal(&mut rng) * self.sigma_km,
                centre.y + normal(&mut rng) * self.sigma_km,
            ));
            workload.tasks.push(spec.task_at(location, publication));
        }
        workload
    }
}

/// Worker churn with Pareto(α)-distributed session lengths: most sessions are
/// much shorter than `spec.available_time`, a few are far longer, and each
/// driver cycles through several sessions with gaps — a heavy-tailed
/// online/offline flapping pattern that stresses the engine's
/// `WorkerOffline` handling. Tasks arrive uniformly around a few hotspots.
#[derive(Debug, Clone, Copy)]
pub struct HeavyTailedChurn {
    /// Sizing knobs (`spec.workers` counts *drivers*; every driver
    /// contributes one worker record per session).
    pub spec: ScenarioSpec,
    /// Pareto tail index (smaller ⇒ heavier tail). Must be > 1 so the mean
    /// session length exists.
    pub alpha: f64,
    /// Minimum session length in seconds (the Pareto scale parameter).
    pub min_session: f64,
}

impl HeavyTailedChurn {
    /// Creates the scenario with α = 1.5 and 60 s minimum sessions.
    pub fn new(spec: ScenarioSpec) -> HeavyTailedChurn {
        HeavyTailedChurn {
            spec,
            alpha: 1.5,
            min_session: 60.0,
        }
    }

    fn session_length(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        // Inverse-CDF Pareto sample, capped at the nominal window length so a
        // single tail draw cannot swallow the whole horizon.
        (self.min_session * u.powf(-1.0 / self.alpha)).min(self.spec.available_time)
    }
}

impl ScenarioGenerator for HeavyTailedChurn {
    fn name(&self) -> &'static str {
        "heavy-tailed-churn"
    }

    fn generate(&self) -> Workload {
        let spec = self.spec;
        let mut rng = spec.rng();
        let hotspots: Vec<Location> = (0..5).map(|_| spec.uniform_location(&mut rng)).collect();
        let mut workload = Workload::default();
        for _ in 0..spec.workers {
            let home = hotspots[rng.gen_range(0..hotspots.len())];
            let location = spec.clamp(Location::new(
                home.x + normal(&mut rng) * 1.0,
                home.y + normal(&mut rng) * 1.0,
            ));
            // Sessions separated by heavy-tailed gaps until the horizon ends.
            let mut clock = rng.gen_range(0.0..spec.horizon * 0.25);
            while clock < spec.horizon * 0.9 {
                let length = self.session_length(&mut rng);
                workload
                    .workers
                    .push(spec.worker_at(location, clock, length));
                let gap = self.session_length(&mut rng);
                clock += length + gap;
            }
        }
        for _ in 0..spec.tasks {
            let publication = rng.gen_range(0.0..spec.horizon);
            let centre = hotspots[rng.gen_range(0..hotspots.len())];
            let location = spec.clamp(Location::new(
                centre.x + normal(&mut rng) * 0.8,
                centre.y + normal(&mut rng) * 0.8,
            ));
            workload.tasks.push(spec.task_at(location, publication));
        }
        workload
    }
}

/// The four built-in scenarios over one spec, boxed for sweeping.
pub fn builtin_scenarios(spec: ScenarioSpec) -> Vec<Box<dyn ScenarioGenerator>> {
    vec![
        Box::new(UniformBaseline::new(spec)),
        Box::new(RushHourBurst::new(spec)),
        Box::new(HotspotDrift::new(spec)),
        Box::new(HeavyTailedChurn::new(spec)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_scenarios_generate_well_formed_workloads() {
        let spec = ScenarioSpec::small().with_tasks(200).with_workers(20);
        for scenario in builtin_scenarios(spec) {
            let w = scenario.generate();
            assert!(!w.workers.is_empty(), "{}: no workers", scenario.name());
            assert_eq!(w.tasks.len(), 200, "{}", scenario.name());
            for t in &w.tasks {
                assert!(t.is_well_formed(), "{}", scenario.name());
                assert!(t.publication.0 >= 0.0 && t.publication.0 < spec.horizon);
            }
            for worker in &w.workers {
                assert!(worker.is_well_formed(), "{}", scenario.name());
            }
            assert!(w.end_time().0 > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = ScenarioSpec::small();
        let a = RushHourBurst::new(spec).generate();
        let b = RushHourBurst::new(spec).generate();
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.location, y.location);
            assert_eq!(x.publication, y.publication);
        }
        let c = RushHourBurst::new(spec.with_seed(99)).generate();
        assert_ne!(a.tasks[0].location, c.tasks[0].location);
    }

    #[test]
    fn rush_hour_concentrates_demand_near_peaks() {
        let spec = ScenarioSpec::small().with_tasks(2000);
        let scenario = RushHourBurst::new(spec);
        let w = scenario.generate();
        // At least 70 % of tasks within 2σ of a peak (vs ~44 % if uniform).
        let near_peak = w
            .tasks
            .iter()
            .filter(|t| {
                scenario.peaks.iter().any(|&(frac, sigma)| {
                    (t.publication.0 - frac * spec.horizon).abs() <= 2.0 * sigma
                })
            })
            .count();
        assert!(
            near_peak as f64 >= 0.7 * w.tasks.len() as f64,
            "only {near_peak}/{} tasks near a peak",
            w.tasks.len()
        );
    }

    #[test]
    fn hotspot_drift_moves_the_demand_centroid() {
        let spec = ScenarioSpec::small().with_tasks(2000);
        let w = HotspotDrift::new(spec).generate();
        let (mut early_x, mut early_n, mut late_x, mut late_n) = (0.0, 0usize, 0.0, 0usize);
        for t in &w.tasks {
            if t.publication.0 < spec.horizon * 0.2 {
                early_x += t.location.x;
                early_n += 1;
            } else if t.publication.0 > spec.horizon * 0.8 {
                late_x += t.location.x;
                late_n += 1;
            }
        }
        let early = early_x / early_n.max(1) as f64;
        let late = late_x / late_n.max(1) as f64;
        assert!(
            late - early > 0.5 * spec.area_km,
            "demand centroid did not drift: early x̄ {early:.2}, late x̄ {late:.2}"
        );
    }

    #[test]
    fn heavy_tailed_churn_produces_dispersed_session_lengths() {
        let spec = ScenarioSpec::small().with_workers(60);
        let w = HeavyTailedChurn::new(spec).generate();
        assert!(
            w.workers.len() > spec.workers,
            "churn should yield more sessions than drivers"
        );
        let lengths: Vec<f64> = w
            .workers
            .iter()
            .map(|x| x.window.length().seconds())
            .collect();
        let short = lengths.iter().filter(|&&l| l < 180.0).count();
        let long = lengths.iter().filter(|&&l| l > 600.0).count();
        assert!(
            short > 0 && long > 0,
            "no heavy tail: {short} short, {long} long"
        );
        let max = lengths.iter().cloned().fold(0.0, f64::max);
        let median = {
            let mut sorted = lengths.clone();
            sorted.sort_by(f64::total_cmp);
            sorted[sorted.len() / 2]
        };
        assert!(
            max > 4.0 * median,
            "tail not heavy: max {max:.0}s median {median:.0}s"
        );
    }
}
