//! Prediction-cost benchmarks covering the timing panels of Fig. 5/6: one
//! training epoch and one full-test inference pass for each predictor, across
//! the ΔT sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datawa_bench::small_trace;
use datawa_predict::{
    DdgnnPredictor, DemandPredictor, GraphWaveNetPredictor, LstmPredictor, TrainingConfig,
};
use datawa_sim::{build_series, PipelineConfig};
use std::time::Duration;

fn models(cells: usize, k: usize) -> Vec<(&'static str, Box<dyn DemandPredictor>)> {
    vec![
        (
            "LSTM",
            Box::new(LstmPredictor::new(k, 12, 0)) as Box<dyn DemandPredictor>,
        ),
        (
            "Graph-Wavenet",
            Box::new(GraphWaveNetPredictor::new(cells, k, 12, 8, 0)),
        ),
        (
            "DDGNN",
            Box::new(DdgnnPredictor::with_defaults(cells, k, 0)),
        ),
    ]
}

/// Fig. 5c/6c: training cost per epoch, per model, across ΔT.
fn training_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/train_epoch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    let trace = small_trace(0.03);
    for delta_t in [5.0, 9.0] {
        let config = PipelineConfig {
            grid_cells_per_side: 4,
            delta_t,
            ..PipelineConfig::default()
        };
        let series = build_series(&trace, &config);
        let (mut train, _) = series.split(0.8);
        // Keep one epoch in the tens-of-milliseconds range: the benchmark
        // measures per-example training cost, not full convergence.
        train.examples.truncate(24);
        let cells = 16;
        for (name, mut model) in models(cells, config.k) {
            group.bench_with_input(
                BenchmarkId::new(name, format!("dt{delta_t}")),
                &delta_t,
                |bench, _| {
                    bench.iter(|| {
                        let report = model.train(
                            &train,
                            &TrainingConfig {
                                epochs: 1,
                                learning_rate: 0.02,
                            },
                        );
                        std::hint::black_box(report.final_loss)
                    });
                },
            );
        }
    }
    group.finish();
}

/// Fig. 5d/6d: inference (testing) cost per model.
fn inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/test_pass");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    let trace = small_trace(0.03);
    let config = PipelineConfig {
        grid_cells_per_side: 4,
        ..PipelineConfig::default()
    };
    let series = build_series(&trace, &config);
    let (_, mut test) = series.split(0.8);
    test.examples.truncate(24);
    for (name, model) in models(16, config.k) {
        group.bench_function(name, |bench| {
            bench.iter(|| std::hint::black_box(model.evaluate(&test).average_precision));
        });
    }
    group.finish();
}

criterion_group!(benches, training_epoch, inference);
criterion_main!(benches);
