//! The correctness contract of incremental replanning, pinned at the
//! integration level: with the plan cache forced on, every policy on every
//! built-in scenario generator must produce bit-for-bit the same run as with
//! the cache forced off (full replanning), at 1 and 4 planner threads — plus
//! a property test that no single world event can ever invalidate a cached
//! partition plan without the planner noticing (oracle: recompute everything
//! and diff).

use datawa::prelude::*;
use proptest::prelude::*;

fn outcome(
    workload: &Workload,
    policy: PolicyKind,
    threads: usize,
    incremental: IncrementalMode,
) -> datawa::stream::EngineOutcome {
    let config = AssignConfig {
        threads,
        incremental,
        ..AssignConfig::default()
    };
    let mut runner = AdaptiveRunner::new(config, policy);
    if policy == PolicyKind::DataWa {
        // Identical (seeded) TVF on both sides keeps the comparison exact.
        runner = runner.with_tvf(TaskValueFunction::new(8, 7));
    }
    run_workload(&runner, workload, &[], EngineConfig::batched(8))
}

/// Cache-on and cache-off runs must agree task for task, worker for worker,
/// for every policy family on every scenario generator, at 1 and 4 threads.
#[test]
fn incremental_equals_full_replan_for_all_policies_and_scenarios() {
    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        for policy in [
            PolicyKind::Greedy,
            PolicyKind::Fta,
            PolicyKind::Dta,
            PolicyKind::DataWa,
        ] {
            for threads in [1usize, 4] {
                let on = outcome(&workload, policy, threads, IncrementalMode::On);
                let off = outcome(&workload, policy, threads, IncrementalMode::Off);
                assert_eq!(
                    on.run.assigned_tasks,
                    off.run.assigned_tasks,
                    "{} on {} (threads={threads}): incremental diverged from full replan",
                    policy.name(),
                    scenario.name()
                );
                assert_eq!(
                    on.run.per_worker,
                    off.run.per_worker,
                    "{} on {} (threads={threads}): per-worker counts diverged",
                    policy.name(),
                    scenario.name()
                );
                assert_eq!(on.run.planning_calls, off.run.planning_calls);
                // The off side must never report reuse.
                assert_eq!(off.run.partitions_reused, 0);
            }
        }
    }
}

/// The exact-search policies actually reuse plans — the equivalence above
/// would hold vacuously if the cache never hit. Rush-hour keeps a busy task
/// pool (assignments happen), yet most instants leave most partitions clean.
#[test]
fn incremental_runs_reuse_partitions() {
    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    let workload = RushHourBurst::new(spec).generate();
    let on = outcome(&workload, PolicyKind::Dta, 1, IncrementalMode::On);
    assert!(on.run.assigned_tasks > 0, "scenario assigns nothing");
    assert!(
        on.run.partitions_reused > 0,
        "the plan cache never hit on a rush-hour workload"
    );
    assert!(on.run.partitions_recomputed > 0);
}

/// The prediction-aware policies plan over phantom (predicted) tasks, whose
/// planning ids are not stable across instants — those instants must bypass
/// the cache, and the run must still match full replanning exactly.
#[test]
fn prediction_policies_stay_equivalent() {
    let spec = ScenarioSpec::small().with_tasks(120).with_workers(10);
    let workload = HotspotDrift::new(spec).generate();
    let predicted: Vec<PredictedTaskInput> = (0..12)
        .map(|i| PredictedTaskInput {
            location: Location::new(1.0 + i as f64 * 0.7, 2.0),
            publication: Timestamp(60.0 * i as f64 + 30.0),
            expiration: Timestamp(60.0 * i as f64 + 300.0),
        })
        .collect();
    for threads in [1usize, 4] {
        let config_on = AssignConfig {
            threads,
            incremental: IncrementalMode::On,
            ..AssignConfig::default()
        };
        let config_off = AssignConfig {
            incremental: IncrementalMode::Off,
            ..config_on
        };
        let on = run_workload(
            &AdaptiveRunner::new(config_on, PolicyKind::DtaTp),
            &workload,
            &predicted,
            EngineConfig::batched(8),
        );
        let off = run_workload(
            &AdaptiveRunner::new(config_off, PolicyKind::DtaTp),
            &workload,
            &predicted,
            EngineConfig::batched(8),
        );
        assert_eq!(on.run.assigned_tasks, off.run.assigned_tasks);
        assert_eq!(on.run.per_worker, off.run.per_worker);
    }
}

// ---------------------------------------------------------------------------
// Property: a single world event never stales the cache undetected.
// ---------------------------------------------------------------------------

/// One mutation of the world between two planning instants.
#[derive(Debug, Clone)]
enum WorldEvent {
    /// A new task is published (arrival).
    TaskArrives { x: f64, y: f64, valid: f64 },
    /// An open task leaves the pool (expiration or served by someone else).
    TaskLeaves { pick: usize },
    /// A worker goes offline (drops out of the planning set).
    WorkerOffline { pick: usize },
    /// A new worker comes online.
    WorkerOnline { x: f64, y: f64, reach: f64 },
    /// A worker moved (served a task elsewhere between the instants).
    WorkerMoves { pick: usize, x: f64, y: f64 },
}

fn event_strategy() -> impl Strategy<Value = WorldEvent> {
    prop_oneof![
        (0.0f64..10.0, 0.0f64..10.0, 50.0f64..200.0)
            .prop_map(|(x, y, valid)| WorldEvent::TaskArrives { x, y, valid }),
        (0usize..100).prop_map(|pick| WorldEvent::TaskLeaves { pick }),
        (0usize..100).prop_map(|pick| WorldEvent::WorkerOffline { pick }),
        (0.0f64..10.0, 0.0f64..10.0, 0.5f64..3.0)
            .prop_map(|(x, y, reach)| WorldEvent::WorkerOnline { x, y, reach }),
        (0usize..100, 0.0f64..10.0, 0.0f64..10.0)
            .prop_map(|(pick, x, y)| WorldEvent::WorkerMoves { pick, x, y }),
    ]
}

/// Builds the planning store the adaptive runner would build: open tasks in
/// ascending real-id order, planning ids dense from zero.
fn planning_store(world: &TaskStore, open: &[TaskId]) -> (TaskStore, Vec<TaskId>) {
    let mut store = TaskStore::new();
    for &tid in open {
        store.insert(*world.get(tid));
    }
    let pids: Vec<TaskId> = store.ids().collect();
    (store, pids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Warm the cache at `t0`, apply exactly one world event, replan at `t1`
    /// incrementally, and diff against a cold full replan of the mutated
    /// world: the plans must be identical — i.e. the dirty-set/verification
    /// rules can never miss a partition whose plan would change.
    #[test]
    fn single_event_never_stales_the_cache(
        worker_specs in prop::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 0.5f64..3.0, 100.0f64..400.0), 2..8),
        task_specs in prop::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 30.0f64..200.0), 2..16),
        event in event_strategy(),
    ) {
        let config = AssignConfig {
            travel: TravelModel::euclidean(0.05),
            threads: 1,
            incremental: IncrementalMode::On,
            ..AssignConfig::default()
        };
        let mut workers = WorkerStore::new();
        for &(x, y, reach, len) in &worker_specs {
            workers.insert(Worker::new(
                WorkerId(0),
                Location::new(x, y),
                reach,
                Timestamp(0.0),
                Timestamp(len),
            ));
        }
        let mut world_tasks = TaskStore::new();
        for &(x, y, valid) in &task_specs {
            world_tasks.insert(Task::new(
                TaskId(0),
                Location::new(x, y),
                Timestamp(0.0),
                Timestamp(valid),
            ));
        }
        let mut worker_ids: Vec<WorkerId> = workers.ids().collect();
        let mut open: Vec<TaskId> = world_tasks.ids().collect();

        // Instant t0: warm the incremental planner's cache.
        let t0 = Timestamp(5.0);
        let mut incremental = Planner::new(config, SearchMode::Exact);
        {
            let (store, pids) = planning_store(&world_tasks, &open);
            let ctx = IncrementalContext { real_ids: &open, forecast_epoch: 0 };
            let _ = incremental.plan_incremental(
                &worker_ids, &pids, &workers, &store, t0, Some(&ctx));
        }

        // Exactly one world event between the instants.
        match event {
            WorldEvent::TaskArrives { x, y, valid } => {
                let id = world_tasks.insert(Task::new(
                    TaskId(0),
                    Location::new(x, y),
                    Timestamp(6.0),
                    Timestamp(6.0 + valid),
                ));
                open.push(id);
            }
            WorldEvent::TaskLeaves { pick } => {
                let i = pick % open.len();
                open.remove(i);
            }
            WorldEvent::WorkerOffline { pick } => {
                let i = pick % worker_ids.len();
                worker_ids.remove(i);
            }
            WorldEvent::WorkerOnline { x, y, reach } => {
                let id = workers.insert(Worker::new(
                    WorkerId(0),
                    Location::new(x, y),
                    reach,
                    Timestamp(6.0),
                    Timestamp(400.0),
                ));
                worker_ids.push(id);
            }
            WorldEvent::WorkerMoves { pick, x, y } => {
                let i = pick % worker_ids.len();
                workers.get_mut(worker_ids[i]).location = Location::new(x, y);
            }
        }
        if worker_ids.is_empty() || open.is_empty() {
            return; // degenerate case: nothing left to plan
        }

        // Instant t1: incremental replan of the mutated world vs a cold
        // full replan (the oracle recomputes every partition from scratch).
        let t1 = Timestamp(7.0);
        let (store, pids) = planning_store(&world_tasks, &open);
        let ctx = IncrementalContext { real_ids: &open, forecast_epoch: 0 };
        let (warm, report) = incremental.plan_incremental(
            &worker_ids, &pids, &workers, &store, t1, Some(&ctx));
        let off = AssignConfig { incremental: IncrementalMode::Off, ..config };
        let (cold, _) = Planner::new(off, SearchMode::Exact)
            .plan(&worker_ids, &pids, &workers, &store, t1);
        prop_assert_eq!(
            warm, cold,
            "incremental replan diverged after {:?} (reused {}, recomputed {})",
            event, report.partitions_reused, report.partitions_recomputed
        );
    }

    /// Multi-instant version: a short random event script replanned after
    /// every event stays equivalent to cold full replans throughout.
    #[test]
    fn event_scripts_never_stale_the_cache(
        worker_specs in prop::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 0.5f64..3.0, 100.0f64..400.0), 2..6),
        task_specs in prop::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 30.0f64..200.0), 2..10),
        events in prop::collection::vec(event_strategy(), 1..6),
    ) {
        let config = AssignConfig {
            travel: TravelModel::euclidean(0.05),
            threads: 1,
            incremental: IncrementalMode::On,
            ..AssignConfig::default()
        };
        let mut workers = WorkerStore::new();
        for &(x, y, reach, len) in &worker_specs {
            workers.insert(Worker::new(
                WorkerId(0), Location::new(x, y), reach,
                Timestamp(0.0), Timestamp(len)));
        }
        let mut world_tasks = TaskStore::new();
        for &(x, y, valid) in &task_specs {
            world_tasks.insert(Task::new(
                TaskId(0), Location::new(x, y),
                Timestamp(0.0), Timestamp(valid)));
        }
        let mut worker_ids: Vec<WorkerId> = workers.ids().collect();
        let mut open: Vec<TaskId> = world_tasks.ids().collect();
        let mut incremental = Planner::new(config, SearchMode::Exact);
        let off = AssignConfig { incremental: IncrementalMode::Off, ..config };

        for (step, event) in events.into_iter().enumerate() {
            let now = Timestamp(5.0 + 2.0 * step as f64);
            match event {
                WorldEvent::TaskArrives { x, y, valid } => {
                    let id = world_tasks.insert(Task::new(
                        TaskId(0), Location::new(x, y),
                        now, Timestamp(now.0 + valid)));
                    open.push(id);
                }
                WorldEvent::TaskLeaves { pick } if !open.is_empty() => {
                    let i = pick % open.len();
                    open.remove(i);
                }
                WorldEvent::WorkerOffline { pick } if !worker_ids.is_empty() => {
                    let i = pick % worker_ids.len();
                    worker_ids.remove(i);
                }
                WorldEvent::WorkerOnline { x, y, reach } => {
                    let id = workers.insert(Worker::new(
                        WorkerId(0), Location::new(x, y), reach,
                        now, Timestamp(500.0)));
                    worker_ids.push(id);
                }
                WorldEvent::WorkerMoves { pick, x, y } if !worker_ids.is_empty() => {
                    let i = pick % worker_ids.len();
                    workers.get_mut(worker_ids[i]).location = Location::new(x, y);
                }
                _ => {}
            }
            if worker_ids.is_empty() || open.is_empty() {
                continue;
            }
            let (store, pids) = planning_store(&world_tasks, &open);
            let ctx = IncrementalContext { real_ids: &open, forecast_epoch: 0 };
            let (warm, _) = incremental.plan_incremental(
                &worker_ids, &pids, &workers, &store, now, Some(&ctx));
            let (cold, _) = Planner::new(off, SearchMode::Exact)
                .plan(&worker_ids, &pids, &workers, &store, now);
            prop_assert_eq!(warm, cold, "diverged at script step {}", step);
        }
    }
}

/// Incremental never searches more partitions than full replanning does on
/// the identical run, and the off side never reports reuse.
#[test]
fn reuse_accounting_is_coherent() {
    let spec = ScenarioSpec::small().with_tasks(100).with_workers(8);
    let workload = RushHourBurst::new(spec).generate();
    let on = outcome(&workload, PolicyKind::Dta, 1, IncrementalMode::On);
    let off = outcome(&workload, PolicyKind::Dta, 1, IncrementalMode::Off);
    assert!(on.run.partitions_recomputed <= off.run.partitions_recomputed);
    assert_eq!(off.run.partitions_reused, 0);
}
