//! Deterministic weight initialisation helpers.

use crate::matrix::Matrix;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Xavier/Glorot uniform initialisation: samples from
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform initialisation in `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f64, rng: &mut StdRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Zero initialisation (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_the_glorot_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(10, 20, &mut rng);
        let limit = (6.0 / 30.0_f64).sqrt();
        assert!(m.data().iter().all(|&v| v.abs() <= limit));
        assert_eq!(m.shape(), (10, 20));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_and_zeros() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(3, 3, 0.5, &mut rng);
        assert!(m.data().iter().all(|&v| v.abs() <= 0.5));
        assert_eq!(zeros(2, 2), Matrix::zeros(2, 2));
    }
}
