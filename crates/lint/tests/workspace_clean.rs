//! The committed tree must be lint-clean: every hazard either fixed or
//! suppressed with a rationale. This is the same gate CI's `check` job runs
//! via `cargo run -p datawa-lint -- --workspace`.

use std::path::PathBuf;
use std::process::Command;

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_datawa-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run datawa-lint --workspace");
    assert!(
        out.status.success(),
        "datawa-lint found unsuppressed issues:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
