//! Loss functions (thin wrappers over the autograd loss nodes).

use crate::autograd::Var;
use crate::matrix::Matrix;

/// Mean squared error between predictions and a constant target.
pub fn mse(pred: &Var, target: &Matrix) -> Var {
    pred.mse_loss(target)
}

/// Binary cross-entropy between probability predictions and a constant 0/1
/// target (the loss used to train all three demand predictors, since the task
/// multivariate time series is binary, Eq. 2).
pub fn binary_cross_entropy(pred: &Var, target: &Matrix) -> Var {
    pred.bce_loss(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let t = Matrix::from_rows(&[&[1.0, 2.0]]);
        let p = Var::constant(t.clone());
        assert!(mse(&p, &t).value().get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let p = Var::constant(Matrix::from_rows(&[&[1.0, 3.0]]));
        let t = Matrix::from_rows(&[&[0.0, 1.0]]);
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((mse(&p, &t).value().get(0, 0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bce_is_low_for_confident_correct_predictions() {
        let t = Matrix::from_rows(&[&[1.0, 0.0]]);
        let good = Var::constant(Matrix::from_rows(&[&[0.99, 0.01]]));
        let bad = Var::constant(Matrix::from_rows(&[&[0.01, 0.99]]));
        let lg = binary_cross_entropy(&good, &t).value().get(0, 0);
        let lb = binary_cross_entropy(&bad, &t).value().get(0, 0);
        assert!(lg < 0.05);
        assert!(lb > 3.0);
        assert!(lg < lb);
    }

    #[test]
    fn bce_gradient_pushes_towards_target() {
        let p = Var::parameter(Matrix::from_rows(&[&[0.3]]));
        let sig = p.sigmoid();
        let loss = binary_cross_entropy(&sig, &Matrix::from_rows(&[&[1.0]]));
        loss.backward();
        // d loss / d p must be negative: increasing p increases sigmoid(p)
        // towards the target 1 and decreases the loss.
        assert!(p.grad().get(0, 0) < 0.0);
    }
}
