//! # datawa-assign
//!
//! Task assignment for DATA-WA (§IV of the paper): reachable-task computation,
//! maximal valid task sequence generation, the worker dependency graph and its
//! separation into a cluster tree (via `datawa-graph`), the exact DFSearch of
//! Algorithm 1, the Task Value Function trained by Q-learning on DFSearch
//! samples (Eq. 11–12), the TVF-guided search of Algorithm 2, the Task
//! Planning Assignment of Algorithm 4 and the streaming adaptive algorithm of
//! Algorithm 3.
//!
//! The five evaluated methods (Greedy, FTA, DTA, DTA+TP, DATA-WA, §V-B.2) are
//! exposed as [`PolicyKind`] variants interpreted by the adaptive runner.

pub mod adaptive;
pub mod config;
pub mod forecast;
pub mod partition;
pub mod planner;
pub mod pool;
pub mod reachable;
pub mod search;
pub mod sequences;
pub mod tvf;

pub use adaptive::{
    AdaptiveRunner, ArrivalEvent, DispatchRecord, PolicyKind, PredictedTaskInput, RunOutcome,
    RunnerState,
};
pub use config::AssignConfig;
pub use forecast::{ForecastProvider, ForecastStats, StaticForecast};
pub use partition::{split_cluster_tree, Partition};
pub use planner::{Planner, PlanningReport, SearchMode};
pub use reachable::{build_worker_dependency_graph, reachable_tasks, ReachableSets};
pub use search::{DfSearch, SearchSample};
pub use sequences::{generate_sequences, SequenceSet};
pub use tvf::{ActionFeatures, StateFeatures, TaskValueFunction, TvfInference};
