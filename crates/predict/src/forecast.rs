//! Live demand forecasting: the model-backed [`ForecastProvider`]
//! implementation and the prediction-record conversion path.
//!
//! The [`ForecastProvider`] trait itself lives in `datawa-assign` (the layer
//! that consumes forecasts); this module supplies
//!
//! * the single sanctioned conversion between the two prediction records —
//!   [`PredictedTask`] (model-facing: cell + confidence) into
//!   [`PredictedTaskInput`] (planning-facing: location + lifetime) — as a
//!   `From` impl, and
//! * [`OnlineForecaster`], which wraps any trained [`DemandPredictor`]
//!   (LSTM / Graph-WaveNet / DDGNN) over a [`UniformGrid`] and keeps the
//!   task multivariate time series of §III-A rolling *incrementally*: every
//!   observed arrival sets one occurrence bit, and the model re-forecasts
//!   the current window on a configurable refresh cadence instead of once
//!   per whole trace.
//!
//! ```
//! use datawa_core::{BoundingBox, Duration, Location, Task, TaskId, Timestamp};
//! use datawa_geo::{GridSpec, UniformGrid};
//! use datawa_predict::{
//!     ForecastProvider, LstmPredictor, OnlineForecastConfig, OnlineForecaster, SeriesSpec,
//! };
//!
//! let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(4.0, 4.0));
//! let grid = UniformGrid::new(GridSpec::new(area, 2, 2));
//! // ΔT = 5 s, k = 2 buckets per window, 2 history windows per example.
//! let spec = SeriesSpec::new(Timestamp(0.0), 5.0, 2, 2);
//! let mut forecaster = OnlineForecaster::new(
//!     Box::new(LstmPredictor::new(spec.k, 8, 7)),
//!     grid,
//!     spec,
//!     OnlineForecastConfig {
//!         threshold: 0.0, // emit every cell for the demo
//!         valid_time: 40.0,
//!         refresh_every: 10.0,
//!     },
//! );
//!
//! // Feed arrivals as they happen (a live session does this per ingest).
//! for t in [1.0, 6.0, 12.0, 17.0, 23.0] {
//!     let task = Task::new(TaskId(0), Location::new(1.0, 1.0), Timestamp(t), Timestamp(t + 40.0));
//!     forecaster.observe(task.publication, &task);
//! }
//!
//! // Re-query at a planning instant: the forecaster rolls its occurrence
//! // window forward and runs the model for the current ΔT window.
//! let predicted = forecaster.forecast(Timestamp(25.0), Duration(60.0));
//! assert!(!predicted.is_empty());
//! assert_eq!(forecaster.stats().refreshes, 1);
//! ```

use crate::predicted::{predicted_tasks_from, PredictedTask, DEFAULT_THRESHOLD};
use crate::series::{SeriesExample, SeriesSpec};
use crate::trainer::DemandPredictor;
use datawa_assign::{ForecastProvider, ForecastStats, PredictedTaskInput};
use datawa_core::{Duration, Task, Timestamp};
use datawa_geo::UniformGrid;
use datawa_tensor::Matrix;
use std::collections::VecDeque;

impl From<PredictedTask> for PredictedTaskInput {
    /// The one conversion path from the model-facing record to the
    /// planning-facing record: the grid cell and the confidence are the
    /// prediction layer's business; the planner consumes only where and
    /// when demand is expected.
    fn from(p: PredictedTask) -> PredictedTaskInput {
        PredictedTaskInput {
            location: p.location,
            publication: p.publication,
            expiration: p.expiration,
        }
    }
}

/// Knobs of an [`OnlineForecaster`] beyond the series geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineForecastConfig {
    /// Decision threshold above which a cell/bucket probability becomes a
    /// predicted task (the paper uses 0.85).
    pub threshold: f64,
    /// Lifetime assigned to each predicted task, in seconds (typically the
    /// dataset's task valid time `e − p`).
    pub valid_time: f64,
    /// Minimum simulated seconds between model re-forecasts. Between
    /// refreshes, [`ForecastProvider::forecast`] returns the cached slice,
    /// so planning instants stay cheap even at per-arrival re-planning.
    pub refresh_every: f64,
}

impl Default for OnlineForecastConfig {
    fn default() -> OnlineForecastConfig {
        OnlineForecastConfig {
            threshold: DEFAULT_THRESHOLD,
            valid_time: 40.0,
            refresh_every: 30.0,
        }
    }
}

/// A live, model-backed demand forecaster.
///
/// Maintains the binary occurrence series of every grid cell incrementally
/// (one `(cells × k)` matrix per ΔT·k window, at most `history_len + 1`
/// windows retained), and re-runs the wrapped predictor over the most recent
/// `history_len` *complete* windows to forecast the in-progress window —
/// re-forecasting at most once per [`OnlineForecastConfig::refresh_every`]
/// simulated seconds.
///
/// The wrapped model is used as-is: train it beforehand (for example on a
/// [`SeriesDataset`](crate::SeriesDataset) built from a historical prefix)
/// or hand it over untrained for a cold start.
pub struct OnlineForecaster {
    predictor: Box<dyn DemandPredictor>,
    grid: UniformGrid,
    spec: SeriesSpec,
    config: OnlineForecastConfig,
    /// Occurrence matrices of the retained windows, oldest first; the entry
    /// for window `base_window + i` sits at index `i`. The newest entry is
    /// the in-progress window.
    windows: VecDeque<Matrix>,
    /// Window index of `windows[0]`.
    base_window: usize,
    /// The cached forecast of the last refresh.
    cache: Vec<PredictedTaskInput>,
    last_refresh: Option<Timestamp>,
    stats: ForecastStats,
}

impl OnlineForecaster {
    /// Wraps `predictor` over `grid` with the series geometry the model was
    /// trained for (`spec.t0` anchors window 0 — set it to the start of the
    /// observation horizon, e.g. `-history` when warm-starting on a
    /// historical prefix).
    ///
    /// Panics if the model/series parameters are degenerate (via
    /// [`SeriesSpec`]'s own invariants) or the config carries non-positive
    /// cadence/lifetime values.
    #[must_use]
    pub fn new(
        predictor: Box<dyn DemandPredictor>,
        grid: UniformGrid,
        spec: SeriesSpec,
        config: OnlineForecastConfig,
    ) -> OnlineForecaster {
        assert!(
            config.refresh_every.is_finite() && config.refresh_every > 0.0,
            "refresh cadence must be a positive finite number of seconds"
        );
        assert!(
            config.valid_time.is_finite() && config.valid_time > 0.0,
            "predicted-task valid time must be a positive finite number of seconds"
        );
        OnlineForecaster {
            predictor,
            grid,
            spec,
            config,
            windows: VecDeque::new(),
            base_window: 0,
            cache: Vec::new(),
            last_refresh: None,
            stats: ForecastStats::default(),
        }
    }

    /// Feeds a whole historical task store through
    /// [`ForecastProvider::observe`] (warm start before a live session
    /// begins). Tasks published before `spec.t0` are ignored.
    pub fn warm_up(&mut self, tasks: &datawa_core::TaskStore) {
        for task in tasks.iter() {
            self.observe(task.publication, task);
        }
    }

    /// The prediction grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The series geometry.
    pub fn spec(&self) -> SeriesSpec {
        self.spec
    }

    /// The cached forecast of the last refresh (what the next
    /// [`ForecastProvider::forecast`] call returns unless the cadence
    /// triggers a re-forecast first).
    pub fn latest_forecast(&self) -> &[PredictedTaskInput] {
        &self.cache
    }

    /// Index of the window containing `t`, or `None` before the series
    /// origin.
    fn window_of(&self, t: Timestamp) -> Option<usize> {
        let offset = (t - self.spec.t0).seconds();
        if offset < 0.0 {
            return None;
        }
        Some((offset / self.spec.window_span()).floor() as usize)
    }

    /// Ensures the buffer covers `window`, pushing zero matrices for skipped
    /// quiet windows and dropping windows that fell out of the history.
    fn roll_to(&mut self, window: usize) {
        let cells = self.grid.cell_count();
        if self.windows.is_empty() {
            // First observation: backfill just enough (empty) history.
            self.base_window = window.saturating_sub(self.spec.history_len);
        }
        while self.base_window + self.windows.len() <= window {
            self.windows.push_back(Matrix::zeros(cells, self.spec.k));
        }
        // Retain the in-progress window plus `history_len` complete ones.
        while self.windows.len() > self.spec.history_len + 1 {
            self.windows.pop_front();
            self.base_window += 1;
        }
    }

    /// Re-runs the model and rebuilds the cached forecast: the window
    /// containing `now` is predicted from the last `history_len` complete
    /// occurrence windows, then the rollout continues autoregressively —
    /// each predicted probability window re-enters the history as soft
    /// pseudo-occurrence — until the forecast covers `horizon` past `now`.
    /// No-op (empty forecast) while fewer than `history_len` complete
    /// windows have been observed.
    fn refresh(&mut self, now: Timestamp, horizon: Duration) {
        self.last_refresh = Some(now);
        self.stats.refreshes += 1;
        self.cache.clear();
        let Some(current) = self.window_of(now) else {
            return;
        };
        self.roll_to(current);
        let p = self.spec.history_len;
        if current < p || self.base_window + p > current {
            return; // not enough completed history yet
        }
        let cells = self.grid.cell_count();
        let k = self.spec.k;
        let span = self.spec.window_span();
        // Rolling model input: the last `p` complete windows (buffer indices
        // `current - p - base .. current - base`), oldest first.
        let start = current - p - self.base_window;
        let mut recent: VecDeque<Matrix> = (start..start + p)
            .map(|w| self.windows[w].clone())
            .collect();
        // Cover every window the lookahead horizon touches.
        let last_window = self
            .window_of(now + horizon)
            .unwrap_or(current)
            .max(current);
        for window in current..=last_window {
            let mut history = Vec::with_capacity(cells);
            for cell in 0..cells {
                let mut h = Matrix::zeros(p, k);
                for (row, m) in recent.iter().enumerate() {
                    for j in 0..k {
                        h.set(row, j, m.get(cell, j));
                    }
                }
                history.push(h);
            }
            let snapshot = recent.back().expect("history_len >= 1").clone();
            let example = SeriesExample {
                history,
                snapshot,
                target: Matrix::zeros(cells, k),
                target_window: window,
            };
            let probabilities = self.predictor.predict(&example);
            let window_start = self.spec.t0 + Duration(window as f64 * span);
            self.cache.extend(
                predicted_tasks_from(
                    &probabilities,
                    &self.grid,
                    &self.spec,
                    window_start,
                    Duration(self.config.valid_time),
                    self.config.threshold,
                )
                .into_iter()
                .map(PredictedTaskInput::from),
            );
            // Feed the prediction back as soft occurrence for the next step.
            recent.pop_front();
            recent.push_back(probabilities);
        }
    }
}

impl ForecastProvider for OnlineForecaster {
    fn name(&self) -> &str {
        self.predictor.name()
    }

    fn observe(&mut self, _now: Timestamp, task: &Task) {
        self.stats.observed += 1;
        let Some(window) = self.window_of(task.publication) else {
            return;
        };
        self.roll_to(window);
        if window < self.base_window {
            return; // older than the retained history (late replay)
        }
        let offset = (task.publication - self.spec.t0).seconds();
        let within = offset - window as f64 * self.spec.window_span();
        let bucket = ((within / self.spec.delta_t).floor() as usize).min(self.spec.k - 1);
        let cell = self.grid.cell_of(&task.location).index();
        self.windows[window - self.base_window].set(cell, bucket, 1.0);
    }

    fn forecast(&mut self, now: Timestamp, horizon: Duration) -> &[PredictedTaskInput] {
        self.stats.queries += 1;
        let due = match self.last_refresh {
            None => true,
            Some(last) => (now - last).seconds() >= self.config.refresh_every,
        };
        if due {
            self.refresh(now, horizon);
            self.stats.forecast_tasks = self.cache.len();
        }
        &self.cache
    }

    fn stats(&self) -> ForecastStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::LstmPredictor;
    use datawa_core::{BoundingBox, Location, TaskId};
    use datawa_geo::GridSpec;

    fn grid2x2() -> UniformGrid {
        let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(4.0, 4.0));
        UniformGrid::new(GridSpec::new(area, 2, 2))
    }

    fn task_at(x: f64, y: f64, t: f64) -> Task {
        Task::new(
            TaskId(0),
            Location::new(x, y),
            Timestamp(t),
            Timestamp(t + 40.0),
        )
    }

    fn forecaster(threshold: f64, refresh_every: f64) -> OnlineForecaster {
        let spec = SeriesSpec::new(Timestamp(0.0), 5.0, 2, 2); // 10 s windows
        OnlineForecaster::new(
            Box::new(LstmPredictor::new(spec.k, 8, 3)),
            grid2x2(),
            spec,
            OnlineForecastConfig {
                threshold,
                valid_time: 40.0,
                refresh_every,
            },
        )
    }

    #[test]
    fn conversion_path_preserves_the_planning_fields() {
        use datawa_geo::CellId;
        let p = PredictedTask {
            cell: CellId(3),
            location: Location::new(3.0, 3.0),
            publication: Timestamp(10.0),
            expiration: Timestamp(50.0),
            probability: 0.9,
        };
        let input = PredictedTaskInput::from(p);
        assert_eq!(input.location, p.location);
        assert_eq!(input.publication, p.publication);
        assert_eq!(input.expiration, p.expiration);
    }

    #[test]
    fn forecast_is_empty_until_enough_history_accumulates() {
        let mut f = forecaster(0.0, 1.0);
        f.observe(Timestamp(1.0), &task_at(1.0, 1.0, 1.0));
        // Still inside window 0: no complete history.
        assert!(f.forecast(Timestamp(5.0), Duration(60.0)).is_empty());
        // Two complete windows later, the model can forecast.
        f.observe(Timestamp(12.0), &task_at(1.0, 1.0, 12.0));
        assert!(!f.forecast(Timestamp(25.0), Duration(60.0)).is_empty());
        assert!(f.stats().refreshes >= 2);
        assert_eq!(f.stats().observed, 2);
    }

    #[test]
    fn refresh_cadence_bounds_model_invocations() {
        let mut f = forecaster(0.0, 100.0);
        for t in 0..30 {
            f.observe(Timestamp(t as f64), &task_at(1.0, 1.0, t as f64));
        }
        // Many planning instants inside one cadence period: one refresh.
        for t in [30.0, 31.0, 40.0, 75.0, 99.0] {
            let _ = f.forecast(Timestamp(t), Duration(60.0));
        }
        assert_eq!(f.stats().refreshes, 1);
        assert_eq!(f.stats().queries, 5);
        // Crossing the cadence boundary triggers exactly one more.
        let _ = f.forecast(Timestamp(131.0), Duration(60.0));
        assert_eq!(f.stats().refreshes, 2);
    }

    #[test]
    fn forecast_covers_the_lookahead_horizon() {
        let mut f = forecaster(0.0, 1.0);
        for t in [1.0, 7.0, 12.0, 18.0, 22.0] {
            f.observe(Timestamp(t), &task_at(1.0, 1.0, t));
        }
        let now = Timestamp(25.0); // inside window 2 ([20, 30))
        let predicted = f.latest_and(now);
        // The rollout spans the current window through the window containing
        // now + horizon = 85, i.e. windows 2..=8 ([20, 90)).
        for p in &predicted {
            assert!(p.publication.0 >= 20.0 && p.publication.0 < 90.0);
            assert!(p.expiration.0 > p.publication.0);
        }
        assert!(
            predicted.iter().any(|p| p.publication.0 > 25.0 + 30.0),
            "autoregressive rollout must reach past the first window"
        );
        // threshold 0 → every (cell, bucket) pair of all 7 windows.
        assert_eq!(predicted.len(), 7 * 4 * 2);
    }

    impl OnlineForecaster {
        /// Test helper: forecast then clone the slice out of the borrow.
        fn latest_and(&mut self, now: Timestamp) -> Vec<PredictedTaskInput> {
            self.forecast(now, Duration(60.0)).to_vec()
        }
    }

    #[test]
    fn quiet_periods_backfill_zero_windows() {
        let mut f = forecaster(0.0, 1.0);
        f.observe(Timestamp(1.0), &task_at(1.0, 1.0, 1.0));
        // A long quiet gap: the roll must insert empty windows, not panic.
        f.observe(Timestamp(500.0), &task_at(3.0, 3.0, 500.0));
        assert!(!f.latest_and(Timestamp(505.0)).is_empty());
    }

    #[test]
    fn warm_up_replays_a_historical_store() {
        let mut store = datawa_core::TaskStore::new();
        for t in 0..20 {
            store.insert_with_location(
                Location::new(1.0, 1.0),
                Timestamp(t as f64),
                Timestamp(t as f64 + 40.0),
            );
        }
        let mut f = forecaster(0.0, 1.0);
        f.warm_up(&store);
        assert_eq!(f.stats().observed, 20);
        assert!(!f.latest_and(Timestamp(21.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "refresh cadence")]
    fn non_positive_cadence_is_rejected() {
        let _ = forecaster(0.5, 0.0);
    }
}
