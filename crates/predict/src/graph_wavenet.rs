//! Graph-WaveNet baseline predictor (§V-B.1 method ii).
//!
//! A faithful, reduced re-implementation of the Graph-WaveNet idea evaluated
//! by the paper: a *static* self-adaptive adjacency matrix learned from free
//! per-node embeddings (`softmax(relu(E1·E2ᵀ))`) combined with a gated dilated
//! causal temporal convolution, followed by one diffusion (graph convolution)
//! step and a dense output head. Unlike DDGNN the adjacency does not depend on
//! the current demand snapshot — that is the key difference the evaluation of
//! Fig. 5/6 isolates.

use crate::series::SeriesExample;
use crate::stack_rows;
use crate::trainer::DemandPredictor;
use datawa_tensor::init;
use datawa_tensor::layers::{Dense, GatedTemporalConv};
use datawa_tensor::{Matrix, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Graph-WaveNet baseline model.
pub struct GraphWaveNetPredictor {
    temporal: GatedTemporalConv,
    node_embed_src: Var,
    node_embed_dst: Var,
    diffusion: Dense,
    head: Dense,
    cells: usize,
}

impl GraphWaveNetPredictor {
    /// Creates the model for `cells` grid cells and occurrence vectors of
    /// width `k`.
    pub fn new(
        cells: usize,
        k: usize,
        hidden: usize,
        embedding: usize,
        seed: u64,
    ) -> GraphWaveNetPredictor {
        let mut rng = StdRng::seed_from_u64(seed);
        GraphWaveNetPredictor {
            temporal: GatedTemporalConv::new(k, hidden, 3, 1, &mut rng),
            node_embed_src: Var::parameter(init::xavier_uniform(cells, embedding, &mut rng)),
            node_embed_dst: Var::parameter(init::xavier_uniform(cells, embedding, &mut rng)),
            diffusion: Dense::new(hidden, hidden, &mut rng),
            head: Dense::new(hidden, k, &mut rng),
            cells,
        }
    }

    /// The static self-adaptive adjacency `softmax(relu(E1·E2ᵀ))` (row
    /// stochastic).
    pub fn adaptive_adjacency(&self) -> Var {
        self.node_embed_src
            .matmul(&self.node_embed_dst.transpose())
            .relu()
            .softmax_rows()
    }

    /// Per-cell temporal encoding: gated dilated causal convolution over the
    /// cell's history, keeping the representation of the latest timestep.
    fn temporal_features(&self, example: &SeriesExample) -> Var {
        let mut rows = Vec::with_capacity(example.history.len());
        for history in &example.history {
            let timesteps = history.rows();
            let x = Var::constant(history.clone());
            let conv = self.temporal.forward(&x);
            rows.push(conv.rows_slice(timesteps - 1, 1));
        }
        stack_rows(&rows)
    }
}

impl DemandPredictor for GraphWaveNetPredictor {
    fn name(&self) -> &'static str {
        "Graph-Wavenet"
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.temporal.parameters();
        p.push(self.node_embed_src.clone());
        p.push(self.node_embed_dst.clone());
        p.extend(self.diffusion.parameters());
        p.extend(self.head.parameters());
        p
    }

    fn forward(&self, example: &SeriesExample) -> Var {
        assert_eq!(
            example.history.len(),
            self.cells,
            "example cell count does not match the model"
        );
        let z = self.temporal_features(example); // (M, hidden)
        let adj = self.adaptive_adjacency(); // (M, M)
                                             // One diffusion step with a residual connection: Z' = ReLU(Z + Â·Z·W).
        let propagated = self.diffusion.forward(&adj.matmul(&z));
        let mixed = z.add(&propagated).relu();
        self.head.forward(&mixed).sigmoid()
    }
}

impl GraphWaveNetPredictor {
    /// Raw adjacency matrix values (for inspection / the ablation bench).
    pub fn adjacency_matrix(&self) -> Matrix {
        self.adaptive_adjacency().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{SeriesDataset, SeriesSpec};
    use crate::trainer::TrainingConfig;
    use datawa_core::Timestamp;

    fn correlated_dataset(cells: usize, k: usize, n: usize) -> SeriesDataset {
        // Cell 0 "leads": whenever cell 0 was active in the last history
        // window, every other cell is active in the target window.
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, k, 2);
        let mut examples = Vec::new();
        for e in 0..n {
            let lead_active = e % 2 == 0;
            let mut history = Vec::new();
            for c in 0..cells {
                let mut h = Matrix::zeros(2, k);
                if c == 0 && lead_active {
                    for j in 0..k {
                        h.set(1, j, 1.0);
                    }
                }
                history.push(h);
            }
            let mut snapshot = Matrix::zeros(cells, k);
            if lead_active {
                for j in 0..k {
                    snapshot.set(0, j, 1.0);
                }
            }
            let mut target = Matrix::zeros(cells, k);
            if lead_active {
                for c in 0..cells {
                    for j in 0..k {
                        target.set(c, j, 1.0);
                    }
                }
            }
            examples.push(crate::series::SeriesExample {
                history,
                snapshot,
                target,
                target_window: e + 2,
            });
        }
        SeriesDataset {
            spec,
            cells,
            examples,
        }
    }

    #[test]
    fn forward_shape_and_probability_range() {
        let ds = correlated_dataset(3, 2, 2);
        let model = GraphWaveNetPredictor::new(3, 2, 8, 4, 0);
        let out = model.predict(&ds.examples[0]);
        assert_eq!(out.shape(), (3, 2));
        assert!(out.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn adjacency_is_row_stochastic() {
        let model = GraphWaveNetPredictor::new(4, 2, 8, 3, 1);
        let a = model.adjacency_matrix();
        assert_eq!(a.shape(), (4, 4));
        for r in 0..4 {
            assert!((a.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn learns_cross_cell_correlation() {
        let ds = correlated_dataset(3, 2, 10);
        let (train, test) = ds.split(0.6);
        let mut model = GraphWaveNetPredictor::new(3, 2, 8, 4, 2);
        model.train(
            &train,
            &TrainingConfig {
                epochs: 120,
                learning_rate: 0.03,
            },
        );
        let ap = model.evaluate(&test).average_precision;
        assert!(
            ap > 0.7,
            "Graph-WaveNet failed to learn the lead-cell pattern: AP={ap}"
        );
    }
}
