//! # datawa-core
//!
//! Domain model for the DATA-WA spatial-crowdsourcing framework (ICDE 2025).
//!
//! This crate contains the vocabulary types shared by every other crate in the
//! workspace: spatial [`Location`]s, [`Timestamp`]s, [`Task`]s, [`Worker`]s with
//! dynamic availability windows, travel models, task sequences and spatial task
//! assignments, together with the validity rules of Definitions 1–5 of the paper.
//!
//! The crate is deliberately free of any algorithmic policy: prediction lives in
//! `datawa-predict`, assignment search in `datawa-assign`, and workload
//! generation in `datawa-sim`.
//!
//! ## Quick tour
//!
//! ```
//! use datawa_core::prelude::*;
//!
//! let travel = TravelModel::euclidean(1.0); // 1 distance-unit per second
//! let task = Task::new(TaskId(0), Location::new(1.5, 1.2), Timestamp(1.0), Timestamp(4.0));
//! let worker = Worker::new(WorkerId(0), Location::new(0.5, 1.0), 1.2, Timestamp(1.0), Timestamp(10.0));
//! assert!(worker.can_reach(&task, &travel, Timestamp(1.0)));
//! ```

pub mod assignment;
pub mod env_config;
pub mod error;
pub mod location;
pub mod sequence;
pub mod store;
pub mod task;
pub mod time;
pub mod travel;
pub mod worker;

pub use assignment::{Assignment, AssignmentStats};
pub use error::{CoreError, CoreResult};
pub use location::{BoundingBox, Location};
pub use sequence::{ArrivalTimes, TaskSequence, ValidityViolation};
pub use store::{AvailableWorkerView, OpenTaskView, TaskStore, WorkerStore};
pub use task::{Task, TaskId};
pub use time::{Duration, TimeInterval, Timestamp};
pub use travel::{DistanceMetric, TravelModel};
pub use worker::{AvailabilityWindow, Worker, WorkerId, WorkerMode};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::assignment::{Assignment, AssignmentStats};
    pub use crate::location::{BoundingBox, Location};
    pub use crate::sequence::{ArrivalTimes, TaskSequence, ValidityViolation};
    pub use crate::store::{AvailableWorkerView, OpenTaskView, TaskStore, WorkerStore};
    pub use crate::task::{Task, TaskId};
    pub use crate::time::{Duration, TimeInterval, Timestamp};
    pub use crate::travel::{DistanceMetric, TravelModel};
    pub use crate::worker::{AvailabilityWindow, Worker, WorkerId, WorkerMode};
}
