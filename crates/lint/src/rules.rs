//! The rule set. Each rule is a named check over a [`SourceFile`]'s
//! stripped lines; `LINTS.md` is the user-facing catalogue.

use crate::diag::{Finding, Severity};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// Crates whose planning/state code must be bitwise deterministic: hash
/// iteration order and NaN-unsafe comparisons are hazards here.
pub const DETERMINISTIC_CRATES: &[&str] = &["assign", "stream", "core", "geo", "graph"];

/// Crates whose non-test code sits on the hot replan/ingest path: a panic
/// here takes down a serving session, so unwraps must be justified.
pub const HOT_PATH_CRATES: &[&str] = &["assign", "stream"];

/// Crates whose non-test code serves live connections: an explicit panic
/// macro there rides the `catch_unwind` recovery path (or kills a
/// connection thread outright) instead of answering the client with a
/// typed error.
pub const SERVICE_PATH_CRATES: &[&str] = &["service", "net"];

/// Crates allowed to read wall clocks: observability (span timers), the
/// bench harness, the service layer's live pacing, and the transport
/// front-end (ingest-latency spans, socket timeouts).
pub const WALL_CLOCK_EXEMPT_CRATES: &[&str] = &["obs", "bench", "service", "lint", "net"];

/// The one module allowed to call `std::env::var` (path suffix match).
pub const ENV_GATEWAY: &str = "crates/core/src/env_config.rs";

/// Path prefixes whose `Ordering::Relaxed` uses have been audited as pure
/// monotonic counters / commutatively-merged cells, with the rationale
/// recorded here (mirrored in `LINTS.md`).
pub const RELAXED_AUDITED: &[(&str, &str)] = &[(
    "crates/obs/src/",
    "every obs atomic is a monotonic counter, gauge high-water or histogram \
     cell merged commutatively; snapshot consistency is documented best-effort",
)];

/// Every rule name, for suppression validation and `--list`.
pub const RULES: &[(&str, &str)] = &[
    (
        "unordered-iteration",
        "iterating a HashMap/HashSet in a deterministic crate without an immediate sort or order-insensitive sink",
    ),
    (
        "wall-clock-in-hot-path",
        "Instant::now/SystemTime outside obs, bench and service",
    ),
    (
        "stray-env-read",
        "std::env::var outside datawa_core::env_config",
    ),
    (
        "relaxed-atomic-audit",
        "Ordering::Relaxed outside the audited allowlist",
    ),
    (
        "unchecked-float-ordering",
        "partial_cmp call sites (NaN-unsafe ordering) in deterministic crates",
    ),
    (
        "unwrap-in-hot-path",
        "unwrap/expect in non-test assign/stream code",
    ),
    (
        "missing-suppression-reason",
        "a datawa-lint suppression without a `-- reason`",
    ),
    (
        "invalid-suppression",
        "a datawa-lint directive that does not parse or names an unknown rule",
    ),
    (
        "blocking-sleep",
        "thread::sleep in a deterministic crate (observe-only)",
    ),
    (
        "panic-in-service-path",
        "panic!/unreachable!/todo! in non-test service/net code (observe-only)",
    ),
];

/// Whether `name` is a known rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|(n, _)| *n == name)
}

/// The severity a rule's findings carry. New rules land here as `Warning`
/// (reported, exit code unaffected) and are promoted to `Error` once the
/// tree is clean under them; see `LINTS.md` for the catalogue.
pub fn severity_of(rule: &str) -> Severity {
    match rule {
        "blocking-sleep" | "panic-in-service-path" => Severity::Warning,
        _ => Severity::Error,
    }
}

/// Iterator-consuming method suffixes whose results leak hash order.
const ITER_SUFFIXES: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

/// Statement-window patterns that make hash iteration order-insensitive:
/// commutative reductions, membership tests, re-collection into an ordered
/// or hashed container, or an immediate sort. The window spans the flagged
/// line plus the next three (see [`SourceFile::window`]).
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    ".count()",
    ".len()",
    ".is_empty()",
    ".sum()",
    ".sum::<",
    ".min()",
    ".max()",
    ".all(",
    ".any(",
    ".contains(",
    ".contains_key(",
    ".collect::<HashMap",
    ".collect::<HashSet",
    ".collect::<BTreeMap",
    ".collect::<BTreeSet",
    ".collect::<std::collections::BTree",
    ".collect::<std::collections::Hash",
    "sort",
];

/// Runs every rule over `file`, returning raw (unsuppressed) findings.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    unordered_iteration(file, &mut findings);
    wall_clock(file, &mut findings);
    stray_env_read(file, &mut findings);
    relaxed_atomic(file, &mut findings);
    float_ordering(file, &mut findings);
    unwrap_in_hot_path(file, &mut findings);
    blocking_sleep(file, &mut findings);
    panic_in_service_path(file, &mut findings);
    findings
}

fn in_crates(file: &SourceFile, list: &[&str]) -> bool {
    file.crate_name
        .as_deref()
        .is_some_and(|c| list.contains(&c))
}

fn finding(file: &SourceFile, line: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        rule,
        severity: severity_of(rule),
        path: file.rel_path.clone(),
        line: line + 1,
        message,
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: `let`
/// bindings whose initialiser or type mentions a hash collection, and
/// field/parameter declarations `name: [&[mut]] Hash{Map,Set}<…>`.
/// Per-file and unscoped by design — a cheap over-approximation whose false
/// positives are handled by suppression.
fn hash_idents(file: &SourceFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        if code.contains("HashMap") || code.contains("HashSet") {
            // `let [mut] name … = …Hash{Map,Set}…` on one line.
            let mut rest: &str = code;
            while let Some(pos) = rest.find("let ") {
                let after = rest[pos + 4..].trim_start();
                let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
                let ident: String = after
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !ident.is_empty() {
                    idents.insert(ident);
                }
                rest = &rest[pos + 4..];
            }
        }
        // `name: [&['a]][mut ]Hash{Map,Set}<` — fields and parameters.
        for marker in ["HashMap<", "HashSet<"] {
            let mut search = 0usize;
            while let Some(found) = code[search..].find(marker) {
                let at = search + found;
                if let Some(ident) = decl_ident_before(&code[..at]) {
                    idents.insert(ident);
                }
                search = at + marker.len();
            }
        }
    }
    idents
}

/// Walks backwards from a `HashMap<`/`HashSet<` occurrence over
/// `[&['lifetime]][mut ]` to a `:` and returns the declared identifier, if
/// the occurrence is a declaration type rather than an expression.
fn decl_ident_before(prefix: &str) -> Option<String> {
    let mut rest = prefix.trim_end();
    loop {
        if let Some(r) = rest.strip_suffix("mut") {
            rest = r.trim_end();
            continue;
        }
        if let Some(r) = rest.strip_suffix('&') {
            rest = r.trim_end();
            continue;
        }
        // Lifetime: `&'a `.
        if let Some(q) = rest.rfind('\'') {
            if rest[q + 1..]
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !rest[q + 1..].is_empty()
            {
                rest = rest[..q].trim_end();
                continue;
            }
        }
        break;
    }
    let rest = rest.strip_suffix(':')?.trim_end();
    let ident: String = rest
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!ident.is_empty() && !ident.chars().next().unwrap().is_ascii_digit()).then_some(ident)
}

fn unordered_iteration(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_crates(file, DETERMINISTIC_CRATES) {
        return;
    }
    let idents = hash_idents(file);
    if idents.is_empty() {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        let mut hit: Option<String> = None;
        for ident in &idents {
            // `map.keys()`-style calls with identifier boundaries intact.
            let mut search = 0usize;
            while let Some(found) = code[search..].find(ident.as_str()) {
                let at = search + found;
                let before_ok = at == 0 || {
                    let b = code.as_bytes()[at - 1];
                    if b == b'.' {
                        // `self.map.keys()` is the tracked binding;
                        // `other.map.keys()` is some other type's field.
                        code[..at - 1].ends_with("self")
                    } else {
                        !(b.is_ascii_alphanumeric() || b == b'_')
                    }
                };
                let after = &code[at + ident.len()..];
                if before_ok && ITER_SUFFIXES.iter().any(|s| after.starts_with(s)) {
                    hit = Some(format!("{ident}{}", first_suffix(after)));
                    break;
                }
                search = at + ident.len();
            }
            if hit.is_some() {
                break;
            }
            // `for x in [&[mut ]][self.]ident {`.
            if let Some(expr) = for_loop_subject(code) {
                if expr == *ident {
                    hit = Some(format!("for … in {ident}"));
                    break;
                }
            }
        }
        // Method-chain continuation: a line *starting* with `.keys()`-style
        // suffix whose receiver — the trailing identifier of the previous
        // code line — is a tracked hash binding:
        //     let v: Vec<_> = self.index
        //         .keys()
        //         .collect();
        if hit.is_none() {
            let trimmed = code.trim_start();
            if let Some(suffix) = ITER_SUFFIXES.iter().find(|s| trimmed.starts_with(**s)) {
                if let Some(recv) = receiver_ident_before(file, i) {
                    if idents.contains(&recv) {
                        hit = Some(format!("{recv}{suffix}"));
                    }
                }
            }
        }
        if let Some(what) = hit {
            // Statement window: the flagged line through the end of its
            // statement (`;`/`{`/`}`) — sinks inside it make the iteration
            // order-insensitive. Normally capped at five lines, but method
            // chains keep the window open while the next line continues the
            // chain (starts with `.`), so a sink deep in a long chain is
            // still seen; a hard cap bounds pathological files. A sort on
            // either of the two lines after the statement also counts as
            // "immediately sorted"
            // (`let v: Vec<_> = m.keys().collect(); v.sort();`).
            let mut stmt = String::new();
            let mut j = i;
            loop {
                let c = &file.lines[j].code;
                stmt.push_str(c);
                stmt.push(' ');
                let t = c.trim_end();
                if t.ends_with(';')
                    || t.ends_with('{')
                    || t.ends_with('}')
                    || j + 1 >= file.lines.len()
                    || j >= i + 15
                {
                    break;
                }
                let next_is_chain = file.lines[j + 1].code.trim_start().starts_with('.');
                if j >= i + 4 && !next_is_chain {
                    break;
                }
                j += 1;
            }
            let post_sorted = file.lines[(j + 1).min(file.lines.len())..]
                .iter()
                .take(2)
                .any(|l| l.code.contains("sort"));
            if ORDER_INSENSITIVE_SINKS.iter().any(|s| stmt.contains(s)) || post_sorted {
                continue;
            }
            findings.push(finding(
                file,
                i,
                "unordered-iteration",
                format!(
                    "`{what}` iterates a hash-ordered collection in a deterministic crate; \
                     sort the result, use a BTree collection, or suppress with a rationale \
                     if the consumer is order-insensitive"
                ),
            ));
        }
    }
}

/// The trailing identifier of the nearest non-empty code line above `i` —
/// the receiver of a method chain continued on line `i`. Mirrors the
/// same-line boundary rules: a bare identifier or a `self.` field counts,
/// `other.field` does not.
fn receiver_ident_before(file: &SourceFile, i: usize) -> Option<String> {
    let mut k = i;
    while k > 0 {
        k -= 1;
        let t = file.lines[k].code.trim_end();
        if t.is_empty() {
            continue;
        }
        let ident: String = t
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if ident.is_empty() || ident.chars().next().unwrap().is_ascii_digit() {
            return None;
        }
        let before = &t[..t.len() - ident.len()];
        let ok = before.is_empty()
            || before.ends_with("self.")
            || !before.ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == '.');
        return ok.then_some(ident);
    }
    None
}

fn first_suffix(after: &str) -> &'static str {
    ITER_SUFFIXES
        .iter()
        .find(|s| after.starts_with(**s))
        .copied()
        .unwrap_or("")
}

/// For `for <pat> in <expr> {`, returns `<expr>` stripped of `&`, `mut` and
/// a leading `self.`, if it is a bare identifier path.
fn for_loop_subject(code: &str) -> Option<String> {
    let for_pos = code.find("for ")?;
    let in_pos = code[for_pos..].find(" in ")? + for_pos;
    let rest = code[in_pos + 4..].trim();
    let end = rest.find('{').unwrap_or(rest.len());
    let mut expr = rest[..end].trim();
    expr = expr.strip_prefix('&').unwrap_or(expr).trim();
    expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
    expr = expr.strip_prefix("self.").unwrap_or(expr);
    (!expr.is_empty() && expr.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .then(|| expr.to_string())
}

fn wall_clock(file: &SourceFile, findings: &mut Vec<Finding>) {
    if in_crates(file, WALL_CLOCK_EXEMPT_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        for pattern in ["Instant::now", "SystemTime"] {
            if line.code.contains(pattern) {
                findings.push(finding(
                    file,
                    i,
                    "wall-clock-in-hot-path",
                    format!(
                        "`{pattern}` in a deterministic code path; wall-clock reads belong in \
                         obs/bench/service — if this only feeds a metric, suppress with that \
                         rationale"
                    ),
                ));
                break;
            }
        }
    }
}

fn stray_env_read(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.rel_path.ends_with(ENV_GATEWAY) || file.rel_path == "crates/core/src/env_config.rs" {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        if line.code.contains("env::var") {
            findings.push(finding(
                file,
                i,
                "stray-env-read",
                "environment read outside datawa_core::env_config; add a typed accessor \
                 there instead so every knob is catalogued and validated in one place"
                    .to_string(),
            ));
        }
    }
}

fn relaxed_atomic(file: &SourceFile, findings: &mut Vec<Finding>) {
    if RELAXED_AUDITED
        .iter()
        .any(|(prefix, _)| file.rel_path.starts_with(prefix))
    {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        if line.code.contains("Ordering::Relaxed") {
            findings.push(finding(
                file,
                i,
                "relaxed-atomic-audit",
                "`Ordering::Relaxed` outside the audited allowlist; if this atomic is a pure \
                 monotonic counter, suppress with that rationale — otherwise use a stronger \
                 ordering"
                    .to_string(),
            ));
        }
    }
}

fn float_ordering(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_crates(file, DETERMINISTIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test || line.code.contains("fn partial_cmp") {
            continue;
        }
        if line.code.contains(".partial_cmp(") {
            findings.push(finding(
                file,
                i,
                "unchecked-float-ordering",
                "`partial_cmp` in planning code is NaN-unsafe as a sort key; use \
                 `f64::total_cmp`, `datawa_core::time::cmp_timestamps`, or suppress with a \
                 rationale explaining why NaN cannot occur and ties are handled totally"
                    .to_string(),
            ));
        }
    }
}

fn unwrap_in_hot_path(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_crates(file, HOT_PATH_CRATES) || file.kind != FileKind::Src {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        for pattern in [".unwrap()", ".expect("] {
            if line.code.contains(pattern) {
                findings.push(finding(
                    file,
                    i,
                    "unwrap-in-hot-path",
                    format!(
                        "`{}` on the hot dispatch path; return an error, provide a default, \
                         or suppress with the invariant that makes this infallible",
                        pattern.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
                break;
            }
        }
    }
}

fn blocking_sleep(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_crates(file, DETERMINISTIC_CRATES) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        if line.code.contains("thread::sleep") {
            findings.push(finding(
                file,
                i,
                "blocking-sleep",
                "`thread::sleep` in a deterministic crate stalls the simulated clock's \
                 thread for wall time; model waiting as events, or move the sleep to the \
                 service/net layer"
                    .to_string(),
            ));
        }
    }
}

fn panic_in_service_path(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_crates(file, SERVICE_PATH_CRATES) || file.kind != FileKind::Src {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        for pattern in ["panic!(", "unreachable!(", "todo!("] {
            if line.code.contains(pattern) {
                findings.push(finding(
                    file,
                    i,
                    "panic-in-service-path",
                    format!(
                        "`{}` in serving code unwinds through the pump supervisor (or kills a \
                         connection thread) instead of answering the client with a typed error; \
                         return a `Frame::Error`/`ClientError`, or suppress with the reason the \
                         panic is intentional",
                        pattern.trim_end_matches('(')
                    ),
                ));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, krate: Option<&str>, text: &str) -> SourceFile {
        SourceFile::parse(path, krate, FileKind::Src, text)
    }

    #[test]
    fn hash_idents_track_lets_fields_and_params() {
        let f = parse(
            "crates/assign/src/x.rs",
            Some("assign"),
            "struct S { per_worker: HashMap<W, usize> }\n\
             fn f(available: &mut HashSet<TaskId>) {\n\
                 let mut seen = HashSet::new();\n\
                 let cache: HashMap<u64, Entry> = HashMap::new();\n\
             }\n",
        );
        let idents = hash_idents(&f);
        for name in ["per_worker", "available", "seen", "cache"] {
            assert!(idents.contains(name), "missing {name}: {idents:?}");
        }
    }

    #[test]
    fn unordered_iteration_flags_bare_iteration_but_not_sinks() {
        let f = parse(
            "crates/assign/src/x.rs",
            Some("assign"),
            "fn f() {\n\
                 let mut m = HashMap::new();\n\
                 for (k, v) in &m { push(k); }\n\
                 let n = m.values().count();\n\
                 let mut v: Vec<_> = m.keys().collect();\n\
                 v.sort_unstable();\n\
             }\n",
        );
        let findings = check_file(&f);
        let unordered: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unordered-iteration")
            .collect();
        assert_eq!(unordered.len(), 1, "{findings:?}");
        assert_eq!(unordered[0].line, 3);
    }

    #[test]
    fn unordered_iteration_flags_chain_continuation_lines() {
        // The iteration suffix sits on a continuation line; the receiver is
        // the trailing identifier of the line above.
        let f = parse(
            "crates/assign/src/x.rs",
            Some("assign"),
            "fn f(index: &HashMap<u32, u32>) {\n\
                 let v: Vec<_> = index\n\
                     .keys()\n\
                     .collect::<Vec<_>>();\n\
                 consume(v);\n\
             }\n",
        );
        let findings = check_file(&f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unordered-iteration");
        assert_eq!(findings[0].line, 3, "the `.keys()` continuation line");
    }

    #[test]
    fn chain_continuation_sort_on_following_line_is_not_flagged() {
        let f = parse(
            "crates/assign/src/x.rs",
            Some("assign"),
            "fn f(index: &HashMap<u32, u32>) {\n\
                 let mut v: Vec<_> = index\n\
                     .keys()\n\
                     .collect::<Vec<_>>();\n\
                 v.sort_unstable();\n\
             }\n",
        );
        assert!(check_file(&f).is_empty(), "{:?}", check_file(&f));
    }

    #[test]
    fn long_chains_keep_the_statement_window_open_to_the_sink() {
        // `.sum()` sits past the five-line default window; chain
        // continuation lines keep the window open until the statement ends.
        let f = parse(
            "crates/assign/src/x.rs",
            Some("assign"),
            "fn f(index: &HashMap<u32, u32>) {\n\
                 let total: usize = index\n\
                     .values()\n\
                     .map(|v| *v as usize)\n\
                     .filter(|n| *n > 0)\n\
                     .map(|n| n * 2)\n\
                     .map(|n| n + 1)\n\
                     .sum();\n\
                 consume(total);\n\
             }\n",
        );
        assert!(check_file(&f).is_empty(), "{:?}", check_file(&f));
    }

    #[test]
    fn chain_continuation_respects_receiver_boundaries() {
        // `other.index` is some other value's field, not the tracked
        // binding — the same rule the single-line matcher applies.
        let f = parse(
            "crates/assign/src/x.rs",
            Some("assign"),
            "fn f(index: &HashMap<u32, u32>, other: &Thing) {\n\
                 let v: Vec<_> = other.index\n\
                     .keys()\n\
                     .collect::<Vec<_>>();\n\
                 consume(v);\n\
             }\n",
        );
        assert!(check_file(&f).is_empty(), "{:?}", check_file(&f));
    }

    #[test]
    fn blocking_sleep_is_an_observe_only_warning() {
        let hot = parse(
            "crates/stream/src/x.rs",
            Some("stream"),
            "fn f() { std::thread::sleep(core::time::Duration::from_millis(1)); }\n",
        );
        let findings = check_file(&hot);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "blocking-sleep");
        assert_eq!(findings[0].severity, Severity::Warning);
        // The service layer's pacing sleeps are legitimate.
        let paced = parse(
            "crates/service/src/x.rs",
            Some("service"),
            "fn f() { std::thread::sleep(core::time::Duration::from_millis(1)); }\n",
        );
        assert!(check_file(&paced).is_empty());
    }

    #[test]
    fn panic_in_service_path_is_scoped_and_observe_only() {
        let text = "fn f(x: u8) { match x { 0 => {} _ => unreachable!() } }\n";
        let in_net = parse("crates/net/src/x.rs", Some("net"), text);
        let findings = check_file(&in_net);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "panic-in-service-path");
        assert_eq!(findings[0].severity, Severity::Warning);
        // `.expect(...)` is the unwrap rule's business, not this one's.
        let expects = parse(
            "crates/service/src/x.rs",
            Some("service"),
            "fn f(m: &std::sync::Mutex<u8>) -> u8 { *m.lock().expect(\"poisoned\") }\n",
        );
        assert!(check_file(&expects).is_empty());
        // Engine crates already have unwrap-in-hot-path; the panic rule
        // stays out of their way.
        let in_stream = parse(
            "crates/stream/src/x.rs",
            Some("stream"),
            "fn f() { panic!(\"boom\") }\n",
        );
        assert!(!check_file(&in_stream)
            .iter()
            .any(|f| f.rule == "panic-in-service-path"));
    }

    #[test]
    fn rules_respect_crate_scoping() {
        let text = "fn f() { let t = Instant::now(); }\n";
        let in_predict = parse("crates/predict/src/x.rs", Some("predict"), text);
        assert_eq!(check_file(&in_predict).len(), 1);
        let in_obs = parse("crates/obs/src/x.rs", Some("obs"), text);
        assert!(check_file(&in_obs).is_empty());
    }

    #[test]
    fn env_gateway_is_exempt() {
        let text = "fn raw() { std::env::var(\"X\").ok(); }\n";
        let gw = parse("crates/core/src/env_config.rs", Some("core"), text);
        assert!(check_file(&gw).is_empty());
        let stray = parse("crates/geo/src/x.rs", Some("geo"), text);
        assert_eq!(check_file(&stray)[0].rule, "stray-env-read");
    }

    #[test]
    fn unwrap_rule_is_scoped_to_hot_crates_and_skips_unwrap_or() {
        let hot = parse(
            "crates/stream/src/x.rs",
            Some("stream"),
            "fn f() { x.unwrap_or(1); y.unwrap_or_else(z); }\nfn g() { x.unwrap(); }\n",
        );
        let findings = check_file(&hot);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        let cold = parse(
            "crates/predict/src/x.rs",
            Some("predict"),
            "fn g() { x.unwrap(); }\n",
        );
        assert!(check_file(&cold).is_empty());
    }
}
