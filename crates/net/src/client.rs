//! A loopback client for the wire protocol: handshake, event sending, and
//! a background collector thread that drains server frames so decision
//! traffic can never back up the socket while the client is still sending.
//!
//! Two clients live here. [`NetClient`] is the transparent one: every send
//! is one socket write, every failure surfaces immediately. On top of it,
//! [`ResilientClient`] keeps a local command log and delivers it with
//! automatic retries — capped exponential backoff with deterministic seeded
//! jitter, honouring server [`Frame::RetryAfter`] hints — and resumes after
//! a reconnect via the [`Frame::Resume`]/[`Frame::ResumeAck`] exchange, so a
//! connection reset, a truncated frame, or a recovering server pump costs
//! retries but never a lost or double-ingested command (the semantics are
//! specified in `PROTOCOL.md` at the workspace root).

use crate::wire::{
    read_frame, write_frame, ErrorCode, Frame, RetryReason, WireError, PROTOCOL_VERSION,
};
use datawa_core::Timestamp;
use datawa_stream::{Decision, Event};
use rand::prelude::{Rng, SeedableRng, StdRng};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

/// Everything the server streamed back over one connection's lifetime.
#[derive(Debug, Default)]
pub struct ClientOutcome {
    /// Decisions, in the order the server emitted them.
    pub decisions: Vec<Decision>,
    /// Admission refusals: `(suggested backoff seconds, reason)` per
    /// refused event.
    pub retry_after: Vec<(f64, RetryReason)>,
    /// Fatal protocol errors the server answered with.
    pub errors: Vec<(ErrorCode, String)>,
    /// The final session totals (present after an orderly `Close`).
    pub closed: Option<ClosedSummary>,
}

/// The totals carried by a [`Frame::Closed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedSummary {
    /// Tasks assigned over the whole session.
    pub assigned: u64,
    /// Decisions streamed back.
    pub decisions: u64,
    /// Events the engine processed.
    pub events: u64,
    /// Planning invocations.
    pub planning_calls: u64,
}

/// Why a connection attempt or send failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's first answer was unreadable.
    Wire(WireError),
    /// The server refused the handshake with a typed error.
    Refused {
        /// The refusal code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The connection cap was hit; retry after the suggested backoff.
    Busy {
        /// Suggested backoff in seconds.
        retry_after_secs: f64,
    },
    /// The server answered the handshake with something unexpected.
    UnexpectedFrame,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Refused { code, message } => {
                write!(f, "refused ({code:?}): {message}")
            }
            ClientError::Busy { retry_after_secs } => {
                write!(
                    f,
                    "server at connection cap; retry after {retry_after_secs}s"
                )
            }
            ClientError::UnexpectedFrame => write!(f, "unexpected handshake answer"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected tenant client. Send events with the typed helpers; server
/// frames are collected on a background thread and returned by
/// [`NetClient::close`].
#[derive(Debug)]
pub struct NetClient {
    writer: TcpStream,
    collector: Option<JoinHandle<ClientOutcome>>,
}

impl NetClient {
    /// Connects, performs the `Hello` handshake as `tenant`, and starts the
    /// frame collector.
    pub fn connect(addr: SocketAddr, tenant: &str, token: &str) -> Result<NetClient, ClientError> {
        let mut writer = TcpStream::connect(addr)?;
        // A server refusing at the connection cap may answer and FIN before
        // this Hello ever lands, failing the write with a broken pipe — the
        // refusal frame is still in the receive buffer, so read it before
        // deciding how the handshake failed.
        let hello_sent = write_frame(
            &mut writer,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                tenant: tenant.to_string(),
                token: token.to_string(),
            },
        );
        let mut reader = BufReader::new(writer.try_clone()?);
        match read_frame(&mut reader) {
            Ok(Frame::HelloAck { .. }) => hello_sent?,
            Ok(Frame::RetryAfter {
                seconds,
                reason: RetryReason::ConnectionCap,
            }) => {
                return Err(ClientError::Busy {
                    retry_after_secs: seconds,
                })
            }
            Ok(Frame::Error { code, message }) => {
                return Err(ClientError::Refused { code, message })
            }
            Ok(_) => return Err(ClientError::UnexpectedFrame),
            // Nothing readable either: report the write failure when there
            // was one (the root cause), else the read error.
            Err(e) => {
                hello_sent?;
                return Err(ClientError::Wire(e));
            }
        }
        let collector = std::thread::spawn(move || collect(reader));
        Ok(NetClient {
            writer,
            collector: Some(collector),
        })
    }

    /// Sends one engine event at `time`.
    pub fn send_event(&mut self, time: Timestamp, event: &Event) -> std::io::Result<()> {
        write_frame(&mut self.writer, &Frame::from_event(time, event))
    }

    /// Asks the server to advance the tenant session to `time`.
    pub fn advance_to(&mut self, time: Timestamp) -> std::io::Result<()> {
        write_frame(&mut self.writer, &Frame::AdvanceTo { time })
    }

    /// Sends a raw frame (tests use this to probe protocol violations).
    pub fn send_frame(&mut self, frame: &Frame) -> std::io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    /// Sends `Close`, waits for the server to drain the session, and
    /// returns everything it streamed back.
    pub fn close(mut self) -> ClientOutcome {
        // The server may already have closed the connection (protocol error
        // paths); the collector still holds whatever arrived before that.
        let _ = write_frame(&mut self.writer, &Frame::Close);
        self.join_collector()
    }

    /// Drops the write half without an orderly `Close` (tests use this for
    /// mid-stream disconnects) and returns what was collected.
    pub fn abandon(mut self) -> ClientOutcome {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
        self.join_collector()
    }

    fn join_collector(&mut self) -> ClientOutcome {
        self.collector
            .take()
            .map(|c| c.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

/// Backoff and give-up policy for a [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Connection attempts before giving up.
    pub max_attempts: u32,
    /// First backoff, in seconds; each retry doubles it.
    pub base_backoff_secs: f64,
    /// Ceiling on any single backoff, in seconds. A server
    /// [`Frame::RetryAfter`] hint larger than the computed backoff wins.
    pub max_backoff_secs: f64,
    /// Seed for the jitter stream: a fixed seed makes the whole retry
    /// schedule deterministic, which is what the chaos harness replays.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_secs: 0.01,
            max_backoff_secs: 0.5,
            jitter_seed: 0,
        }
    }
}

/// How a [`ResilientClient::deliver`] run ended.
#[derive(Debug)]
pub enum RetryOutcome {
    /// The full command log was ingested and the session closed in order.
    Completed {
        /// Everything the server streamed back, merged across attempts.
        outcome: ClientOutcome,
        /// Connection attempts used (1 = no retries were needed).
        attempts: u32,
    },
    /// Retries exhausted (or a fatal refusal) before the log was delivered.
    GaveUp {
        /// Connection attempts used.
        attempts: u32,
        /// The error that ended the final attempt.
        last_error: ClientError,
    },
}

/// One journaled client command: exactly what [`ResilientClient`] resends
/// from its log after a reconnect.
#[derive(Debug, Clone)]
enum ClientCommand {
    Event(Timestamp, Event),
    Advance(Timestamp),
}

impl ClientCommand {
    fn to_frame(&self) -> Frame {
        match self {
            ClientCommand::Event(time, event) => Frame::from_event(*time, event),
            ClientCommand::Advance(time) => Frame::AdvanceTo { time: *time },
        }
    }
}

/// Why one delivery attempt stopped, and whether another should follow.
enum AttemptEnd {
    /// Transient: reconnect and resume after a backoff. Carries the server's
    /// retry-after hint in seconds when one was received.
    Retry(ClientError, Option<f64>),
    /// Permanent: surface as [`RetryOutcome::GaveUp`] immediately.
    Fatal(ClientError),
}

fn refusal_is_fatal(code: ErrorCode) -> bool {
    match code {
        // The server is draining a previous incarnation of this tenant, or
        // its pump gave up but left the ledger behind: both heal on retry.
        ErrorCode::TenantBusy | ErrorCode::PumpFailed => false,
        ErrorCode::BadHello
        | ErrorCode::VersionMismatch
        | ErrorCode::AuthFailed
        | ErrorCode::Protocol
        | ErrorCode::BadEvent => true,
    }
}

/// A client that owns its command log and survives transport faults.
///
/// Commands are appended locally ([`send_event`](ResilientClient::send_event)
/// / [`advance_to`](ResilientClient::advance_to) never touch the socket);
/// [`deliver`](ResilientClient::deliver) then drives the whole log to the
/// server, reconnect-resuming through resets, truncations and pump
/// recoveries. Across every retry, each command is ingested exactly once and
/// each decision is received exactly once — the server's journaled replay
/// and the `Resume` count exchange carry the proof (see `PROTOCOL.md`).
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    tenant: String,
    token: String,
    policy: RetryPolicy,
    log: Vec<ClientCommand>,
}

impl ResilientClient {
    /// A client for `tenant` at `addr`; nothing is sent until
    /// [`deliver`](ResilientClient::deliver).
    pub fn new(
        addr: SocketAddr,
        tenant: &str,
        token: &str,
        policy: RetryPolicy,
    ) -> ResilientClient {
        ResilientClient {
            addr,
            tenant: tenant.to_string(),
            token: token.to_string(),
            policy,
            log: Vec::new(),
        }
    }

    /// Appends one engine event to the command log.
    pub fn send_event(&mut self, time: Timestamp, event: &Event) {
        self.log.push(ClientCommand::Event(time, event.clone()));
    }

    /// Appends a session advance to the command log.
    pub fn advance_to(&mut self, time: Timestamp) {
        self.log.push(ClientCommand::Advance(time));
    }

    /// Commands logged so far.
    pub fn logged(&self) -> usize {
        self.log.len()
    }

    /// Delivers the whole log and closes the session, retrying through
    /// transient faults per the [`RetryPolicy`].
    pub fn deliver(self) -> RetryOutcome {
        let mut rng = StdRng::seed_from_u64(self.policy.jitter_seed);
        let mut merged = ClientOutcome::default();
        let mut decisions_seen: u64 = 0;
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            match self.attempt(&mut merged, &mut decisions_seen) {
                Ok(()) => {
                    return RetryOutcome::Completed {
                        outcome: merged,
                        attempts,
                    }
                }
                Err(AttemptEnd::Fatal(last_error)) => {
                    return RetryOutcome::GaveUp {
                        attempts,
                        last_error,
                    }
                }
                Err(AttemptEnd::Retry(last_error, hint)) => {
                    if attempts >= self.policy.max_attempts {
                        return RetryOutcome::GaveUp {
                            attempts,
                            last_error,
                        };
                    }
                    // Capped exponential backoff with deterministic jitter in
                    // [1.0, 1.5)x; a larger server hint overrides the ramp.
                    let exp =
                        self.policy.base_backoff_secs * f64::from(1u32 << (attempts - 1).min(20));
                    let mut backoff = exp.min(self.policy.max_backoff_secs);
                    if let Some(hint) = hint {
                        backoff = backoff.max(hint);
                    }
                    backoff *= 1.0 + 0.5 * rng.gen_f64();
                    // datawa-lint: allow(blocking-sleep) -- retry backoff is the one place a client must actually wait
                    std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
                }
            }
        }
    }

    /// One connection attempt: handshake, resume exchange, send the
    /// unacknowledged log suffix, verify the admitted count with a sync
    /// ping, then close in order. Any transient failure tears the socket
    /// down (the server keeps the tenant ledger) and reports `Retry`.
    fn attempt(
        &self,
        merged: &mut ClientOutcome,
        decisions_seen: &mut u64,
    ) -> Result<(), AttemptEnd> {
        let mut conn = match AttemptConn::open(self.addr, &self.tenant, &self.token) {
            Ok(conn) => conn,
            Err(ClientError::Busy { retry_after_secs }) => {
                return Err(AttemptEnd::Retry(
                    ClientError::Busy { retry_after_secs },
                    Some(retry_after_secs),
                ));
            }
            Err(ClientError::Refused { code, message }) => {
                let refused = ClientError::Refused { code, message };
                return Err(if refusal_is_fatal(code) {
                    AttemptEnd::Fatal(refused)
                } else {
                    AttemptEnd::Retry(refused, None)
                });
            }
            Err(e) => return Err(AttemptEnd::Retry(e, None)),
        };

        // Arm resume: tell the server how many decisions we have, learn how
        // many commands it already holds.
        conn.write(&Frame::Resume {
            decisions_seen: *decisions_seen,
        })?;
        let admitted = conn.await_resume_ack(merged, decisions_seen)?;
        let resend_from = usize::try_from(admitted).unwrap_or(usize::MAX);
        if resend_from > self.log.len() {
            // The server claims more commands than we ever logged: a
            // protocol breakage no retry can repair.
            return Err(AttemptEnd::Fatal(ClientError::UnexpectedFrame));
        }

        for command in &self.log[resend_from..] {
            conn.write(&command.to_frame())?;
        }

        // Sync ping: only when the admitted count matches the full log is it
        // safe to close (a sticky refusal or a mid-send fault leaves a
        // shorter prefix — reconnect and resume instead).
        conn.write(&Frame::Resume {
            decisions_seen: *decisions_seen,
        })?;
        let admitted = conn.await_resume_ack(merged, decisions_seen)?;
        if admitted < self.log.len() as u64 {
            return Err(AttemptEnd::Retry(
                conn.refusal_error().unwrap_or(ClientError::UnexpectedFrame),
                conn.refusal_hint(),
            ));
        }

        conn.write(&Frame::Close)?;
        conn.await_closed(merged, decisions_seen)
    }
}

/// One live socket of a [`ResilientClient`] attempt: a writer plus a reader
/// thread funnelling every server frame through a channel, so refusals keep
/// draining while the writer is mid-log.
struct AttemptConn {
    writer: TcpStream,
    frames: std::sync::mpsc::Receiver<Frame>,
    reader: Option<JoinHandle<()>>,
    /// Retry-after refusals seen on this attempt: `(seconds, reason)`.
    refusals: Vec<(f64, RetryReason)>,
}

impl AttemptConn {
    fn open(addr: SocketAddr, tenant: &str, token: &str) -> Result<AttemptConn, ClientError> {
        let mut writer = TcpStream::connect(addr)?;
        let hello_sent = write_frame(
            &mut writer,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                tenant: tenant.to_string(),
                token: token.to_string(),
            },
        );
        let mut reader = BufReader::new(writer.try_clone()?);
        match read_frame(&mut reader) {
            Ok(Frame::HelloAck { .. }) => hello_sent?,
            Ok(Frame::RetryAfter {
                seconds,
                reason: RetryReason::ConnectionCap,
            }) => {
                return Err(ClientError::Busy {
                    retry_after_secs: seconds,
                })
            }
            Ok(Frame::Error { code, message }) => {
                return Err(ClientError::Refused { code, message })
            }
            Ok(_) => return Err(ClientError::UnexpectedFrame),
            Err(e) => {
                hello_sent?;
                return Err(ClientError::Wire(e));
            }
        }
        let (tx, frames) = std::sync::mpsc::channel();
        let reader = std::thread::spawn(move || {
            while let Ok(frame) = read_frame(&mut reader) {
                if tx.send(frame).is_err() {
                    return;
                }
            }
        });
        Ok(AttemptConn {
            writer,
            frames,
            reader: Some(reader),
            refusals: Vec::new(),
        })
    }

    fn write(&mut self, frame: &Frame) -> Result<(), AttemptEnd> {
        write_frame(&mut self.writer, frame)
            .map_err(|e| AttemptEnd::Retry(ClientError::Io(e), self.refusal_hint()))
    }

    /// Routes one received frame into the merged outcome. Returns the frame
    /// back when it is a control frame the caller is waiting on.
    fn absorb(
        &mut self,
        frame: Frame,
        merged: &mut ClientOutcome,
        decisions_seen: &mut u64,
    ) -> Option<Frame> {
        match frame {
            Frame::RetryAfter { seconds, reason } => {
                self.refusals.push((seconds, reason));
                merged.retry_after.push((seconds, reason));
                None
            }
            Frame::Error { code, message } => Some(Frame::Error { code, message }),
            Frame::ResumeAck { events_ingested } => Some(Frame::ResumeAck { events_ingested }),
            Frame::Closed {
                assigned,
                decisions,
                events,
                planning_calls,
            } => Some(Frame::Closed {
                assigned,
                decisions,
                events,
                planning_calls,
            }),
            frame => {
                if let Some(decision) = frame.into_decision() {
                    // The server's skip logic guarantees every decision frame
                    // is new to us, across any number of reconnects.
                    merged.decisions.push(decision);
                    *decisions_seen += 1;
                }
                None
            }
        }
    }

    /// Drains frames until a `ResumeAck` answers the pending `Resume`.
    fn await_resume_ack(
        &mut self,
        merged: &mut ClientOutcome,
        decisions_seen: &mut u64,
    ) -> Result<u64, AttemptEnd> {
        loop {
            let frame = self
                .frames
                .recv()
                .map_err(|_| AttemptEnd::Retry(disconnect_error(), self.refusal_hint()))?;
            match self.absorb(frame, merged, decisions_seen) {
                Some(Frame::ResumeAck { events_ingested }) => return Ok(events_ingested),
                Some(Frame::Error { code, message }) => {
                    return Err(self.error_end(code, message, merged))
                }
                _ => {}
            }
        }
    }

    /// Drains frames until the orderly `Closed` summary lands.
    fn await_closed(
        mut self,
        merged: &mut ClientOutcome,
        decisions_seen: &mut u64,
    ) -> Result<(), AttemptEnd> {
        loop {
            let frame = self
                .frames
                .recv()
                .map_err(|_| AttemptEnd::Retry(disconnect_error(), self.refusal_hint()))?;
            match self.absorb(frame, merged, decisions_seen) {
                Some(Frame::Closed {
                    assigned,
                    decisions,
                    events,
                    planning_calls,
                }) => {
                    merged.closed = Some(ClosedSummary {
                        assigned,
                        decisions,
                        events,
                        planning_calls,
                    });
                    return Ok(());
                }
                Some(Frame::Error { code, message }) => {
                    return Err(self.error_end(code, message, merged))
                }
                _ => {}
            }
        }
    }

    fn error_end(
        &self,
        code: ErrorCode,
        message: String,
        merged: &mut ClientOutcome,
    ) -> AttemptEnd {
        merged.errors.push((code, message.clone()));
        let refused = ClientError::Refused { code, message };
        if refusal_is_fatal(code) {
            AttemptEnd::Fatal(refused)
        } else {
            AttemptEnd::Retry(refused, self.refusal_hint())
        }
    }

    fn refusal_error(&self) -> Option<ClientError> {
        self.refusals.last().map(|(secs, _)| ClientError::Busy {
            retry_after_secs: *secs,
        })
    }

    fn refusal_hint(&self) -> Option<f64> {
        self.refusals.last().map(|(secs, _)| *secs)
    }
}

impl Drop for AttemptConn {
    fn drop(&mut self) {
        // Unblocks the reader thread (the server holds the socket open), so
        // a failed attempt never leaks a parked thread.
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn disconnect_error() -> ClientError {
    ClientError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        "server stream ended mid-attempt",
    ))
}

/// Drains server frames until the stream ends, accumulating the outcome.
fn collect(mut reader: BufReader<TcpStream>) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::RetryAfter { seconds, reason }) => {
                outcome.retry_after.push((seconds, reason));
            }
            Ok(Frame::Error { code, message }) => {
                outcome.errors.push((code, message));
            }
            Ok(Frame::Closed {
                assigned,
                decisions,
                events,
                planning_calls,
            }) => {
                outcome.closed = Some(ClosedSummary {
                    assigned,
                    decisions,
                    events,
                    planning_calls,
                });
                return outcome;
            }
            Ok(frame) => {
                if let Some(decision) = frame.into_decision() {
                    outcome.decisions.push(decision);
                }
            }
            Err(_) => return outcome, // disconnect: report what we have
        }
    }
}
